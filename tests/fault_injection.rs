//! Fault-injection integration tests: the headline invariants of the
//! reliability layer. A zero fault plan must leave reports bit-identical
//! to a build that never heard of faults; a fixed fault seed must
//! reproduce the exact same event stream; and under real cell loss and
//! corruption every application must still compute its lossless answer —
//! just later, with the retransmission counters showing the work.

use cni::{Config, FaultPlan, FaultStats, TraceSink, World};
use cni_apps::experiments::{run_app, run_app_traced, App};
use cni_apps::{cholesky, jacobi, sparse, water};
use cni_dsm::access;
use cni_trace::export::write_jsonl;

fn lossy(drop_prob: f64, corrupt_prob: f64, seed: u64) -> FaultPlan {
    FaultPlan {
        drop_prob,
        corrupt_prob,
        seed,
        ..FaultPlan::none()
    }
}

/// Read a shared f64 array out of the cluster after a run (any valid copy
/// of each page is current once every processor passed the final barrier).
fn collect_f64(world: &World, base: cni::VAddr, len: usize) -> Vec<f64> {
    let page_bytes = world.config().page_bytes;
    (0..len)
        .map(|k| {
            let addr = base.add((k * 8) as u64);
            let page = addr.page(page_bytes);
            let word = addr.word(page_bytes);
            for p in 0..world.config().procs {
                if let Some(h) = world.space(p).try_page(page) {
                    if h.flags.state() != access::INVALID {
                        return f64::from_bits(h.frame.load(word));
                    }
                }
            }
            panic!("no valid copy of word {k}");
        })
        .collect()
}

#[test]
fn zero_fault_plan_reports_bit_identically() {
    let app = App::Jacobi { n: 24, iters: 4 };
    let plain = run_app(Config::paper_default().with_procs(4), app);
    // An explicit all-zero plan — even with a different fault seed — must
    // keep the simulation on the lossless fast path.
    let mut zero = FaultPlan::none();
    zero.seed = 0xDEAD_BEEF;
    let zeroed = run_app(Config::paper_default().with_procs(4).with_faults(zero), app);
    assert_eq!(plain.wall, zeroed.wall, "zero plan must not change timing");
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&zeroed).unwrap(),
        "zero plan must leave the whole report bit-identical"
    );
    assert_eq!(plain.faults, FaultStats::default());
}

#[test]
fn same_fault_seed_gives_byte_identical_jsonl_traces() {
    let app = App::Jacobi { n: 24, iters: 3 };
    let cfg = Config::paper_default()
        .with_procs(4)
        .with_faults(lossy(0.03, 0.01, 7));
    let mut out = [Vec::new(), Vec::new()];
    for buf in &mut out {
        let sink = TraceSink::ring(1 << 18);
        let report = run_app_traced(cfg, app, sink.clone(), None);
        assert!(report.faults.cells_dropped > 0, "{:?}", report.faults);
        let records = sink.drain();
        assert!(!records.is_empty());
        write_jsonl(buf, &records).unwrap();
    }
    assert!(!out[0].is_empty());
    assert_eq!(
        out[0], out[1],
        "identical fault seeds must replay identical fault sequences"
    );
}

#[test]
fn jacobi_survives_cell_loss_with_identical_results() {
    let params = jacobi::JacobiParams {
        n: 24,
        iters: 6,
        verify: true,
    };
    let expect = jacobi::reference(params.n, params.iters);
    let lossless = {
        let mut world = World::new(Config::paper_default().with_procs(4));
        let (_, progs) = jacobi::programs(&mut world, params);
        world.run(progs)
    };
    let cfg = Config::paper_default()
        .with_procs(4)
        .with_faults(lossy(0.05, 0.01, 1));
    let mut world = World::new(cfg);
    let (layout, progs) = jacobi::programs(&mut world, params);
    let report = world.run(progs);
    let grid = jacobi::result_grid(layout, params.iters);
    let got = collect_f64(&world, grid, params.n * params.n);
    for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 1e-12, "grid[{k}] = {g}, want {e}");
    }
    assert!(report.faults.cells_dropped > 0, "{:?}", report.faults);
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
    assert!(
        report.wall >= lossless.wall,
        "faults may only delay completion: {} < {}",
        report.wall,
        lossless.wall
    );
}

#[test]
fn water_survives_cell_loss_with_identical_results() {
    let params = water::WaterParams {
        molecules: 27,
        steps: 2,
        verify: true,
    };
    let expect = water::reference(params);
    let cfg = Config::paper_default()
        .with_procs(3)
        .with_faults(lossy(0.05, 0.01, 1));
    let mut world = World::new(cfg);
    let (layout, progs) = water::programs(&mut world, params);
    let report = world.run(progs);
    let got: Vec<f64> = (0..params.molecules)
        .flat_map(|mol| (0..3).map(move |d| (mol, d)))
        .map(|(mol, d)| collect_f64(&world, layout.pos_at(mol, d), 1)[0])
        .collect();
    for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!(
            (g - e).abs() < 1e-9 * e.abs().max(1.0),
            "pos[{k}] = {g}, want {e}"
        );
    }
    assert!(report.faults.cells_dropped > 0, "{:?}", report.faults);
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
}

#[test]
fn cholesky_survives_cell_loss_with_identical_results() {
    let matrix = cholesky::CholeskyMatrix::Small { n: 48, band: 5 };
    let a = matrix.build(11);
    let sym = sparse::SymbolicFactor::analyze(&a);
    let expect = sparse::reference_cholesky(&a, &sym);
    let cfg = Config::paper_default()
        .with_procs(4)
        .with_faults(lossy(0.05, 0.01, 1));
    let mut world = World::new(cfg);
    let (layout, _, progs) = cholesky::programs(&mut world, matrix, 11, true);
    let report = world.run(progs);
    let got = cholesky::collect_factor(&world, &sym, layout);
    for (s, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!(
            (g - e).abs() < 1e-6 * e.abs().max(1.0),
            "L[{s}] = {g}, want {e}"
        );
    }
    assert!(report.faults.cells_dropped > 0, "{:?}", report.faults);
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
}

#[test]
fn pure_corruption_is_caught_by_crc_and_recovered() {
    // No drops at all: every frame arrives, so every failure is a CRC
    // verification catching flipped bits, and every recovery a retransmit.
    let params = jacobi::JacobiParams {
        n: 24,
        iters: 4,
        verify: true,
    };
    let expect = jacobi::reference(params.n, params.iters);
    let cfg = Config::paper_default()
        .with_procs(4)
        .with_faults(lossy(0.0, 0.03, 5));
    let mut world = World::new(cfg);
    let (layout, progs) = jacobi::programs(&mut world, params);
    let report = world.run(progs);
    let grid = jacobi::result_grid(layout, params.iters);
    let got = collect_f64(&world, grid, params.n * params.n);
    for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 1e-12, "grid[{k}] = {g}, want {e}");
    }
    let f = &report.faults;
    assert!(f.cells_corrupted > 0, "{f:?}");
    assert!(f.crc_failures > 0, "{f:?}");
    assert!(f.retransmits > 0, "{f:?}");
    assert_eq!(f.cells_dropped, 0, "{f:?}");
}

#[test]
fn tiny_receive_ring_overflows_are_counted_not_fatal() {
    let params = jacobi::JacobiParams {
        n: 24,
        iters: 4,
        verify: true,
    };
    let expect = jacobi::reference(params.n, params.iters);
    let plan = FaultPlan {
        rx_ring_frames: 1,
        ..lossy(0.01, 0.0, 3)
    };
    let cfg = Config::paper_default().with_procs(4).with_faults(plan);
    let mut world = World::new(cfg);
    let (layout, progs) = jacobi::programs(&mut world, params);
    let report = world.run(progs);
    let grid = jacobi::result_grid(layout, params.iters);
    let got = collect_f64(&world, grid, params.n * params.n);
    for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 1e-12, "grid[{k}] = {g}, want {e}");
    }
    assert!(
        report.faults.ring_overflows > 0,
        "a single-frame ring must overflow under concurrent senders: {:?}",
        report.faults
    );
}

#[test]
fn large_messages_fragment_and_survive_cell_loss() {
    // With 8 KB pages a page response is ~170 cells; unfragmented, its
    // intact probability at 5% cell loss is (0.95)^170 ~ 2e-4 per attempt
    // and delivery effectively never happens. The reliable layer must
    // split it into max_frame_bytes frames that each can get through.
    let params = jacobi::JacobiParams {
        n: 24,
        iters: 4,
        verify: true,
    };
    let expect = jacobi::reference(params.n, params.iters);
    let cfg = Config::paper_default()
        .with_procs(4)
        .with_page_bytes(8192)
        .with_faults(lossy(0.05, 0.0, 9));
    let mut world = World::new(cfg);
    let (layout, progs) = jacobi::programs(&mut world, params);
    let report = world.run(progs);
    let grid = jacobi::result_grid(layout, params.iters);
    let got = collect_f64(&world, grid, params.n * params.n);
    for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 1e-12, "grid[{k}] = {g}, want {e}");
    }
    assert!(report.faults.cells_dropped > 0, "{:?}", report.faults);
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
}

#[test]
fn faults_work_on_the_standard_nic_too() {
    let params = jacobi::JacobiParams {
        n: 16,
        iters: 3,
        verify: true,
    };
    let expect = jacobi::reference(params.n, params.iters);
    let cfg = Config::paper_default()
        .standard()
        .with_procs(2)
        .with_faults(lossy(0.04, 0.0, 2));
    let mut world = World::new(cfg);
    let (layout, progs) = jacobi::programs(&mut world, params);
    let report = world.run(progs);
    let grid = jacobi::result_grid(layout, params.iters);
    let got = collect_f64(&world, grid, params.n * params.n);
    for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 1e-12, "grid[{k}] = {g}, want {e}");
    }
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
}
