//! Golden-report snapshot tests: the byte-identity determinism contract
//! (DESIGN.md §4.7) pinned down as checked-in fixtures.
//!
//! Each test runs one canonical configuration and compares the full
//! `RunReport` JSON byte-for-byte against `tests/golden/<name>.json`. Any
//! engine change that alters *anything* observable — an event reordering, a
//! stray cell copy that shifts a counter, a serialization tweak — fails the
//! suite with a unified first-difference diagnostic. Changes that are
//! *supposed* to alter the reports regenerate the fixtures with:
//!
//! ```text
//! CNI_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! The five configs cover the matrix that matters: both NIC kinds, the
//! lossless fast path and the go-back-N fault path, single-switch and
//! fat-tree fabrics, and three process counts.
//!
//! What a fixture may pin: anything observable through the `(time, seq)`
//! event order — timings, counters, histograms, fault statistics. What it
//! must not pin: engine-internal execution order (which worker dispatched
//! an event, how a window was sharded). The parallel executor
//! (DESIGN.md §4.11) reconstructs the serial `(time, seq)` order exactly,
//! and `tests/pdes_identity.rs` holds these same reports byte-identical
//! at every `--engine-workers` count — so a fixture that encoded anything
//! beyond `(time, seq)` would show up there as a divergence. Audited when
//! the parallel engine landed: the one such leak (protocol-cost jitter
//! drawn from a single engine-wide RNG, making each draw depend on the
//! global dispatch interleaving rather than the drawing node's own
//! history) was replaced by per-node streams, and the fixtures re-blessed.

use cni::Config;
use cni_apps::cholesky::CholeskyMatrix;
use cni_apps::experiments::{run_app, App};
use cni_faults::FaultPlan;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Render `report` exactly as the fixture stores it: pretty JSON plus a
/// trailing newline (so the files are POSIX text files).
fn render(report: &cni::RunReport) -> String {
    let mut s = serde_json::to_string_pretty(report).expect("RunReport serializes");
    s.push('\n');
    s
}

/// Point out the first differing line so a drift failure is debuggable
/// without an external diff tool.
fn first_difference(got: &str, want: &str) -> String {
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!(
                "first difference at line {}:\n  got:  {g}\n  want: {w}",
                i + 1
            );
        }
    }
    format!(
        "one report is a prefix of the other (got {} lines, want {})",
        got.lines().count(),
        want.lines().count()
    )
}

fn check_golden(name: &str, cfg: Config, app: App) {
    let report = run_app(cfg, app);
    let got = render(&report);
    let path = golden_path(name);
    if std::env::var_os("CNI_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write blessed fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run `CNI_BLESS=1 cargo test --test golden_reports`",
            path.display()
        )
    });
    assert!(
        got == want,
        "golden report `{name}` drifted from {}.\n{}\n\
         If the change is intentional, regenerate with \
         `CNI_BLESS=1 cargo test --test golden_reports`.",
        path.display(),
        first_difference(&got, &want)
    );
}

#[test]
fn jacobi8_cni_report_is_golden() {
    // The paper's canonical configuration: pins the CNI fast path —
    // Message Cache hit/miss counters, AIH dispatch costs, per-op
    // latency histograms — on a lossless single switch.
    check_golden(
        "jacobi8_cni",
        Config::paper_default(),
        App::Jacobi { n: 48, iters: 6 },
    );
}

#[test]
fn jacobi8_standard_report_is_golden() {
    // Same cluster under the baseline NIC: pins the interrupt-driven
    // receive path and kernel-mediated send costs the CNI numbers are
    // compared against.
    check_golden(
        "jacobi8_std",
        Config::paper_default().standard(),
        App::Jacobi { n: 48, iters: 6 },
    );
}

#[test]
fn water8_lossy_report_is_golden() {
    // A lossy channel exercises the go-back-N machinery: the fixture pins
    // retransmit counts, CRC failures, and fault statistics along with the
    // usual timing and cache numbers.
    let plan = FaultPlan {
        drop_prob: 0.02,
        corrupt_prob: 0.01,
        seed: 7,
        ..FaultPlan::none()
    };
    check_golden(
        "water8_lossy",
        Config::paper_default().with_faults(plan),
        App::Water {
            molecules: 27,
            steps: 2,
        },
    );
}

#[test]
fn jacobi64_fat_tree_report_is_golden() {
    // 64 processors across a 4-leaf fat-tree with NIC-resident
    // collectives: pins the multi-switch routing (trunk-link timing,
    // spine contention) and the NIC barrier-combining counters.
    check_golden(
        "jacobi64_ft",
        Config::paper_default()
            .with_fat_tree(4, 16, 16)
            .with_procs(64)
            .with_collectives(),
        App::Jacobi { n: 96, iters: 4 },
    );
}

#[test]
fn cholesky4_report_is_golden() {
    // Irregular task-graph workload on 4 processors: pins lock-chain
    // forwarding and the wait-time decomposition under contention, the
    // counters most sensitive to protocol-handling cost jitter.
    check_golden(
        "cholesky4",
        Config::paper_default().with_procs(4),
        App::Cholesky {
            matrix: CholeskyMatrix::Mesh { rows: 12, cols: 12 },
        },
    );
}
