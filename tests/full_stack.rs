//! Repository-level integration tests: the whole stack (applications →
//! DSM → NIC → PATHFINDER → ATM) wired together through the public APIs,
//! asserting the paper's qualitative claims at test-friendly sizes.

use cni::Config;
use cni_apps::cholesky::CholeskyMatrix;
use cni_apps::experiments::{
    self, cache_size_sweep, jumbo_improvement_pct, latency_curve, overhead_table, run_app,
    speedup_curve, App,
};

fn tiny_apps() -> Vec<App> {
    vec![
        App::Jacobi { n: 48, iters: 6 },
        App::Water {
            molecules: 27,
            steps: 2,
        },
        App::Cholesky {
            matrix: CholeskyMatrix::Mesh { rows: 12, cols: 12 },
        },
    ]
}

#[test]
fn cni_is_never_slower_across_the_granularity_spectrum() {
    // The paper's central comparison at every grain (§3.1).
    for app in tiny_apps() {
        let cni = run_app(Config::paper_default().with_procs(4), app);
        let std_ = run_app(Config::paper_default().with_procs(4).standard(), app);
        assert!(
            cni.wall.as_ps() as f64 <= std_.wall.as_ps() as f64 * 1.02,
            "{}: CNI {} vs standard {}",
            app.name(),
            cni.wall,
            std_.wall
        );
    }
}

#[test]
fn identical_protocol_traffic_on_both_interfaces() {
    // The paper holds software constant and varies only the interface; the
    // reproduction does exactly that: same faults, fetches, lock ops.
    for app in tiny_apps() {
        let cni = run_app(Config::paper_default().with_procs(4), app);
        let std_ = run_app(Config::paper_default().with_procs(4).standard(), app);
        let fetches = |r: &cni::RunReport| -> u64 {
            r.dsm.iter().map(|d| d.read_faults + d.write_faults).sum()
        };
        // Timing-dependent scheduling may shift a few faults, but the
        // workloads are logically identical.
        let (a, b) = (fetches(&cni) as f64, fetches(&std_) as f64);
        assert!(
            (a - b).abs() <= 0.25 * a.max(b) + 8.0,
            "{}: fault counts diverged wildly: {a} vs {b}",
            app.name()
        );
    }
}

#[test]
fn latency_reduction_peaks_around_one_third_at_page_size() {
    // Figure 14's headline: "for a 4KB page size transfer, the
    // communication latency is lower for the CNI architecture by as much
    // as 33%."
    let pts = latency_curve(Config::paper_default(), &[4096], 5);
    let cut = 1.0 - pts[0].cni_us / pts[0].std_us;
    assert!(
        (0.25..=0.45).contains(&cut),
        "4 KB latency reduction {:.1}% out of the paper's band",
        cut * 100.0
    );
    // And the standard curve lands near the paper's ~200 us end point.
    assert!(
        (150.0..=260.0).contains(&pts[0].std_us),
        "standard 4 KB latency {} us",
        pts[0].std_us
    );
}

#[test]
fn jumbo_cells_improve_page_dominated_traffic() {
    // Table 5: the ATM cell size is a detriment; removing it helps
    // workloads whose communication is page transfers. Lock-chatter-heavy
    // workloads (tiny Cholesky) sit inside scheduling noise, so assert the
    // claim on the page-dominated applications and only a no-blow-up bound
    // on Cholesky (see EXPERIMENTS.md, Table 5).
    for app in [
        App::Jacobi { n: 48, iters: 6 },
        App::Water {
            molecules: 27,
            steps: 2,
        },
    ] {
        let pct = jumbo_improvement_pct(Config::paper_default(), app, 4);
        assert!(
            pct > 0.0,
            "{}: unrestricted cells should help, got {pct:.2}%",
            app.name()
        );
    }
    let chol = jumbo_improvement_pct(
        Config::paper_default(),
        App::Cholesky {
            matrix: CholeskyMatrix::Mesh { rows: 12, cols: 12 },
        },
        4,
    );
    assert!(
        chol > -8.0,
        "jumbo cells should not meaningfully hurt: {chol:.2}%"
    );
}

#[test]
fn message_cache_size_sweep_is_monotonicish_and_saturates() {
    // Figure 13's shape: hit ratio grows with cache size and saturates.
    let app = App::Jacobi { n: 96, iters: 8 };
    let sizes = [4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024];
    let pts = cache_size_sweep(Config::paper_default(), app, 4, &sizes);
    assert!(pts[0].hit_ratio_pct <= pts.last().unwrap().hit_ratio_pct + 1e-9);
    let last_two = (pts[2].hit_ratio_pct - pts[3].hit_ratio_pct).abs();
    assert!(
        last_two < 5.0,
        "hit ratio should saturate at large caches: {pts:?}"
    );
}

#[test]
fn overhead_tables_favor_cni_on_synch_overhead() {
    // Tables 2-4: CNI's synch overhead is consistently lower; computation
    // is identical software on both.
    for app in tiny_apps() {
        let (cni, std_) = overhead_table(Config::paper_default(), app, 4);
        assert!(
            cni.synch_overhead <= std_.synch_overhead,
            "{}: overhead {} !<= {}",
            app.name(),
            cni.synch_overhead,
            std_.synch_overhead
        );
        let rel = (cni.computation - std_.computation).abs() / std_.computation.max(1e-12);
        assert!(rel < 0.35, "{}: computation diverged {rel}", app.name());
    }
}

#[test]
fn speedup_curves_are_deterministic() {
    let app = App::Jacobi { n: 48, iters: 4 };
    let a = speedup_curve(Config::paper_default(), app, &[2, 4]);
    let b = speedup_curve(Config::paper_default(), app, &[2, 4]);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cni_speedup.to_bits(), y.cni_speedup.to_bits());
        assert_eq!(x.std_speedup.to_bits(), y.std_speedup.to_bits());
    }
}

#[test]
fn standard_interface_never_hits_the_message_cache() {
    for app in tiny_apps() {
        let std_ = run_app(Config::paper_default().with_procs(4).standard(), app);
        assert_eq!(std_.hit_ratio(), 0.0, "{}", app.name());
        assert_eq!(
            std_.nic.iter().map(|n| n.polls).sum::<u64>(),
            0,
            "{}: standard NICs have no polling path",
            app.name()
        );
    }
}

#[test]
fn seed_changes_workload_but_not_protocol_sanity() {
    for seed in [1u64, 2, 3] {
        let mut cfg = Config::paper_default().with_procs(4);
        cfg.seed = seed;
        let r = experiments::run_app(
            cfg,
            App::Cholesky {
                matrix: CholeskyMatrix::Small { n: 64, band: 4 },
            },
        );
        assert!(r.wall > cni::SimTime::ZERO);
        assert!(r.messages > 0);
    }
}

#[test]
fn each_ablated_mechanism_costs_performance() {
    // Removing any one of the three CNI mechanisms must not make the
    // cluster faster, and the standard NIC (all three removed) is the
    // slowest variant up to scheduling noise.
    let rows = experiments::ablation(Config::paper_default(), App::Jacobi { n: 64, iters: 10 }, 4);
    assert_eq!(rows.len(), 5);
    let full = &rows[0];
    for r in &rows[1..] {
        assert!(
            r.slowdown_vs_cni >= 0.98,
            "{}: ablation faster than full CNI ({:.3})",
            r.variant,
            r.slowdown_vs_cni
        );
    }
    let std_row = rows.last().unwrap();
    assert!(
        std_row.slowdown_vs_cni >= full.slowdown_vs_cni,
        "standard should not beat the full CNI"
    );
    // Knocking out the Message Cache kills the hit ratio.
    let no_mc = rows
        .iter()
        .find(|r| r.variant.contains("Message Cache"))
        .unwrap();
    assert_eq!(no_mc.hit_ratio_pct, 0.0);
    // Disabling polling forces interrupts back in.
    let no_poll = rows.iter().find(|r| r.variant.contains("polling")).unwrap();
    assert!(no_poll.interrupts > full.interrupts);
}

#[test]
fn traffic_decomposition_matches_application_character() {
    // Jacobi's steady-state traffic is page transfers (one writer per
    // page); Cholesky's concurrent write sharing adds diff merges.
    let jacobi = run_app(
        Config::paper_default().with_procs(4),
        App::Jacobi { n: 48, iters: 8 },
    );
    assert!(jacobi.page_transfers() > 0);
    assert!(
        jacobi.page_transfers() > 4 * jacobi.diff_transfers(),
        "Jacobi should move pages, not diffs: {} pages vs {} diffs",
        jacobi.page_transfers(),
        jacobi.diff_transfers()
    );

    let chol = run_app(
        Config::paper_default().with_procs(4),
        App::Cholesky {
            matrix: CholeskyMatrix::Mesh { rows: 12, cols: 12 },
        },
    );
    assert!(chol.page_transfers() > 0);
    assert!(
        chol.diff_transfers() > 0,
        "Cholesky's concurrent write sharing must exercise diff merges"
    );
    // Kind counts account for every transported message.
    assert_eq!(chol.msg_kinds.iter().sum::<u64>(), chol.messages);
}
