//! Property test: for any loss/corruption probabilities in (0, 0.2] and
//! any fault seed, a small Jacobi run completes and computes exactly the
//! lossless reference answer. This is the reliability layer's contract —
//! faults may cost time, never correctness.

use cni::{Config, FaultPlan, World};
use cni_apps::jacobi;
use cni_dsm::access;
use proptest::prelude::*;

fn run_grid(plan: FaultPlan) -> Vec<f64> {
    let params = jacobi::JacobiParams {
        n: 12,
        iters: 2,
        verify: true,
    };
    let cfg = Config::paper_default()
        .with_procs(2)
        .with_page_bytes(512)
        .with_faults(plan);
    let mut world = World::new(cfg);
    let (layout, progs) = jacobi::programs(&mut world, params);
    let _ = world.run(progs);
    let grid = jacobi::result_grid(layout, params.iters);
    let page_bytes = world.config().page_bytes;
    (0..params.n * params.n)
        .map(|k| {
            let addr = grid.add((k * 8) as u64);
            let page = addr.page(page_bytes);
            let word = addr.word(page_bytes);
            for p in 0..world.config().procs {
                if let Some(h) = world.space(p).try_page(page) {
                    if h.flags.state() != access::INVALID {
                        return f64::from_bits(h.frame.load(word));
                    }
                }
            }
            panic!("no valid copy of word {k}");
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    fn any_fault_scenario_completes_with_lossless_results(
        drop_pm in 1u64..=200,
        corrupt_pm in 1u64..=200,
        seed in 1u64..=1_000_000,
    ) {
        let expect = jacobi::reference(12, 2);
        let plan = FaultPlan {
            drop_prob: drop_pm as f64 / 1000.0,
            corrupt_prob: corrupt_pm as f64 / 1000.0,
            seed,
            ..FaultPlan::none()
        };
        let got = run_grid(plan);
        for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
            prop_assert!(
                (g - e).abs() < 1e-12,
                "drop={drop_pm}pm corrupt={corrupt_pm}pm seed={seed}: grid[{k}] = {g}, want {e}"
            );
        }
    }
}
