//! Tracing-layer integration tests: determinism of the exported event
//! stream, Chrome-trace structural validity, and the zero-cost claim for
//! the report's new observability fields.

use cni::{Config, SimTime, TraceSink, REPORT_VERSION};
use cni_apps::experiments::{run_app, run_app_traced, App};
use cni_trace::export::{write_chrome, write_jsonl};
use cni_trace::TraceRecord;
use serde_json::Value;

fn tiny_jacobi() -> App {
    App::Jacobi { n: 32, iters: 4 }
}

fn traced_jacobi() -> (Vec<TraceRecord>, cni::RunReport) {
    let sink = TraceSink::ring(1 << 18);
    let report = run_app_traced(
        Config::paper_default().with_procs(4),
        tiny_jacobi(),
        sink.clone(),
        Some(SimTime::from_us(100)),
    );
    (sink.drain(), report)
}

#[test]
fn jsonl_export_is_byte_identical_across_runs() {
    // Same config, same seed: the simulation is deterministic, so the
    // exported event stream must be too — byte for byte.
    let mut out = [Vec::new(), Vec::new()];
    for buf in &mut out {
        let (records, _) = traced_jacobi();
        assert!(!records.is_empty());
        write_jsonl(buf, &records).unwrap();
    }
    assert!(!out[0].is_empty());
    assert_eq!(out[0], out[1], "trace export must be deterministic");
}

#[test]
fn chrome_export_is_valid_and_covers_components_and_nodes() {
    let (records, _) = traced_jacobi();
    let mut buf = Vec::new();
    write_chrome(&mut buf, &records).unwrap();
    let v: Value = serde_json::from_slice(&buf).expect("chrome trace parses");
    let Value::Object(top) = v else {
        panic!("top level must be an object")
    };
    let Some(Value::Array(events)) = top.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    let mut pids = std::collections::BTreeSet::new();
    let mut components = std::collections::BTreeSet::new();
    for e in events {
        let Value::Object(e) = e else {
            panic!("event must be an object")
        };
        let ph = e.get("ph").and_then(Value::as_str).expect("ph present");
        if ph == "M" {
            if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                let Some(Value::Object(args)) = e.get("args") else {
                    panic!("metadata args missing");
                };
                components.insert(
                    args.get("name")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_string(),
                );
            }
            continue;
        }
        pids.insert(e.get("pid").and_then(Value::as_u64).expect("pid present"));
        assert!(e.get("ts").is_some(), "timed event must carry ts");
    }
    let node_pids: Vec<u64> = pids.iter().copied().filter(|&p| p != 0).collect();
    assert!(
        node_pids.len() >= 2,
        "events from at least 2 node tracks, got {node_pids:?}"
    );
    assert!(
        components.len() >= 4,
        "events from at least 4 components, got {components:?}"
    );
}

#[test]
fn metrics_samples_appear_per_node_and_sum_to_totals() {
    let (records, report) = traced_jacobi();
    let samples: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| matches!(r.event, cni::TraceEvent::Metrics(_)))
        .collect();
    assert!(!samples.is_empty(), "sampler must have fired");
    // Deltas per node accumulate to at most the end-of-run totals (the
    // final partial interval is not sampled).
    let mut tx: u64 = 0;
    for r in &samples {
        if let cni::TraceEvent::Metrics(m) = &r.event {
            assert_eq!(m.interval_ps, SimTime::from_us(100).as_ps());
            tx += m.tx_messages;
        }
    }
    let total: u64 = report.nic.iter().map(|n| n.tx_messages).sum();
    assert!(tx <= total, "sampled deltas ({tx}) exceed totals ({total})");
}

#[test]
fn report_carries_version_latency_and_trace_summary() {
    let (_, traced) = traced_jacobi();
    assert_eq!(traced.version, REPORT_VERSION);
    let summary = traced.trace.expect("trace summary when tracing");
    assert!(summary.recorded > 0);
    assert!(!traced.latency.is_empty(), "latency histograms populated");
    for l in &traced.latency {
        assert!(l.count > 0);
        assert!(l.mean_us > 0.0);
        assert!(l.p50_us <= l.p99_us * 1.0001, "{l:?}");
    }

    // Disabled tracing: no summary, but latency still measured — and the
    // measured wall must be identical, since instrumentation must not
    // perturb virtual time.
    let plain = run_app(Config::paper_default().with_procs(4), tiny_jacobi());
    assert!(plain.trace.is_none());
    assert!(!plain.latency.is_empty());
    assert_eq!(plain.wall, traced.wall, "tracing must not change timing");
}
