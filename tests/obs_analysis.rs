//! Observability contract tests: the `cni-obs` analysis pipeline pinned
//! end-to-end against a golden fixture, plus the determinism and
//! stage-accounting guarantees ISSUE acceptance demands.
//!
//! The golden fixture is the full `cni-analyze` rendering of the
//! canonical Jacobi-8 run (the same workload `tests/golden/jacobi8_cni.json`
//! pins as a report). Regenerate after intentional changes with:
//!
//! ```text
//! CNI_BLESS=1 cargo test --test obs_analysis
//! ```

use cni::Config;
use cni_apps::experiments::{run_app_obs, App};
use cni_faults::FaultPlan;
use cni_obs::{critical_path, render_analysis, SpanTree};
use std::path::PathBuf;

fn jacobi8() -> App {
    App::Jacobi { n: 48, iters: 6 }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_jacobi8.txt")
}

#[test]
fn obs_jacobi8_analysis_is_golden() {
    let (_, records) = run_app_obs(Config::paper_default(), jacobi8());
    let got = render_analysis(&records);
    let path = golden_path();
    if std::env::var_os("CNI_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write blessed fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run `CNI_BLESS=1 cargo test --test obs_analysis`",
            path.display()
        )
    });
    assert!(
        got == want,
        "obs analysis drifted from {}.\nIf the change is intentional, regenerate with \
         `CNI_BLESS=1 cargo test --test obs_analysis`.",
        path.display()
    );
}

#[test]
fn analysis_is_byte_identical_across_reruns() {
    let (r1, recs1) = run_app_obs(Config::paper_default(), jacobi8());
    let (r2, recs2) = run_app_obs(Config::paper_default(), jacobi8());
    assert_eq!(render_analysis(&recs1), render_analysis(&recs2));
    assert_eq!(
        serde_json::to_string(&r1).unwrap(),
        serde_json::to_string(&r2).unwrap()
    );
}

#[test]
fn analysis_is_byte_identical_under_cell_loss() {
    // 5% cell loss exercises the go-back-N path: retransmit frame spans,
    // ACK spans and unclosed spans for dropped attempts — all of it must
    // still be reproducible byte-for-byte at a fixed seed.
    let plan = FaultPlan {
        drop_prob: 0.05,
        seed: 11,
        ..FaultPlan::none()
    };
    let cfg = Config::paper_default().with_procs(4).with_faults(plan);
    let (_, recs1) = run_app_obs(cfg, jacobi8());
    let (_, recs2) = run_app_obs(cfg, jacobi8());
    let a = render_analysis(&recs1);
    assert_eq!(a, render_analysis(&recs2));
    // Dropped attempts leave their frame spans unclosed — the loss
    // diagnostic the span accounting exists for.
    let tree = SpanTree::build(&recs1);
    assert!(tree.unclosed() > 0, "{a}");
}

#[test]
fn stage_sums_tile_end_to_end_exactly() {
    let (report, records) = run_app_obs(Config::paper_default(), jacobi8());
    let stages = report.stages.expect("obs run populates stages");
    assert!(stages.messages > 0);
    assert_eq!(stages.unclosed, 0, "lossless run closes every span");
    // The handler stage is defined as the residual, so the tiling must be
    // *exact*, not merely within rounding.
    for k in &stages.kinds {
        assert_eq!(
            k.stages.sum_ps(),
            k.e2e_ps,
            "stage sums must tile e2e for kind {:#x}",
            k.kind
        );
    }
    let tree = SpanTree::build(&records);
    assert_eq!(tree.opened, tree.closed);
}

#[test]
fn barrier_critical_path_has_linked_spans() {
    let (_, records) = run_app_obs(Config::paper_default(), jacobi8());
    let tree = SpanTree::build(&records);
    let cp = critical_path(&records, &tree).expect("barrier run has a critical path");
    assert!(cp.epoch.is_some(), "anchor resolves to a barrier epoch");
    assert!(
        cp.links.len() >= 3,
        "critical path must chain >= 3 causally linked spans, got {}",
        cp.links.len()
    );
    // Root-first order: opens are monotonically non-decreasing.
    for w in cp.links.windows(2) {
        assert!(w[0].open_ps <= w[1].open_ps);
    }
    let last = cp.links.last().unwrap();
    assert_eq!(last.kind, 0xD4, "anchor is a barrier release");
}

#[test]
fn jsonl_export_reanalyzes_identically() {
    // The `cni-analyze` offline path: exporting the trace to JSONL and
    // reading it back must reproduce the live analysis byte-for-byte.
    let (_, records) = run_app_obs(Config::paper_default().with_procs(2), jacobi8());
    let mut buf = Vec::new();
    cni_trace::export::write_jsonl(&mut buf, &records).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let back = cni_obs::read_jsonl(&text).unwrap();
    assert_eq!(render_analysis(&records), render_analysis(&back));
}
