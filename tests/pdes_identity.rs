//! Parallel-engine identity battery: the full `RunReport` JSON must be
//! **byte-for-byte identical** at every `--engine-workers` count
//! (DESIGN.md §4.11's determinism contract), across the configuration
//! matrix that exercises every engine path — both fabric topologies,
//! NIC-resident collectives, and the go-back-N fault machinery — and
//! through a checkpoint/resume seam where the resumed tail runs on the
//! parallel engine.
//!
//! These tests are deliberately exact (`==` on serialized JSON, not
//! tolerances): conservative lookahead plus the serial replay barrier
//! reconstructs the serial engine's `(time, seq)` dispatch order, so any
//! divergence — a counter off by one, a reordered histogram bucket — is
//! an engine bug, never acceptable noise.

use cni::{Config, RunReport, World};
use cni_apps::experiments::{build_programs, run_app, App};
use cni_faults::FaultPlan;
use std::cell::RefCell;
use std::rc::Rc;

fn json(r: &RunReport) -> String {
    serde_json::to_string_pretty(r).expect("RunReport serializes")
}

/// Assert byte-identity of the serial run against workers ∈ {2, 4, 8}.
fn identical_at_all_worker_counts(cfg: Config, app: App) {
    let serial = json(&run_app(cfg.with_engine_workers(1), app));
    for workers in [2, 4, 8] {
        let parallel = json(&run_app(cfg.with_engine_workers(workers), app));
        assert!(
            parallel == serial,
            "RunReport diverged at --engine-workers {workers}\n{}",
            first_difference(&parallel, &serial)
        );
    }
}

fn first_difference(got: &str, want: &str) -> String {
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!(
                "first difference at line {}:\n  parallel: {g}\n  serial:   {w}",
                i + 1
            );
        }
    }
    format!(
        "one report is a prefix of the other ({} vs {} lines)",
        got.lines().count(),
        want.lines().count()
    )
}

/// Single-switch, 8 nodes, lossless: the paper's canonical configuration.
#[test]
fn jacobi8_single_switch_identical() {
    identical_at_all_worker_counts(Config::paper_default(), App::Jacobi { n: 48, iters: 6 });
}

/// 5% cell loss (plus corruption) on the go-back-N path: retransmission
/// timers, duplicate suppression and fault-injector RNG draws all cross
/// the commit barrier; identity here pins the whole reliability layer.
#[test]
fn water8_lossy_identical() {
    let plan = FaultPlan {
        drop_prob: 0.05,
        corrupt_prob: 0.01,
        seed: 7,
        ..FaultPlan::none()
    };
    identical_at_all_worker_counts(
        Config::paper_default().with_faults(plan),
        App::Water {
            molecules: 27,
            steps: 2,
        },
    );
}

/// 64 nodes over a fat-tree with NIC-resident collectives: multi-switch
/// routing plus the barrier-combining handlers, the configuration with
/// the most cross-shard traffic per window.
#[test]
fn jacobi64_fat_tree_collectives_identical() {
    identical_at_all_worker_counts(
        Config::paper_default()
            .with_fat_tree(4, 16, 16)
            .with_procs(64)
            .with_collectives(),
        App::Jacobi { n: 96, iters: 4 },
    );
}

/// Checkpoint at T under the (serial-pinned) checkpointing run, resume
/// the tail on the parallel engine: the final report must still equal
/// the uninterrupted serial run byte-for-byte. This is the seam the two
/// subsystems share — the snapshot codec restores per-node jitter
/// streams and in-flight frame state, and `resume_run`'s tail goes
/// through the same engine selection as a fresh run.
#[test]
fn checkpoint_then_parallel_resume_matches_serial_golden() {
    let cfg = Config::paper_default();
    let app = App::Jacobi { n: 48, iters: 6 };
    let golden = json(&run_app(cfg, app));

    // Checkpointed run (journalling on; the cadence pins it serial).
    let mut world = World::new(cfg);
    world.enable_journal();
    let progs = build_programs(&mut world, app);
    let snaps: Rc<RefCell<Vec<serde::Value>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = snaps.clone();
    world.set_checkpoint(
        60,
        Box::new(move |w: &World| {
            sink.borrow_mut().push(w.take_snapshot());
        }),
    );
    let checkpointed = json(&world.run(progs));
    drop(world);
    assert!(
        checkpointed == golden,
        "checkpointing perturbed the run\n{}",
        first_difference(&checkpointed, &golden)
    );
    let snaps = Rc::try_unwrap(snaps)
        .expect("sink dropped with world")
        .into_inner();
    assert!(snaps.len() >= 2, "workload too small to checkpoint");

    // Resume every snapshot with 4 engine workers; each tail must land
    // on the same bytes.
    for (i, snap) in snaps.iter().enumerate() {
        let mut world = World::new(cfg.with_engine_workers(4));
        let progs = build_programs(&mut world, app);
        let resumed = json(
            &world
                .resume_run(snap, progs)
                .expect("snapshot taken this run must resume"),
        );
        assert!(
            resumed == golden,
            "parallel resume from snapshot {i} diverged\n{}",
            first_difference(&resumed, &golden)
        );
    }
}
