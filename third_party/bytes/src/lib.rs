//! Vendored minimal stand-in for the `bytes` crate: cheaply cloneable
//! immutable [`Bytes`] (shared backing storage plus a range), a growable
//! [`BytesMut`], and the big-endian `put_*` writers of the [`BufMut`]
//! trait that this workspace uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer (shares storage, no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Big-endian append operations (the subset of bytes' `BufMut` used here).
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, data: &[u8]);
    /// Append `count` copies of `byte`.
    fn put_bytes(&mut self, byte: u8, count: usize);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
    fn put_bytes(&mut self, byte: u8, count: usize) {
        self.buf.resize(self.buf.len() + count, byte);
    }
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}
