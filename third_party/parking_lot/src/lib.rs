//! Vendored minimal stand-in for `parking_lot`: the same no-poisoning
//! guard-returning API, implemented over `std::sync` primitives.

use std::sync;
pub use sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose `read`/`write` return guards directly
/// (poisoning is converted into a panic, matching parking_lot's
/// no-poisoning semantics for this workspace's use).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the mutex.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
