//! Vendored minimal stand-in for the `criterion` crate: timed best-effort
//! micro-benchmarks with criterion's API shape (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`/`iter_batched`).
//!
//! No statistics, plots or comparisons — each benchmark is warmed up
//! briefly, then timed over a fixed batch and reported as ns/iter on
//! stdout. CLI filter arguments (anything not starting with `-`) select
//! benchmarks by substring, like upstream criterion.

// A benchmark harness measures host wall time by definition; the
// workspace-wide disallowed-methods rule does not apply to it.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.selected(id) {
            run_one(id, &mut f);
        }
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.c.selected(&full) {
            run_one(&full, &mut f);
        }
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed_ns: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        println!(
            "{:40} {:>12.1} ns/iter",
            id,
            b.elapsed_ns as f64 / b.iters as f64
        );
    } else {
        println!("{id:40} (no measurements)");
    }
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine` over a fixed batch after a short warmup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..10 {
            black_box(routine());
        }
        let iters = 300u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += iters;
    }

    /// Time `routine` on inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = 100u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
        self.iters += iters;
    }
}

/// Declare a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
