//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for the offline serde stand-in.
//!
//! Supports exactly the shapes this workspace uses:
//! * structs with named fields (serialized as JSON objects, declaration
//!   order preserved),
//! * newtype tuple structs (transparent),
//! * enums with unit variants (serialized as the variant-name string) and
//!   struct variants (externally tagged: `{"Variant": {..fields..}}`).
//!
//! `#[serde(...)]` attributes are NOT interpreted; types needing custom
//! representations implement the traits by hand.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored trait: `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (the vendored trait: `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse().expect("generated Deserialize impl parses")
}

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields (N == 1 is the transparent newtype).
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, variant shape) pairs.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before the struct/enum keyword.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break id.to_string();
            }
            _ => i += 1,
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }
    let shape = if kind == "enum" {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body, found {other}"),
        };
        Shape::Enum(parse_variants(body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        }
    };
    Item { name, shape }
}

/// Split a token stream at top-level commas, treating `<...>` nesting as
/// one level (angle brackets are bare puncts, not groups).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(t);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strip leading `#[...]` attributes and `pub`/`pub(...)` visibility.
fn strip_attrs_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_vis(chunk);
            match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_vis(chunk);
            let name = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let shape = match rest.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("vendored serde_derive does not support tuple enum variants")
                }
                _ => VariantShape::Unit,
            };
            (name, shape)
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                    )),
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut __m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{v}\".to_string(), ::serde::Value::Object(__m));\n\
                             ::serde::Value::Object(__outer)\n}},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = format!(
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     __o.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| e.at(\"{f}\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected array for {name}\"))?;\n\
                 Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::from_value(\
                     __a.get({i}).unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut named_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n"));
                    }
                    VariantShape::Named(fields) => {
                        let mut inner = format!(
                            "let __o = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::msg(\"expected object for {name}::{v}\"))?;\n\
                             return Ok({name}::{v} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __o.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| e.at(\"{f}\"))?,\n"
                            ));
                        }
                        inner.push_str("});");
                        named_arms.push_str(&format!("\"{v}\" => {{\n{inner}\n}}\n"));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let Some(__o) = __v.as_object() {{\n\
                 if let Some((__k, __inner)) = __o.entries().first() {{\n\
                 match __k.as_str() {{\n{named_arms}_ => {{}}\n}}\n}}\n}}\n\
                 Err(::serde::DeError::msg(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
