//! Vendored minimal stand-in for `crossbeam`: just the bounded channel
//! API this workspace uses, implemented over `std::sync::mpsc`.

/// Bounded MPSC channels with crossbeam's API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Create a bounded channel with the given capacity (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// The sending half (cloneable).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is accepted; errors when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The channel disconnected with the message unsent.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel disconnected with nothing left to receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel disconnected.
        Disconnected,
    }
}
