//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of serde it actually uses: a
//! JSON-shaped data model ([`Value`]), [`Serialize`]/[`Deserialize`]
//! traits that convert to and from it, and (behind the `derive` feature)
//! derive macros for plain structs and enums. The companion vendored
//! `serde_json` crate supplies text encoding/decoding on top of this
//! model.
//!
//! Only what the workspace needs is implemented; this is not a general
//! serde replacement.

pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// New error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// Contextualize an error with the field it occurred at.
    pub fn at(self, field: &str) -> Self {
        DeError(format!("{}: {}", field, self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Self as a JSON-shaped value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Self from a JSON-shaped value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::Number(Number::U64(n as u64)) }
                else { Value::Number(Number::I64(n)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::msg("array length mismatch"))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(a) => Ok(($($t::from_value(
                        a.get($n).ok_or_else(|| DeError::msg("tuple too short"))?
                    )?,)+)),
                    _ => Err(DeError::msg("expected tuple array")),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
