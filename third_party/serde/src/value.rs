//! The JSON-shaped data model shared by the vendored `serde` and
//! `serde_json` crates: [`Value`], [`Number`] and the insertion-ordered
//! [`Map`]. Includes the compact/pretty writers and the text parser that
//! `serde_json` exposes.

use std::fmt::{self, Write as _};
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Numeric value as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(f) => f,
        }
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map (field order is preserved so
/// struct serialization is deterministic).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert, replacing (in place) any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Does the map contain `key`?
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// As `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As a bool if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64` if this is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As an array if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable array if this is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As a mutable object if this is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Write compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.entries().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Write pretty JSON (two-space indents) into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.entries().iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(f) if f.is_finite() => {
            let start = out.len();
            let _ = write!(out, "{f}");
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_f64() == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}
macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::Number(Number::U64(n as u64)) }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);
macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                if n >= 0 { Value::Number(Number::U64(n as u64)) }
                else { Value::Number(Number::I64(n as i64)) }
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize);
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F64(f))
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::F64(f as f64))
    }
}
impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

/// Parse a JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.pos += 1;
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // hex4 advances past the 'u'
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read 4 hex digits following the current position (called with pos at
    /// the 'u' of a `\u` escape; leaves pos at the last digit).
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = start + 3;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F64(f)))
                .map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|n| Value::Number(Number::I64(n)))
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(|n| Value::Number(Number::U64(n)))
                .map_err(|e| e.to_string())
        }
    }
}
