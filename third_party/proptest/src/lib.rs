//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] test macro, `prop_assert*` macros, [`Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`Just`],
//! [`prop_oneof!`], `any::<T>()`, `collection::vec`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (the failing case's values are
//! simply reported via the panic message), and generation is driven by a
//! fixed-seed deterministic RNG so test runs are reproducible.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving value generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator: every test run sees the same case sequence.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x0DD0_5EED_CAFE_F00D,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// How many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A failed property case (carried out of the test body by the
/// `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The whole-domain strategy for `T` (see [`any`]).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy drawing from `T`'s full domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// An element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy generating vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property failed at case {}: {}", __case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert inside a [`proptest!`] body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_and_vecs(x in 3u32..17, v in collection::vec(0u64..5, 2..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        fn tuples_maps_and_oneof(
            (a, b) in (0u8..4, any::<bool>()),
            c in prop_oneof![Just(1u8), Just(2u8)],
            d in (0usize..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(a < 4);
            let _ = b;
            prop_assert!(c == 1 || c == 2);
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 21);
        }
    }
}
