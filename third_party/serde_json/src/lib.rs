//! Vendored minimal stand-in for the `serde_json` crate, built on the
//! vendored `serde` data model.
//!
//! Provides the calls this workspace uses: `to_string`,
//! `to_string_pretty`, `to_writer`, `to_value`, `from_str`, `from_slice`,
//! the [`json!`] macro, and the [`Value`]/[`Map`] types (re-exported from
//! `serde::value`). Output is deterministic: object member order is
//! insertion order (declaration order for derived structs).

pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;

/// Encode/decode error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias for this crate's operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` into the [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut s = String::new();
    value.to_value().write_compact(&mut s);
    Ok(s)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut s = String::new();
    value.to_value().write_pretty(&mut s, 0);
    Ok(s)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = serde::value::parse(s).map_err(Error)?;
    Ok(T::from_value(&v)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Build a [`Value`] from a JSON-shaped literal. Keys must be string
/// literals; values may be any expression convertible via
/// `Value::from` (nest `json!` calls for object/array values built from
/// expressions).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(__m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = json!({
            "a": 1u64,
            "b": json!([1u64, 2u64]),
            "c": "x",
            "d": true,
            "e": 0.5,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[1,2],"c":"x","d":true,"e":0.5}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&json!(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(0.0005)).unwrap(), "0.0005");
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"k": json!([1u64]), "s": "hi"});
        let p = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&p).unwrap();
        assert_eq!(back, v);
    }
}
