//! Vendored minimal stand-in for the `rand` crate: a deterministic
//! splitmix64-based generator behind the `Rng`/`SeedableRng` API subset
//! this workspace uses (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`).
//!
//! Determinism note: the stream differs from upstream rand's `StdRng`,
//! but everything in this repository only requires *reproducible*
//! pseudo-randomness per seed, which this provides.

use std::ops::Range;

/// Concrete generators.
pub mod rngs {
    /// A deterministic 64-bit generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    /// Alias: the small generator is the same splitmix64 core.
    pub type SmallRng = StdRng;
}

use rngs::StdRng;

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types a generator can sample uniformly ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        splitmix64(&mut rng.state)
    }
}
impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (splitmix64(&mut rng.state) >> 32) as u32
    }
}
impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        splitmix64(&mut rng.state) & 1 == 1
    }
}
impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 random bits scaled into [0, 1).
        (splitmix64(&mut rng.state) >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample(rng: &mut StdRng) -> Self {
        (splitmix64(&mut rng.state) >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Integer types [`Rng::gen_range`] can sample from a `Range`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires a non-empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = splitmix64(&mut rng.state) as u128 % span;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generator operations this workspace uses.
pub trait Rng {
    /// Draw a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draw uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
