//! Umbrella crate for the CNI reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual functionality
//! lives in the `cni-*` crates; start with the [`cni`] facade crate.

pub use cni;
pub use cni_apps;
pub use cni_atm;
pub use cni_dsm;
pub use cni_nic;
pub use cni_pathfinder;
pub use cni_sim;
