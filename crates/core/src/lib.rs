//! `cni` — the public facade of the CNI reproduction: configure a
//! simulated workstation cluster, run programs on it, and measure what the
//! paper measures.
//!
//! ```
//! use cni::{Config, World};
//!
//! // A 2-processor CNI cluster with the paper's Table-1 parameters.
//! let mut world = World::new(Config::paper_default().with_procs(2));
//! let base = world.alloc(4096);
//! let report = world.run(vec![
//!     Box::new(move |ctx| {
//!         ctx.write_u64(base, 42);
//!         ctx.barrier();
//!     }),
//!     Box::new(move |ctx| {
//!         ctx.barrier();
//!         assert_eq!(ctx.read_u64(base), 42);
//!     }),
//! ]);
//! assert!(report.wall > cni_sim::SimTime::ZERO);
//! ```
//!
//! The crate wires together the substrates built for this reproduction:
//! [`cni_sim`] (deterministic discrete-event kernel and co-threaded
//! processors), [`cni_atm`] (cells, AAL5, banyan switch), [`cni_pathfinder`]
//! (the packet classifier), [`cni_nic`] (Message Cache, Application Device
//! Channels, Application Interrupt Handler runtime, and the standard
//! baseline NIC) and [`cni_dsm`] (lazy invalidate release consistency).

#![deny(missing_docs)]

pub mod config;
pub mod ctx;
pub(crate) mod pdes;
pub mod report;
pub mod snapshot;
pub mod world;

pub use config::{Config, ProtoCosts};
pub use ctx::{ProcCtx, Reply};
pub use report::{
    kind_name, speedup, KindHistogram, KindLatency, ProcTimes, RunReport, OLDEST_PARSEABLE_VERSION,
    REPORT_VERSION,
};
pub use snapshot::SNAPSHOT_SCHEMA;
pub use world::{Program, World};

// Re-export the tracing surface so embedders need only this crate.
pub use cni_trace::{TraceEvent, TraceRecord, TraceSink, TraceSummary};

// Re-export the observability surface (span analysis over drained traces)
// so report consumers can interpret `RunReport::stages`.
pub use cni_obs::{ObsReport, SpanTree};

// Re-export the fault-injection surface so embedders need only this crate.
pub use cni_faults::{BrownoutWindow, FaultPlan, FaultStats};

// Re-export the identifiers applications use.
pub use cni_dsm::{LockId, PageId, ProcId, VAddr};
pub use cni_nic::NicKind;
pub use cni_sim::SimTime;
