//! The application programming interface: what a simulated processor's
//! program sees.
//!
//! A program is a closure receiving a [`ProcCtx`]. Shared-memory reads and
//! writes take the fast path — a relaxed atomic state check plus the word
//! access — and only *yield* to the simulation engine on faults,
//! synchronisation, message passing, and at termination. Computation is
//! charged with [`ProcCtx::compute`] and batched locally, so the handshake
//! cost is paid per simulated *communication event*, not per arithmetic
//! operation (the execution-driven trade Proteus made).

use cni_dsm::NodeSpace;
use cni_dsm::{access, LockId, PageHandle, PageId, VAddr};
use cni_sim::Port;
use std::collections::HashMap;
use std::sync::Arc;

/// Operations that reach the simulation engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Shared read faulted on `page`.
    ReadFault(PageId),
    /// Shared write faulted on `page`.
    WriteFault(PageId),
    /// Acquire a DSM lock.
    Acquire(LockId),
    /// Release a DSM lock.
    Release(LockId),
    /// Arrive at the global barrier.
    Barrier,
    /// Send an application-level message (message-passing paradigm).
    SendTo {
        /// Destination processor.
        dst: u32,
        /// Payload length in bytes.
        len: u32,
        /// Backing page, if the payload is a page-sized buffer (enables
        /// transmit caching).
        page: Option<u64>,
        /// Message-header cache bit.
        cacheable: bool,
        /// Dirty host-cache lines to flush before the board may read the
        /// buffer.
        dirty_lines: u32,
        /// Payload words, if the receiver needs the data (execution-driven
        /// message passing); `None` for timing-only traffic.
        data: Option<Arc<Vec<u64>>>,
    },
    /// Spin-wait politely: charge synchronisation-overhead cycles without
    /// calling them computation (bag-of-tasks pollers).
    Backoff(u64),
    /// Block until an application-level message arrives.
    Recv,
    /// Program finished (issued automatically).
    Done,
}

/// A yield to the engine: accumulated computation plus the operation.
#[derive(Clone, Debug)]
pub struct YieldMsg {
    /// Host CPU cycles of computation since the last yield.
    pub pending_cycles: u64,
    /// The operation.
    pub op: Op,
}

/// The engine's reply to a yield.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Operation complete.
    Ok,
    /// A message was received (reply to [`Op::Recv`]).
    Received {
        /// Sending processor.
        src: u32,
        /// Payload length in bytes.
        len: u32,
        /// Payload words, when the sender attached data.
        data: Option<Arc<Vec<u64>>>,
    },
}

/// Per-access fast-path costs (host cycles), captured from the cluster
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct AccessCosts {
    /// Cycles per fault-free shared read.
    pub read: u64,
    /// Cycles per fault-free shared write.
    pub write: u64,
}

/// The program-side context for one simulated processor.
pub struct ProcCtx<'a> {
    me: u32,
    procs: u32,
    page_bytes: usize,
    line_bytes: usize,
    costs: AccessCosts,
    space: Arc<NodeSpace>,
    mru: Option<(u32, PageHandle)>,
    cache: HashMap<u32, PageHandle>,
    pending: u64,
    port: &'a mut Port<YieldMsg, Reply>,
}

impl<'a> ProcCtx<'a> {
    /// Engine-side constructor (used by the world's program wrapper).
    pub fn new(
        me: u32,
        procs: u32,
        page_bytes: usize,
        line_bytes: usize,
        costs: AccessCosts,
        space: Arc<NodeSpace>,
        port: &'a mut Port<YieldMsg, Reply>,
    ) -> Self {
        ProcCtx {
            me,
            procs,
            page_bytes,
            line_bytes,
            costs,
            space,
            mru: None,
            cache: HashMap::new(),
            pending: 0,
            port,
        }
    }

    /// This processor's id.
    #[inline]
    pub fn id(&self) -> u32 {
        self.me
    }

    /// Cluster size.
    #[inline]
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// Shared page size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Charge `cycles` of computation.
    #[inline]
    pub fn compute(&mut self, cycles: u64) {
        self.pending += cycles;
    }

    fn yield_op(&mut self, op: Op) -> Reply {
        let pending = std::mem::take(&mut self.pending);
        self.port.call(YieldMsg {
            pending_cycles: pending,
            op,
        })
    }

    #[inline]
    fn handle(&mut self, page: u32) -> &PageHandle {
        if let Some((mp, _)) = &self.mru {
            if *mp == page {
                // NLL limitation workaround: re-borrow through the Option.
                return &self.mru.as_ref().expect("just checked").1;
            }
        }
        let h = match self.cache.get(&page) {
            Some(h) => h.clone(),
            None => {
                let h = self.space.page(PageId(page));
                self.cache.insert(page, h.clone());
                h
            }
        };
        self.mru = Some((page, h));
        &self.mru.as_ref().expect("just set").1
    }

    /// Read a shared 64-bit word. Faults transparently.
    #[inline]
    pub fn read_u64(&mut self, addr: VAddr) -> u64 {
        let page = addr.page(self.page_bytes);
        let word = addr.word(self.page_bytes);
        loop {
            let h = self.handle(page.0);
            if h.flags.state() != access::INVALID {
                let v = h.frame.load(word);
                self.pending += self.costs.read;
                return v;
            }
            self.yield_op(Op::ReadFault(page));
        }
    }

    /// Write a shared 64-bit word. Faults transparently and records the
    /// dirty cache line for the flush model.
    #[inline]
    pub fn write_u64(&mut self, addr: VAddr, v: u64) {
        let page = addr.page(self.page_bytes);
        let word = addr.word(self.page_bytes);
        let line = addr.offset(self.page_bytes) / self.line_bytes;
        loop {
            let h = self.handle(page.0);
            if h.flags.state() == access::WRITE {
                h.frame.store(word, v);
                h.flags.mark_dirty(line);
                self.pending += self.costs.write;
                return;
            }
            self.yield_op(Op::WriteFault(page));
        }
    }

    /// Read a shared `f64`.
    #[inline]
    pub fn read_f64(&mut self, addr: VAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write a shared `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: VAddr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Acquire a DSM lock (blocks in virtual time).
    pub fn acquire(&mut self, lock: LockId) {
        self.yield_op(Op::Acquire(lock));
    }

    /// Release a DSM lock (closes the interval: diffs + write notices).
    pub fn release(&mut self, lock: LockId) {
        self.yield_op(Op::Release(lock));
    }

    /// Cross the global barrier.
    pub fn barrier(&mut self) {
        self.yield_op(Op::Barrier);
    }

    /// Spin politely for `cycles` host cycles: the time is charged as
    /// synchronisation overhead, not computation (idle task-queue polling
    /// must not inflate the computation bucket of Tables 2–4).
    pub fn backoff(&mut self, cycles: u64) {
        self.yield_op(Op::Backoff(cycles));
    }

    /// Send an application-level message of `len` bytes to `dst`.
    /// `dirty_lines` models how much of the buffer sits dirty in the host
    /// cache (flushed before transmission, per the write-back discipline).
    pub fn send_to(
        &mut self,
        dst: u32,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        dirty_lines: u32,
    ) {
        assert!(dst < self.procs && dst != self.me, "bad destination");
        self.yield_op(Op::SendTo {
            dst,
            len,
            page,
            cacheable,
            dirty_lines,
            data: None,
        });
    }

    /// Send an application-level message carrying `data` (one simulated
    /// byte of payload per... precisely `data.len() * 8` bytes) to `dst`.
    /// This is the execution-driven message-passing path: the receiver's
    /// [`ProcCtx::recv_data`] gets the actual words.
    pub fn send_data(
        &mut self,
        dst: u32,
        data: Vec<u64>,
        page: Option<u64>,
        cacheable: bool,
        dirty_lines: u32,
    ) {
        assert!(dst < self.procs && dst != self.me, "bad destination");
        let len = (data.len() * 8) as u32;
        self.yield_op(Op::SendTo {
            dst,
            len,
            page,
            cacheable,
            dirty_lines,
            data: Some(Arc::new(data)),
        });
    }

    /// Block until an application-level message arrives; returns
    /// (sender, length).
    pub fn recv(&mut self) -> (u32, u32) {
        match self.yield_op(Op::Recv) {
            Reply::Received { src, len, .. } => (src, len),
            Reply::Ok => panic!("engine replied Ok to Recv"),
        }
    }

    /// Block until an application-level message arrives; returns the
    /// sender and the payload words (empty if the sender attached none).
    pub fn recv_data(&mut self) -> (u32, Arc<Vec<u64>>) {
        match self.yield_op(Op::Recv) {
            Reply::Received { src, data, .. } => {
                (src, data.unwrap_or_else(|| Arc::new(Vec::new())))
            }
            Reply::Ok => panic!("engine replied Ok to Recv"),
        }
    }

    /// Flush accumulated computation and signal completion. Called by the
    /// program wrapper after the user closure returns.
    pub fn finish(&mut self) {
        self.yield_op(Op::Done);
    }
}
