//! Checkpoint/restore for a running [`World`]: the engine half of
//! `cni-snap`.
//!
//! [`World::take_snapshot`] serializes the complete simulation state into
//! a [`Value`] tree — the event queue with its packed `(time, seq)` keys,
//! every per-processor clock and accounting bucket, NIC and fabric timing
//! registers, the Message Cache (CLOCK hands included), go-back-N channel
//! windows with their retransmission timers, the fault injector's PCG
//! stream, and the replay journal (see below). The embedding layer frames
//! the tree with `cni-snap`'s crash-safe length+CRC container; this module
//! performs no IO.
//!
//! [`World::resume_run`] is the inverse: build a fresh `World` from the
//! *same configuration*, re-run the same allocations, then hand it the
//! decoded tree plus the same programs. It replays the journal to rebuild
//! the unserialisable state (co-thread stacks, DSM page maps, shared
//! memory), overwrites every serialized counter, and re-enters the event
//! loop. The contract is bit-identity: run-to-T and
//! run-to-checkpoint-then-resume-to-T produce byte-for-byte identical
//! [`RunReport`]s.
//!
//! ### Why a journal instead of serializing co-threads
//!
//! Each simulated processor is a real OS thread parked at a yield; its
//! stack cannot be serialized. What *can* be recorded is the complete
//! engine→node interaction history: every co-thread resume (with the
//! reply it carried) and every DSM handler invocation, in engine order
//! per node (`JEntry`). Programs are deterministic functions of those
//! interactions, so replaying the journal into fresh co-threads drives
//! them to the exact yield point they occupied at the checkpoint — and
//! re-executes the DSM handlers so protocol state and page contents
//! converge too. Per-node ordering suffices: nodes share nothing but
//! messages, and messages are themselves journal entries.
//!
//! Replay is timing-free (no clock is consulted, no event is scheduled),
//! which is what makes `--fork-at` sound: a forked child may change the
//! fault plan or cost model, and the change affects only the future.
//!
//! ### Compact encoding: the blob table
//!
//! The journal dominates snapshot size, and its bulk is repeated bulk
//! data: page copies in `PageResp` payloads, and write-notice lists in
//! barrier/grant payloads that the protocol *broadcasts* — every
//! receiver journals an identical copy. Rather than spend one boxed
//! [`Value`] per word, bulk sequences are flattened to `u64`s, rendered
//! as canonical run-length strings (`"<count>:<value>"` in minimal
//! lowercase hex, comma-joined, maximal runs), and **interned**: the
//! root's `"blobs"` array stores each distinct string once, in first-use
//! order (deterministic, since encode traversal is), and payload sites
//! store only the index. Interning collapses the broadcast copies to
//! one; decoding validates every blob reference, run length and unit
//! range, so a corrupt index or an implausible length is an error, not
//! an allocation bomb.
//!
//! ### Versioning
//!
//! The tree carries [`SNAPSHOT_SCHEMA`]. Readers reject any other value
//! with an error (never a panic); there is no in-place migration — a
//! snapshot is a cache of a reproducible computation, so the migration
//! path for an old snapshot is to re-run its config to the checkpoint.

use crate::ctx::Reply;
use crate::report::RunReport;
use crate::world::{ChanRx, ChanTx, Cpu, Ev, Frag, InFlight, JEntry, Program, WireMsg, World};
use cni_atm::state::FabricState;
use cni_atm::{Cell, CellHeader, PduBuf};
use cni_dsm::{LockId, Msg, PageId, Payload, ProcId, VClock};
use cni_faults::{FaultInjector, FaultStats, InjectorSnapshot};
use cni_nic::{NicKind, NicState};
use cni_sim::stats::Histogram;
use cni_sim::{EventQueue, SimTime, SplitMix64};
use cni_trace::MetricsSample;
use serde::{Deserialize, Map, Serialize, Value};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Schema version of the snapshot value tree produced by
/// [`World::take_snapshot`]. Bump on any change to the layout below;
/// readers reject mismatches rather than guessing.
///
/// History: 2 switched the reliable channels from a dense N×N matrix to
/// sparse `(src, dst, state)` triples and added the multi-switch fabric
/// fields, when hierarchical topologies raised N to 1024. 3 made the
/// protocol-jitter generator a per-node vector, and added the inner
/// fragment and first-transmission time to in-flight `FrameRx` events,
/// when the parallel engine required shard-isolated dispatch state.
pub const SNAPSHOT_SCHEMA: u64 = 3;

// --- encode helpers ---------------------------------------------------------

fn ps(t: SimTime) -> Value {
    Value::from(t.as_ps())
}

fn opt_ps(t: Option<SimTime>) -> Value {
    match t {
        None => Value::Null,
        Some(t) => ps(t),
    }
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Decoded-payload ceiling: a corrupt run length must error out, not
/// OOM the reader. No simulated transfer is remotely this large.
const MAX_RLE_UNITS: u64 = 1 << 27;

/// Append `x` as canonical minimal-width lowercase hex (no leading
/// zeros; `0` encodes as `"0"`).
fn push_hex(s: &mut String, mut x: u64) {
    let mut buf = [0u8; 16];
    let mut i = 16;
    loop {
        i -= 1;
        buf[i] = HEX_DIGITS[(x & 0xf) as usize];
        x >>= 4;
        if x == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&buf[i..]).expect("hex digits are ASCII"));
}

/// A `u64` sequence as run-length-encoded hex: `<len>:<value>` runs
/// joined by `,`, both fields canonical minimal hex.
///
/// The encoding is canonical — maximal runs, minimal hex — so equal
/// payloads always produce identical strings, which is what makes
/// content interning in [`Blobs`] work.
fn runs_to_string(units: impl Iterator<Item = u64>) -> String {
    let mut s = String::new();
    let mut run: Option<(u64, u64)> = None; // (value, count)
    for v in units {
        match &mut run {
            Some((rv, n)) if *rv == v => *n += 1,
            _ => {
                if let Some((rv, n)) = run.take() {
                    push_run(&mut s, rv, n);
                }
                run = Some((v, 1));
            }
        }
    }
    if let Some((rv, n)) = run {
        push_run(&mut s, rv, n);
    }
    s
}

/// Content-interned bulk payloads.
///
/// Bulk payloads — DSM page words, ATM cell bytes — dominate snapshot
/// size, and the *same content* recurs many times in one tree: a page
/// copy appears in the `PageResp` that carried it, in every in-flight
/// cell of its frame, in go-back-N retransmission windows, and in the
/// receiver's journal; the journal then accumulates every transfer of
/// the run. Each distinct run-length string is therefore stored once in
/// the snapshot's `blobs` table and referenced by index everywhere else.
///
/// Ids are assigned in encode-traversal order, which is itself
/// deterministic, so identical states keep producing identical bytes.
/// The map is a `BTreeMap` (D4: no hashed iteration on snapshot paths),
/// though only lookups are performed on it.
#[derive(Default)]
struct Blobs {
    index: std::collections::BTreeMap<String, u64>,
    list: Vec<Value>,
}

impl Blobs {
    /// The reference (`Value::Number` index) for `runs`, interning it on
    /// first sight.
    fn intern(&mut self, runs: String) -> Value {
        if let Some(id) = self.index.get(&runs) {
            return Value::from(*id);
        }
        let id = self.list.len() as u64;
        self.list.push(Value::String(runs.clone()));
        self.index.insert(runs, id);
        Value::from(id)
    }

    /// The `blobs` table for the snapshot root, consuming the store.
    fn into_value(self) -> Value {
        Value::Array(self.list)
    }
}

/// The decode-side view of the `blobs` table.
struct BlobTable<'a>(Vec<&'a str>);

impl BlobTable<'_> {
    /// Parse the root's `blobs` field.
    fn from_root(m: &Map) -> Result<BlobTable<'_>, String> {
        let list = arr(field(m, "blobs")?, "blobs")?
            .iter()
            .map(|v| match v {
                Value::String(s) => Ok(s.as_str()),
                _ => Err("blobs: expected an array of strings".to_string()),
            })
            .collect::<Result<_, _>>()?;
        Ok(BlobTable(list))
    }

    /// Resolve a payload reference to its run-length string.
    fn runs(&self, v: &Value, what: &str) -> Result<&str, String> {
        let id = u64_of(v, what)?;
        self.0.get(id as usize).copied().ok_or_else(|| {
            format!(
                "{what}: blob reference {id} out of range ({})",
                self.0.len()
            )
        })
    }
}

fn push_run(s: &mut String, value: u64, count: u64) {
    if !s.is_empty() {
        s.push(',');
    }
    push_hex(s, count);
    s.push(':');
    push_hex(s, value);
}

/// Inverse of [`runs_to_string`]: the flat `u64` sequence, each unit
/// checked against `max_unit`.
fn runs_from_str(s: &str, what: &str, max_unit: u64) -> Result<Vec<u64>, String> {
    let mut units = Vec::new();
    if s.is_empty() {
        return Ok(units);
    }
    for run in s.split(',') {
        let (n, val) = run
            .split_once(':')
            .ok_or_else(|| format!("{what}: run {run:?} lacks a `:`"))?;
        let n = u64::from_str_radix(n, 16).map_err(|_| format!("{what}: bad run length {n:?}"))?;
        let val =
            u64::from_str_radix(val, 16).map_err(|_| format!("{what}: bad run value {val:?}"))?;
        if val > max_unit {
            return Err(format!("{what}: run value {val:#x} exceeds unit width"));
        }
        if n == 0 || n > MAX_RLE_UNITS || units.len() as u64 + n > MAX_RLE_UNITS {
            return Err(format!("{what}: implausible run length {n:#x}"));
        }
        units.extend(std::iter::repeat_n(val, n as usize));
    }
    Ok(units)
}

/// `&[u64]` page words as an interned blob reference.
fn words_to_value(words: &[u64], b: &mut Blobs) -> Value {
    b.intern(runs_to_string(words.iter().copied()))
}

/// Inverse of [`words_to_value`].
fn words_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Vec<u64>, String> {
    runs_from_str(t.runs(v, what)?, what, u64::MAX)
}

/// `&[u8]` payload bytes as an interned blob reference.
fn bytes_to_value(bytes: &[u8], b: &mut Blobs) -> Value {
    b.intern(runs_to_string(bytes.iter().map(|b| *b as u64)))
}

/// Inverse of [`bytes_to_value`].
fn bytes_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Vec<u8>, String> {
    Ok(runs_from_str(t.runs(v, what)?, what, u8::MAX as u64)?
        .into_iter()
        .map(|b| b as u8)
        .collect())
}

/// `Option<Arc<Vec<u64>>>` payload words: `Null` or a blob reference.
fn data_to_value(d: &Option<Arc<Vec<u64>>>, b: &mut Blobs) -> Value {
    match d {
        None => Value::Null,
        Some(words) => words_to_value(words, b),
    }
}

/// `Reply` as a tagged array. `Reply::Ok` must *not* encode as `Null` —
/// it would collide with `None` inside `Option<Reply>` fields.
fn reply_to_value(r: &Reply, b: &mut Blobs) -> Value {
    match r {
        Reply::Ok => Value::Array(vec![Value::from(0u64)]),
        Reply::Received { src, len, data } => Value::Array(vec![
            Value::from(1u64),
            Value::from(*src as u64),
            Value::from(*len as u64),
            data_to_value(data, b),
        ]),
    }
}

// --- flat payload codec -----------------------------------------------------
//
// The consistency-protocol payloads that carry collections (page copies,
// write-notice lists, vector clocks) flatten to plain `u64` sequences and
// are interned as blobs. Two reasons: the derived tree encoding costs a
// boxed `Value` (and, for structs, repeated field names) per element, and
// barrier/grant messages are broadcast — every receiver journals an
// identical payload, which interning stores exactly once.

fn flatten_vc(vc: &VClock, out: &mut Vec<u64>) {
    out.push(vc.0.len() as u64);
    out.extend(vc.0.iter().map(|x| *x as u64));
}

fn flatten_notices(ns: &[cni_dsm::WriteNotice], out: &mut Vec<u64>) {
    out.push(ns.len() as u64);
    for n in ns {
        out.push(n.writer.0 as u64);
        out.push(n.interval as u64);
        out.push(n.page.0 as u64);
    }
}

/// Bounds-checked cursor over a flattened payload.
struct FlatReader<'a> {
    units: &'a [u64],
    pos: usize,
    what: &'a str,
}

impl FlatReader<'_> {
    fn u64(&mut self) -> Result<u64, String> {
        let v =
            self.units.get(self.pos).copied().ok_or_else(|| {
                format!("{}: flattened payload truncated at {}", self.what, self.pos)
            })?;
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, String> {
        u32::try_from(self.u64()?)
            .map_err(|_| format!("{}: flattened field overflows u32", self.what))
    }

    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // Each element consumes at least one unit; anything larger than
        // the remaining input is corrupt.
        if n as usize > self.units.len() - self.pos {
            return Err(format!("{}: implausible flattened length {n}", self.what));
        }
        Ok(n as usize)
    }

    fn vc(&mut self) -> Result<VClock, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(VClock(v))
    }

    fn notices(&mut self) -> Result<Vec<cni_dsm::WriteNotice>, String> {
        let n = self.len()?;
        let mut ns = Vec::with_capacity(n);
        for _ in 0..n {
            ns.push(cni_dsm::WriteNotice {
                writer: ProcId(self.u32()?),
                interval: self.u32()?,
                page: PageId(self.u32()?),
            });
        }
        Ok(ns)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.units.len() {
            return Err(format!(
                "{}: {} trailing units in flattened payload",
                self.what,
                self.units.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// `Payload` as a tagged array: tag 0 wraps the derived encoding; tags
/// 1–4 are flat fast paths for the collection-carrying variants.
fn payload_to_value(p: &Payload, b: &mut Blobs) -> Value {
    let flat = |tag: u64, units: Vec<u64>, b: &mut Blobs| {
        Value::Array(vec![
            Value::from(tag),
            b.intern(runs_to_string(units.into_iter())),
        ])
    };
    match p {
        Payload::PageResp {
            page,
            version,
            data,
        } => Value::Array(vec![
            Value::from(1u64),
            Value::from(page.0 as u64),
            version.to_value(),
            words_to_value(data, b),
        ]),
        Payload::AcquireGrant {
            lock,
            vc,
            notices,
            then_serve,
        } => {
            let mut u = vec![lock.0 as u64];
            flatten_vc(vc, &mut u);
            flatten_notices(notices, &mut u);
            u.push(then_serve.len() as u64);
            for (p, v) in then_serve {
                u.push(p.0 as u64);
                flatten_vc(v, &mut u);
            }
            flat(2, u, b)
        }
        Payload::BarrierArrive {
            epoch,
            proc,
            vc,
            notices,
        } => {
            let mut u = vec![*epoch as u64, proc.0 as u64];
            flatten_vc(vc, &mut u);
            flatten_notices(notices, &mut u);
            flat(3, u, b)
        }
        Payload::BarrierRelease { epoch, vc, notices } => {
            let mut u = vec![*epoch as u64];
            flatten_vc(vc, &mut u);
            flatten_notices(notices, &mut u);
            flat(4, u, b)
        }
        other => Value::Array(vec![Value::from(0u64), other.to_value()]),
    }
}

fn msg_to_value(m: &Msg, b: &mut Blobs) -> Value {
    Value::Array(vec![
        Value::from(m.src.0 as u64),
        Value::from(m.dst.0 as u64),
        payload_to_value(&m.payload, b),
    ])
}

fn cell_to_value(c: &Cell, b: &mut Blobs) -> Value {
    let bytes = c.payload.as_slice();
    Value::Array(vec![
        Value::from(c.header.vci as u64),
        Value::Bool(c.header.end_of_pdu),
        Value::Bool(c.header.clp),
        bytes_to_value(bytes, b),
    ])
}

fn wire_to_value(w: &WireMsg, b: &mut Blobs) -> Value {
    match w {
        WireMsg::Proto(m) => Value::Array(vec![Value::from(0u64), msg_to_value(m, b)]),
        WireMsg::App {
            src,
            dst,
            len,
            page,
            cacheable,
            data,
        } => Value::Array(vec![
            Value::from(1u64),
            Value::from(*src as u64),
            Value::from(*dst as u64),
            Value::from(*len as u64),
            page.to_value(),
            Value::Bool(*cacheable),
            data_to_value(data, b),
        ]),
    }
}

fn frag_to_value(f: &Frag, b: &mut Blobs) -> Value {
    Value::Array(vec![
        wire_to_value(&f.wire, b),
        Value::from(f.frag as u64),
        Value::from(f.nfrags as u64),
        Value::from(f.bytes as u64),
        Value::from(f.span),
    ])
}

fn inflight_to_value(f: &InFlight, b: &mut Blobs) -> Value {
    Value::Array(vec![
        Value::from(f.seq),
        frag_to_value(&f.frag, b),
        Value::from(f.attempts as u64),
        ps(f.sent_at),
        Value::from(f.span),
    ])
}

/// Events as tagged arrays, tags in declaration order.
fn ev_to_value(ev: &Ev, b: &mut Blobs) -> Value {
    let tag = |t: u64| Value::from(t);
    match ev {
        Ev::Resume(p) => Value::Array(vec![tag(0), Value::from(*p as u64)]),
        Ev::Xmit { src, msg, cause } => Value::Array(vec![
            tag(1),
            Value::from(*src as u64),
            msg_to_value(msg, b),
            Value::from(*cause),
        ]),
        Ev::XmitApp {
            src,
            dst,
            len,
            page,
            cacheable,
            data,
            cause,
        } => Value::Array(vec![
            tag(2),
            Value::from(*src as u64),
            Value::from(*dst as u64),
            Value::from(*len as u64),
            page.to_value(),
            Value::Bool(*cacheable),
            data_to_value(data, b),
            Value::from(*cause),
        ]),
        Ev::Proto { msg, span } => {
            Value::Array(vec![tag(3), msg_to_value(msg, b), Value::from(*span)])
        }
        Ev::App {
            dst,
            src,
            len,
            page,
            cacheable,
            data,
            span,
        } => Value::Array(vec![
            tag(4),
            Value::from(*dst as u64),
            Value::from(*src as u64),
            Value::from(*len as u64),
            page.to_value(),
            Value::Bool(*cacheable),
            data_to_value(data, b),
            Value::from(*span),
        ]),
        Ev::Wake { p, overhead } => {
            Value::Array(vec![tag(5), Value::from(*p as u64), ps(*overhead)])
        }
        Ev::MetricsTick => Value::Array(vec![tag(6)]),
        Ev::FrameRx {
            src,
            dst,
            seq,
            cells,
            span,
            frag,
            sent_at,
        } => Value::Array(vec![
            tag(7),
            Value::from(*src as u64),
            Value::from(*dst as u64),
            Value::from(*seq),
            Value::Array(cells.iter().map(|c| cell_to_value(c, b)).collect()),
            Value::from(*span),
            frag_to_value(frag, b),
            ps(*sent_at),
        ]),
        Ev::AckRx {
            to,
            from,
            ack,
            cells,
            span,
        } => Value::Array(vec![
            tag(8),
            Value::from(*to as u64),
            Value::from(*from as u64),
            Value::from(*ack),
            Value::Array(cells.iter().map(|c| cell_to_value(c, b)).collect()),
            Value::from(*span),
        ]),
        Ev::RxmitTimer { src, dst, gen } => Value::Array(vec![
            tag(9),
            Value::from(*src as u64),
            Value::from(*dst as u64),
            Value::from(*gen),
        ]),
        Ev::RingRelease { dst } => Value::Array(vec![tag(10), Value::from(*dst as u64)]),
    }
}

fn jentry_to_value(e: &JEntry, b: &mut Blobs) -> Value {
    let tag = |t: u64| Value::from(t);
    match e {
        JEntry::Resume(r) => Value::Array(vec![tag(0), reply_to_value(r, b)]),
        JEntry::ReadFault(pg) => Value::Array(vec![tag(1), Value::from(*pg as u64)]),
        JEntry::WriteFault(pg) => Value::Array(vec![tag(2), Value::from(*pg as u64)]),
        JEntry::Acquire(l) => Value::Array(vec![tag(3), Value::from(*l as u64)]),
        JEntry::Release(l) => Value::Array(vec![tag(4), Value::from(*l as u64)]),
        JEntry::Barrier => Value::Array(vec![tag(5)]),
        JEntry::Message(m) => Value::Array(vec![tag(6), msg_to_value(m, b)]),
    }
}

fn cpu_to_value(c: &Cpu, b: &mut Blobs) -> Value {
    let mut m = Map::new();
    m.insert("started".into(), Value::Bool(c.started));
    m.insert("clock".into(), ps(c.clock));
    m.insert("async_busy".into(), ps(c.async_busy));
    m.insert("compute".into(), ps(c.compute));
    m.insert("overhead".into(), ps(c.overhead));
    m.insert("delay".into(), ps(c.delay));
    m.insert("blocked_at".into(), opt_ps(c.blocked_at));
    m.insert("stolen".into(), ps(c.stolen));
    m.insert("done".into(), Value::Bool(c.done));
    m.insert(
        "inbox".into(),
        Value::Array(
            c.inbox
                .iter()
                .map(|(src, len, data)| {
                    Value::Array(vec![
                        Value::from(*src as u64),
                        Value::from(*len as u64),
                        data_to_value(data, b),
                    ])
                })
                .collect(),
        ),
    );
    m.insert("waiting_recv".into(), Value::Bool(c.waiting_recv));
    m.insert(
        "pending_reply".into(),
        match &c.pending_reply {
            None => Value::Null,
            Some(r) => reply_to_value(r, b),
        },
    );
    m.insert("blocked_kind".into(), Value::from(c.blocked_kind as u64));
    m.insert("blocked_detail".into(), Value::from(c.blocked_detail));
    m.insert("last_wake_span".into(), Value::from(c.last_wake_span));
    Value::Object(m)
}

fn chan_tx_to_value(ch: &ChanTx, b: &mut Blobs) -> Value {
    let mut m = Map::new();
    m.insert("next_seq".into(), Value::from(ch.next_seq));
    m.insert("base".into(), Value::from(ch.base));
    m.insert(
        "window".into(),
        Value::Array(ch.window.iter().map(|f| inflight_to_value(f, b)).collect()),
    );
    m.insert(
        "pending".into(),
        Value::Array(ch.pending.iter().map(|f| frag_to_value(f, b)).collect()),
    );
    m.insert("rto".into(), ps(ch.rto));
    m.insert("timer_gen".into(), Value::from(ch.timer_gen));
    m.insert("dup_acks".into(), Value::from(ch.dup_acks as u64));
    Value::Object(m)
}

// --- decode helpers ---------------------------------------------------------
//
// All decoding returns `Result<_, String>`: a malformed tree must surface
// as a diagnostic, never a panic, no matter how it was mangled.

fn obj<'a>(v: &'a Value, what: &str) -> Result<&'a Map, String> {
    match v {
        Value::Object(m) => Ok(m),
        _ => Err(format!("snapshot field `{what}` is not an object")),
    }
}

fn arr<'a>(v: &'a Value, what: &str) -> Result<&'a Vec<Value>, String> {
    match v {
        Value::Array(a) => Ok(a),
        _ => Err(format!("snapshot field `{what}` is not an array")),
    }
}

fn field<'a>(m: &'a Map, k: &str) -> Result<&'a Value, String> {
    m.get(k)
        .ok_or_else(|| format!("snapshot is missing field `{k}`"))
}

fn u64_of(v: &Value, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("snapshot field `{what}` is not an unsigned integer"))
}

fn usize_of(v: &Value, what: &str) -> Result<usize, String> {
    Ok(u64_of(v, what)? as usize)
}

fn u32_of(v: &Value, what: &str) -> Result<u32, String> {
    let n = u64_of(v, what)?;
    u32::try_from(n).map_err(|_| format!("snapshot field `{what}` overflows u32"))
}

fn bool_of(v: &Value, what: &str) -> Result<bool, String> {
    v.as_bool()
        .ok_or_else(|| format!("snapshot field `{what}` is not a bool"))
}

fn time_of(v: &Value, what: &str) -> Result<SimTime, String> {
    Ok(SimTime::from_ps(u64_of(v, what)?))
}

/// Decode a serde-derived type, contextualizing the error.
fn de<T: Deserialize>(v: &Value, what: &str) -> Result<T, String> {
    T::from_value(v).map_err(|e| format!("snapshot field `{what}`: {e}"))
}

fn at<'a>(a: &'a [Value], i: usize, what: &str) -> Result<&'a Value, String> {
    a.get(i)
        .ok_or_else(|| format!("snapshot field `{what}` is truncated (no element {i})"))
}

fn data_from_value(
    v: &Value,
    t: &BlobTable<'_>,
    what: &str,
) -> Result<Option<Arc<Vec<u64>>>, String> {
    match v {
        Value::Null => Ok(None),
        _ => Ok(Some(Arc::new(words_from_value(v, t, what)?))),
    }
}

fn reply_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Reply, String> {
    let a = arr(v, what)?;
    match u64_of(at(a, 0, what)?, what)? {
        0 => Ok(Reply::Ok),
        1 => Ok(Reply::Received {
            src: u32_of(at(a, 1, what)?, what)?,
            len: u32_of(at(a, 2, what)?, what)?,
            data: data_from_value(at(a, 3, what)?, t, what)?,
        }),
        t => Err(format!("snapshot field `{what}` has unknown reply tag {t}")),
    }
}

fn payload_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Payload, String> {
    let a = arr(v, what)?;
    match u64_of(at(a, 0, what)?, what)? {
        0 => de::<Payload>(at(a, 1, what)?, what),
        1 => {
            let page = PageId(u32_of(at(a, 1, what)?, what)?);
            let version: VClock = de(at(a, 2, what)?, what)?;
            let data = words_from_value(at(a, 3, what)?, t, what)?;
            Ok(Payload::PageResp {
                page,
                version,
                data,
            })
        }
        tag @ 2..=4 => {
            let units = words_from_value(at(a, 1, what)?, t, what)?;
            let mut r = FlatReader {
                units: &units,
                pos: 0,
                what,
            };
            let payload = match tag {
                2 => {
                    let lock = LockId(r.u32()?);
                    let vc = r.vc()?;
                    let notices = r.notices()?;
                    let n = r.len()?;
                    let mut then_serve = Vec::with_capacity(n);
                    for _ in 0..n {
                        then_serve.push((ProcId(r.u32()?), r.vc()?));
                    }
                    Payload::AcquireGrant {
                        lock,
                        vc,
                        notices,
                        then_serve,
                    }
                }
                3 => Payload::BarrierArrive {
                    epoch: r.u32()?,
                    proc: ProcId(r.u32()?),
                    vc: r.vc()?,
                    notices: r.notices()?,
                },
                _ => Payload::BarrierRelease {
                    epoch: r.u32()?,
                    vc: r.vc()?,
                    notices: r.notices()?,
                },
            };
            r.finish()?;
            Ok(payload)
        }
        t => Err(format!("snapshot field `{what}`: unknown payload tag {t}")),
    }
}

fn msg_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Msg, String> {
    let a = arr(v, what)?;
    Ok(Msg {
        src: ProcId(u32_of(at(a, 0, what)?, what)?),
        dst: ProcId(u32_of(at(a, 1, what)?, what)?),
        payload: payload_from_value(at(a, 2, what)?, t, what)?,
    })
}

fn cell_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Cell, String> {
    let a = arr(v, what)?;
    let vci = u64_of(at(a, 0, what)?, what)?;
    let vci = u16::try_from(vci).map_err(|_| format!("snapshot field `{what}`: vci overflow"))?;
    let bytes = bytes_from_value(at(a, 3, what)?, t, what)?;
    Ok(Cell {
        header: CellHeader {
            vci,
            end_of_pdu: bool_of(at(a, 1, what)?, what)?,
            clp: bool_of(at(a, 2, what)?, what)?,
        },
        payload: PduBuf::from_vec(bytes),
    })
}

fn wire_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<WireMsg, String> {
    let a = arr(v, what)?;
    match u64_of(at(a, 0, what)?, what)? {
        0 => Ok(WireMsg::Proto(msg_from_value(at(a, 1, what)?, t, what)?)),
        1 => Ok(WireMsg::App {
            src: usize_of(at(a, 1, what)?, what)?,
            dst: usize_of(at(a, 2, what)?, what)?,
            len: u32_of(at(a, 3, what)?, what)?,
            page: de(at(a, 4, what)?, what)?,
            cacheable: bool_of(at(a, 5, what)?, what)?,
            data: data_from_value(at(a, 6, what)?, t, what)?,
        }),
        t => Err(format!(
            "snapshot field `{what}` has unknown wire-message tag {t}"
        )),
    }
}

fn frag_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Frag, String> {
    let a = arr(v, what)?;
    Ok(Frag {
        wire: Arc::new(wire_from_value(at(a, 0, what)?, t, what)?),
        frag: u32_of(at(a, 1, what)?, what)?,
        nfrags: u32_of(at(a, 2, what)?, what)?,
        bytes: u32_of(at(a, 3, what)?, what)?,
        span: u64_of(at(a, 4, what)?, what)?,
    })
}

fn inflight_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<InFlight, String> {
    let a = arr(v, what)?;
    Ok(InFlight {
        seq: u64_of(at(a, 0, what)?, what)?,
        frag: frag_from_value(at(a, 1, what)?, t, what)?,
        attempts: u32_of(at(a, 2, what)?, what)?,
        sent_at: time_of(at(a, 3, what)?, what)?,
        span: u64_of(at(a, 4, what)?, what)?,
    })
}

fn ev_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<Ev, String> {
    let a = arr(v, what)?;
    match u64_of(at(a, 0, what)?, what)? {
        0 => Ok(Ev::Resume(usize_of(at(a, 1, what)?, what)?)),
        1 => Ok(Ev::Xmit {
            src: usize_of(at(a, 1, what)?, what)?,
            msg: msg_from_value(at(a, 2, what)?, t, what)?,
            cause: u64_of(at(a, 3, what)?, what)?,
        }),
        2 => Ok(Ev::XmitApp {
            src: usize_of(at(a, 1, what)?, what)?,
            dst: usize_of(at(a, 2, what)?, what)?,
            len: u32_of(at(a, 3, what)?, what)?,
            page: de(at(a, 4, what)?, what)?,
            cacheable: bool_of(at(a, 5, what)?, what)?,
            data: data_from_value(at(a, 6, what)?, t, what)?,
            cause: u64_of(at(a, 7, what)?, what)?,
        }),
        3 => Ok(Ev::Proto {
            msg: msg_from_value(at(a, 1, what)?, t, what)?,
            span: u64_of(at(a, 2, what)?, what)?,
        }),
        4 => Ok(Ev::App {
            dst: usize_of(at(a, 1, what)?, what)?,
            src: usize_of(at(a, 2, what)?, what)?,
            len: u32_of(at(a, 3, what)?, what)?,
            page: de(at(a, 4, what)?, what)?,
            cacheable: bool_of(at(a, 5, what)?, what)?,
            data: data_from_value(at(a, 6, what)?, t, what)?,
            span: u64_of(at(a, 7, what)?, what)?,
        }),
        5 => Ok(Ev::Wake {
            p: usize_of(at(a, 1, what)?, what)?,
            overhead: time_of(at(a, 2, what)?, what)?,
        }),
        6 => Ok(Ev::MetricsTick),
        7 => Ok(Ev::FrameRx {
            src: usize_of(at(a, 1, what)?, what)?,
            dst: usize_of(at(a, 2, what)?, what)?,
            seq: u64_of(at(a, 3, what)?, what)?,
            cells: arr(at(a, 4, what)?, what)?
                .iter()
                .map(|c| cell_from_value(c, t, what))
                .collect::<Result<_, _>>()?,
            span: u64_of(at(a, 5, what)?, what)?,
            frag: frag_from_value(at(a, 6, what)?, t, what)?,
            sent_at: time_of(at(a, 7, what)?, what)?,
        }),
        8 => Ok(Ev::AckRx {
            to: usize_of(at(a, 1, what)?, what)?,
            from: usize_of(at(a, 2, what)?, what)?,
            ack: u64_of(at(a, 3, what)?, what)?,
            cells: arr(at(a, 4, what)?, what)?
                .iter()
                .map(|c| cell_from_value(c, t, what))
                .collect::<Result<_, _>>()?,
            span: u64_of(at(a, 5, what)?, what)?,
        }),
        9 => Ok(Ev::RxmitTimer {
            src: usize_of(at(a, 1, what)?, what)?,
            dst: usize_of(at(a, 2, what)?, what)?,
            gen: u64_of(at(a, 3, what)?, what)?,
        }),
        10 => Ok(Ev::RingRelease {
            dst: usize_of(at(a, 1, what)?, what)?,
        }),
        t => Err(format!("snapshot field `{what}` has unknown event tag {t}")),
    }
}

fn jentry_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<JEntry, String> {
    let a = arr(v, what)?;
    match u64_of(at(a, 0, what)?, what)? {
        0 => Ok(JEntry::Resume(reply_from_value(at(a, 1, what)?, t, what)?)),
        1 => Ok(JEntry::ReadFault(u32_of(at(a, 1, what)?, what)?)),
        2 => Ok(JEntry::WriteFault(u32_of(at(a, 1, what)?, what)?)),
        3 => Ok(JEntry::Acquire(u32_of(at(a, 1, what)?, what)?)),
        4 => Ok(JEntry::Release(u32_of(at(a, 1, what)?, what)?)),
        5 => Ok(JEntry::Barrier),
        6 => Ok(JEntry::Message(msg_from_value(at(a, 1, what)?, t, what)?)),
        t => Err(format!(
            "snapshot field `{what}` has unknown journal tag {t}"
        )),
    }
}

fn chan_tx_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<ChanTx, String> {
    let m = obj(v, what)?;
    Ok(ChanTx {
        next_seq: u64_of(field(m, "next_seq")?, "next_seq")?,
        base: u64_of(field(m, "base")?, "base")?,
        window: arr(field(m, "window")?, "window")?
            .iter()
            .map(|f| inflight_from_value(f, t, "window"))
            .collect::<Result<VecDeque<_>, _>>()?,
        pending: arr(field(m, "pending")?, "pending")?
            .iter()
            .map(|f| frag_from_value(f, t, "pending"))
            .collect::<Result<VecDeque<_>, _>>()?,
        rto: time_of(field(m, "rto")?, "rto")?,
        timer_gen: u64_of(field(m, "timer_gen")?, "timer_gen")?,
        dup_acks: u32_of(field(m, "dup_acks")?, "dup_acks")?,
    })
}

struct CpuSnap {
    started: bool,
    clock: SimTime,
    async_busy: SimTime,
    compute: SimTime,
    overhead: SimTime,
    delay: SimTime,
    blocked_at: Option<SimTime>,
    stolen: SimTime,
    done: bool,
    inbox: VecDeque<crate::world::InboxMsg>,
    waiting_recv: bool,
    pending_reply: Option<Reply>,
    blocked_kind: usize,
    blocked_detail: u64,
    last_wake_span: u64,
}

fn cpu_from_value(v: &Value, t: &BlobTable<'_>, what: &str) -> Result<CpuSnap, String> {
    let m = obj(v, what)?;
    let inbox = arr(field(m, "inbox")?, "inbox")?
        .iter()
        .map(|e| {
            let a = arr(e, "inbox entry")?;
            Ok((
                u32_of(at(a, 0, "inbox src")?, "inbox src")?,
                u32_of(at(a, 1, "inbox len")?, "inbox len")?,
                data_from_value(at(a, 2, "inbox data")?, t, "inbox data")?,
            ))
        })
        .collect::<Result<VecDeque<_>, String>>()?;
    let blocked_at = match field(m, "blocked_at")? {
        Value::Null => None,
        v => Some(time_of(v, "blocked_at")?),
    };
    let pending_reply = match field(m, "pending_reply")? {
        Value::Null => None,
        v => Some(reply_from_value(v, t, "pending_reply")?),
    };
    Ok(CpuSnap {
        started: bool_of(field(m, "started")?, "started")?,
        clock: time_of(field(m, "clock")?, "clock")?,
        async_busy: time_of(field(m, "async_busy")?, "async_busy")?,
        compute: time_of(field(m, "compute")?, "compute")?,
        overhead: time_of(field(m, "overhead")?, "overhead")?,
        delay: time_of(field(m, "delay")?, "delay")?,
        blocked_at,
        stolen: time_of(field(m, "stolen")?, "stolen")?,
        done: bool_of(field(m, "done")?, "done")?,
        inbox,
        waiting_recv: bool_of(field(m, "waiting_recv")?, "waiting_recv")?,
        pending_reply,
        blocked_kind: usize_of(field(m, "blocked_kind")?, "blocked_kind")?,
        blocked_detail: u64_of(field(m, "blocked_detail")?, "blocked_detail")?,
        last_wake_span: u64_of(field(m, "last_wake_span")?, "last_wake_span")?,
    })
}

// --- the World surface ------------------------------------------------------

impl World {
    /// Serialize the complete simulation state into a schema-versioned
    /// [`Value`] tree. Requires [`World::enable_journal`]; call it from a
    /// checkpoint sink (see [`World::set_checkpoint`]), where the engine
    /// is quiescent — every co-thread parked at a yield, no event mid-
    /// dispatch.
    ///
    /// The tree is pure data: the embedder decides how to frame and store
    /// it (normally via `cni-snap`'s crash-safe container).
    pub fn take_snapshot(&self) -> Value {
        let journal = self
            .journal
            .as_ref()
            .expect("take_snapshot requires World::enable_journal");
        let mut b = Blobs::default();
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(SNAPSHOT_SCHEMA));
        m.insert("procs".into(), Value::from(self.cfg.procs as u64));
        m.insert(
            "nic_kind".into(),
            Value::from(match self.cfg.nic_kind {
                NicKind::Standard => 0u64,
                NicKind::Cni => 1u64,
            }),
        );
        m.insert("next_page".into(), Value::from(self.next_page as u64));
        m.insert(
            "events_dispatched".into(),
            Value::from(self.events_dispatched),
        );

        let mut q = Map::new();
        q.insert("now".into(), ps(self.q.now()));
        q.insert("next_seq".into(), Value::from(self.q.next_seq()));
        q.insert(
            "entries".into(),
            Value::Array(
                self.q
                    .snapshot_entries()
                    .map(|(t, seq, ev)| {
                        Value::Array(vec![ps(t), Value::from(seq), ev_to_value(ev, &mut b)])
                    })
                    .collect(),
            ),
        );
        m.insert("queue".into(), Value::Object(q));

        m.insert(
            "cpus".into(),
            Value::Array(self.cpus.iter().map(|c| cpu_to_value(c, &mut b)).collect()),
        );
        m.insert("live".into(), Value::from(self.live as u64));
        m.insert("proto_messages".into(), Value::from(self.proto_messages));
        m.insert("msg_kinds".into(), self.msg_kinds.to_value());
        m.insert(
            "wait_stats".into(),
            Value::Array(
                self.wait_stats
                    .iter()
                    .map(|(t, n)| Value::Array(vec![ps(*t), Value::from(*n)]))
                    .collect(),
            ),
        );
        m.insert(
            "jitter".into(),
            Value::Array(self.jitter.iter().map(|j| Value::from(j.state())).collect()),
        );
        m.insert("next_span".into(), Value::from(self.next_span));
        m.insert("latency".into(), self.latency.to_value());
        m.insert("fabric".into(), self.fabric.snapshot_state().to_value());
        m.insert(
            "nics".into(),
            Value::Array(
                self.nics
                    .iter()
                    .map(|n| n.snapshot_state().to_value())
                    .collect(),
            ),
        );
        m.insert(
            "injector".into(),
            match &self.injector {
                None => Value::Null,
                Some(inj) => inj.snapshot().to_value(),
            },
        );
        // Sparse triples in BTreeMap (key) order: only channels a faulty
        // run actually materialised are recorded, so lossless snapshots
        // carry none and 1024-node snapshots stay small.
        m.insert(
            "rel_tx".into(),
            Value::Array(
                self.rel_tx
                    .iter()
                    .enumerate()
                    .flat_map(|(src, chans)| chans.iter().map(move |(&dst, ch)| (src, dst, ch)))
                    .map(|(src, dst, ch)| {
                        Value::Array(vec![
                            Value::from(src as u64),
                            Value::from(dst as u64),
                            chan_tx_to_value(ch, &mut b),
                        ])
                    })
                    .collect(),
            ),
        );
        m.insert(
            "rel_rx".into(),
            Value::Array(
                self.rel_rx
                    .iter()
                    .enumerate()
                    .flat_map(|(dst, chans)| chans.iter().map(move |(&src, ch)| (dst, src, ch)))
                    .map(|(dst, src, ch)| {
                        Value::Array(vec![
                            Value::from(dst as u64),
                            Value::from(src as u64),
                            Value::from(ch.expected),
                        ])
                    })
                    .collect(),
            ),
        );
        m.insert("rel_stats".into(), self.rel_stats.to_value());
        m.insert("ring_used".into(), self.ring_used.to_value());
        m.insert("ring_hw".into(), self.ring_hw.to_value());
        m.insert("util_prev".into(), self.util_prev.to_value());
        m.insert("metrics_prev".into(), self.metrics_prev.to_value());
        m.insert(
            "journal".into(),
            Value::Array(
                journal
                    .iter()
                    .map(|node| {
                        Value::Array(node.iter().map(|e| jentry_to_value(e, &mut b)).collect())
                    })
                    .collect(),
            ),
        );
        m.insert("blobs".into(), b.into_value());
        Value::Object(m)
    }

    /// Restore a checkpoint into this freshly built `World` and run it to
    /// completion.
    ///
    /// The caller must reproduce the checkpointed run's setup exactly
    /// before calling: same [`crate::Config`] (the fault plan and cost
    /// model *may* differ for a fork — see below), same
    /// [`World::alloc`] calls, and the same `programs`. The snapshot
    /// supplies everything else. On success the returned [`RunReport`] is
    /// byte-identical to the report the uninterrupted run produces.
    ///
    /// Forking: a child may change the fault plan (e.g. inject a brownout
    /// after the checkpoint) — the injector's RNG stream is restored so
    /// an *unchanged* plan reproduces the parent exactly, while a changed
    /// plan diverges only after the checkpoint. The one rejected
    /// combination is resuming a faulty snapshot under a zero-fault plan:
    /// frames already in flight on the reliable channels would have no
    /// protocol to complete them.
    ///
    /// Never panics on malformed input: every structural defect in
    /// `state` surfaces as `Err`.
    pub fn resume_run(
        &mut self,
        state: &Value,
        programs: Vec<Program>,
    ) -> Result<RunReport, String> {
        if self.cpus.iter().any(|c| c.started) {
            return Err("resume_run requires a freshly built World".into());
        }
        if programs.len() != self.cfg.procs {
            return Err(format!(
                "resume_run got {} programs for {} processors",
                programs.len(),
                self.cfg.procs
            ));
        }
        if self.trace.is_enabled() {
            return Err(
                "checkpoint restore does not support tracing; re-run from scratch to trace".into(),
            );
        }
        let m = obj(state, "<root>")?;
        let schema = u64_of(field(m, "schema")?, "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "snapshot schema v{schema} is not supported (this build reads v{SNAPSHOT_SCHEMA})"
            ));
        }
        let procs = usize_of(field(m, "procs")?, "procs")?;
        if procs != self.cfg.procs {
            return Err(format!(
                "snapshot is for {procs} processors, configuration has {}",
                self.cfg.procs
            ));
        }
        let kind = u64_of(field(m, "nic_kind")?, "nic_kind")?;
        let want = match self.cfg.nic_kind {
            NicKind::Standard => 0u64,
            NicKind::Cni => 1u64,
        };
        if kind != want {
            return Err("snapshot was taken under a different NIC personality".into());
        }
        let next_page = u32_of(field(m, "next_page")?, "next_page")?;
        if next_page != self.next_page {
            return Err(format!(
                "snapshot allocated {next_page} shared pages, this run allocated {} \
                 (reproduce the original alloc() calls before resuming)",
                self.next_page
            ));
        }

        // Decode everything fallible *before* touching engine state, so a
        // malformed snapshot cannot leave the world half-restored.
        let blobs = BlobTable::from_root(m)?;
        let journal: Vec<Vec<JEntry>> = arr(field(m, "journal")?, "journal")?
            .iter()
            .map(|node| {
                arr(node, "journal node")?
                    .iter()
                    .map(|e| jentry_from_value(e, &blobs, "journal"))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;
        if journal.len() != procs {
            return Err(format!(
                "snapshot journal covers {} nodes, expected {procs}",
                journal.len()
            ));
        }
        let qm = obj(field(m, "queue")?, "queue")?;
        let q_now = time_of(field(qm, "now")?, "queue.now")?;
        let q_next_seq = u64_of(field(qm, "next_seq")?, "queue.next_seq")?;
        let q_entries: Vec<(SimTime, u64, Ev)> = arr(field(qm, "entries")?, "queue.entries")?
            .iter()
            .map(|e| {
                let a = arr(e, "queue entry")?;
                Ok((
                    time_of(at(a, 0, "queue entry")?, "queue entry time")?,
                    u64_of(at(a, 1, "queue entry")?, "queue entry seq")?,
                    ev_from_value(at(a, 2, "queue entry")?, &blobs, "queue entry event")?,
                ))
            })
            .collect::<Result<_, String>>()?;
        let cpu_snaps: Vec<CpuSnap> = arr(field(m, "cpus")?, "cpus")?
            .iter()
            .map(|c| cpu_from_value(c, &blobs, "cpus"))
            .collect::<Result<_, _>>()?;
        if cpu_snaps.len() != procs {
            return Err(format!(
                "snapshot has {} processor records, expected {procs}",
                cpu_snaps.len()
            ));
        }
        let live = usize_of(field(m, "live")?, "live")?;
        let proto_messages = u64_of(field(m, "proto_messages")?, "proto_messages")?;
        let msg_kinds: [u64; 9] = de(field(m, "msg_kinds")?, "msg_kinds")?;
        let ws_raw = arr(field(m, "wait_stats")?, "wait_stats")?;
        if ws_raw.len() != 4 {
            return Err(format!(
                "snapshot wait_stats has {} kinds, expected 4",
                ws_raw.len()
            ));
        }
        let mut wait_stats = [(SimTime::ZERO, 0u64); 4];
        for (slot, v) in wait_stats.iter_mut().zip(ws_raw) {
            let a = arr(v, "wait_stats entry")?;
            *slot = (
                time_of(at(a, 0, "wait_stats")?, "wait_stats time")?,
                u64_of(at(a, 1, "wait_stats")?, "wait_stats count")?,
            );
        }
        let jitter_states: Vec<u64> = arr(field(m, "jitter")?, "jitter")?
            .iter()
            .map(|v| u64_of(v, "jitter"))
            .collect::<Result<_, _>>()?;
        if jitter_states.len() != procs {
            return Err(format!(
                "snapshot has {} jitter streams, expected {procs}",
                jitter_states.len()
            ));
        }
        let next_span = u64_of(field(m, "next_span")?, "next_span")?;
        let latency: Vec<Histogram> = de(field(m, "latency")?, "latency")?;
        if latency.len() != 10 {
            return Err(format!(
                "snapshot has {} latency histograms, expected 10",
                latency.len()
            ));
        }
        let fabric: FabricState = de(field(m, "fabric")?, "fabric")?;
        let nic_states: Vec<NicState> = de(field(m, "nics")?, "nics")?;
        if nic_states.len() != procs {
            return Err(format!(
                "snapshot has {} NIC records, expected {procs}",
                nic_states.len()
            ));
        }
        let inj_snap: Option<InjectorSnapshot> = match field(m, "injector")? {
            Value::Null => None,
            v => Some(de(v, "injector")?),
        };
        if inj_snap.is_some() && self.cfg.faults.is_zero() {
            return Err(
                "snapshot carries fault-injector state but the fault plan is empty; \
                 forking a faulty run into a lossless one is not supported"
                    .into(),
            );
        }
        let mut rel_tx: Vec<BTreeMap<u32, ChanTx>> = (0..procs).map(|_| BTreeMap::new()).collect();
        for e in arr(field(m, "rel_tx")?, "rel_tx")? {
            let t = arr(e, "rel_tx entry")?;
            let src = u64_of(at(t, 0, "rel_tx")?, "rel_tx src")?;
            let dst = u64_of(at(t, 1, "rel_tx")?, "rel_tx dst")?;
            if src >= procs as u64 || dst >= procs as u64 {
                return Err("snapshot reliable-channel endpoint out of range".into());
            }
            let ch = chan_tx_from_value(at(t, 2, "rel_tx")?, &blobs, "rel_tx")?;
            if rel_tx[src as usize].insert(dst as u32, ch).is_some() {
                return Err("snapshot repeats a reliable-channel (src, dst) pair".into());
            }
        }
        let mut rel_rx: Vec<BTreeMap<u32, ChanRx>> = (0..procs).map(|_| BTreeMap::new()).collect();
        for e in arr(field(m, "rel_rx")?, "rel_rx")? {
            let t = arr(e, "rel_rx entry")?;
            let dst = u64_of(at(t, 0, "rel_rx")?, "rel_rx dst")?;
            let src = u64_of(at(t, 1, "rel_rx")?, "rel_rx src")?;
            if src >= procs as u64 || dst >= procs as u64 {
                return Err("snapshot reliable-channel endpoint out of range".into());
            }
            let expected = u64_of(at(t, 2, "rel_rx")?, "rel_rx expected")?;
            if rel_rx[dst as usize]
                .insert(src as u32, ChanRx { expected })
                .is_some()
            {
                return Err("snapshot repeats a reliable-channel (dst, src) pair".into());
            }
        }
        let rel_stats: FaultStats = de(field(m, "rel_stats")?, "rel_stats")?;
        let ring_used: Vec<u32> = de(field(m, "ring_used")?, "ring_used")?;
        let ring_hw: Vec<u32> = de(field(m, "ring_hw")?, "ring_hw")?;
        let util_prev: Vec<(u64, u64, u64)> = de(field(m, "util_prev")?, "util_prev")?;
        let metrics_prev: Vec<MetricsSample> = de(field(m, "metrics_prev")?, "metrics_prev")?;
        if ring_used.len() != procs || ring_hw.len() != procs {
            return Err("snapshot ring occupancy does not match processor count".into());
        }
        let events_dispatched = u64_of(field(m, "events_dispatched")?, "events_dispatched")?;

        // --- rebuild the unserialisable state by journal replay ---------
        // The journal field stays `None` during replay so the replayed
        // interactions are not re-recorded; the decoded journal (which
        // already contains them) is installed afterwards.
        self.journal = None;
        self.spawn_threads(programs);
        for (p, entries) in journal.iter().enumerate() {
            self.replay_node(p, entries)?;
        }
        for (p, s) in cpu_snaps.iter().enumerate() {
            if self.cpus[p].started != s.started {
                return Err(format!(
                    "journal replay left processor {p} {}, but the snapshot says {} \
                     (were the original programs passed?)",
                    if self.cpus[p].started {
                        "started"
                    } else {
                        "unstarted"
                    },
                    if s.started { "started" } else { "unstarted" },
                ));
            }
            if self.cpus[p].thread.is_none() != s.done {
                return Err(format!(
                    "journal replay left processor {p}'s thread inconsistent with its \
                     done flag (corrupt journal?)"
                ));
            }
        }

        // --- overwrite the serialized state ------------------------------
        for (cpu, s) in self.cpus.iter_mut().zip(cpu_snaps) {
            cpu.clock = s.clock;
            cpu.async_busy = s.async_busy;
            cpu.compute = s.compute;
            cpu.overhead = s.overhead;
            cpu.delay = s.delay;
            cpu.blocked_at = s.blocked_at;
            cpu.stolen = s.stolen;
            cpu.done = s.done;
            cpu.inbox = s.inbox;
            cpu.waiting_recv = s.waiting_recv;
            cpu.pending_reply = s.pending_reply;
            cpu.blocked_kind = s.blocked_kind;
            cpu.blocked_detail = s.blocked_detail;
            cpu.last_wake_span = s.last_wake_span;
        }
        self.journal = Some(journal);
        self.q = EventQueue::from_snapshot(q_now, q_next_seq, q_entries)
            .map_err(|e| format!("snapshot event queue rejected: {e}"))?;
        self.fabric
            .restore_state(&fabric)
            .map_err(|e| format!("snapshot fabric rejected: {e}"))?;
        for (nic, s) in self.nics.iter_mut().zip(&nic_states) {
            nic.restore_state(s)
                .map_err(|e| format!("snapshot NIC state rejected: {e}"))?;
        }
        if let Some(s) = inj_snap {
            // Restore the injector's RNG stream under the *current* plan:
            // an unchanged plan reproduces the parent draw-for-draw, a
            // forked plan diverges only from here on.
            self.injector = Some(FaultInjector::from_snapshot(self.cfg.faults, s));
        }
        self.rel_tx = rel_tx.into_boxed_slice();
        self.rel_rx = rel_rx.into_boxed_slice();
        self.rel_stats = rel_stats;
        self.ring_used = ring_used.into_boxed_slice();
        self.ring_hw = ring_hw.into_boxed_slice();
        self.util_prev = util_prev.into_boxed_slice();
        self.metrics_prev = metrics_prev.into_boxed_slice();
        self.live = live;
        self.proto_messages = proto_messages;
        self.msg_kinds = msg_kinds;
        self.wait_stats = wait_stats;
        self.jitter = jitter_states
            .into_iter()
            .map(SplitMix64::from_state)
            .collect();
        self.next_span = next_span;
        self.latency = latency.into_boxed_slice();
        self.events_dispatched = events_dispatched;

        // --- run the tail -------------------------------------------------
        self.run_loop();
        if self.live != 0 {
            return Err(format!(
                "resumed simulation ran out of events with {} programs unfinished",
                self.live
            ));
        }
        Ok(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_dsm::PageId;
    use proptest::prelude::*;

    fn arb_payload() -> impl Strategy<Value = Payload> {
        prop_oneof![
            (any::<u32>(), any::<u32>()).prop_map(|(page, req)| Payload::PageReq {
                page: PageId(page),
                requester: ProcId(req),
            }),
            (any::<u32>(), collection::vec(any::<u64>(), 0..16)).prop_map(|(page, data)| {
                Payload::PageResp {
                    page: PageId(page),
                    version: cni_dsm::types::VClock(vec![1, 2, 3]),
                    data,
                }
            }),
        ]
    }

    fn arb_data() -> impl Strategy<Value = Option<Arc<Vec<u64>>>> {
        (any::<bool>(), collection::vec(any::<u64>(), 0..8))
            .prop_map(|(some, words)| some.then(|| Arc::new(words)))
    }

    fn arb_wire() -> impl Strategy<Value = WireMsg> {
        prop_oneof![
            (any::<u32>(), any::<u32>(), arb_payload()).prop_map(|(s, d, payload)| {
                WireMsg::Proto(Msg {
                    src: ProcId(s),
                    dst: ProcId(d),
                    payload,
                })
            }),
            (
                0usize..64,
                0usize..64,
                any::<u32>(),
                (any::<bool>(), any::<u64>()).prop_map(|(s, v)| s.then_some(v)),
                any::<bool>(),
                arb_data(),
            )
                .prop_map(|(src, dst, len, page, cacheable, data)| WireMsg::App {
                    src,
                    dst,
                    len,
                    page,
                    cacheable,
                    data,
                }),
        ]
    }

    fn arb_frag() -> impl Strategy<Value = Frag> {
        (arb_wire(), 0u32..8, 1u32..9, 1u32..4096, any::<u64>()).prop_map(
            |(wire, frag, nfrags, bytes, span)| Frag {
                wire: Arc::new(wire),
                frag,
                nfrags,
                bytes,
                span,
            },
        )
    }

    fn arb_inflight() -> impl Strategy<Value = InFlight> {
        (
            arb_frag(),
            any::<u64>(),
            1u32..12,
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(frag, seq, attempts, sent_ps, span)| InFlight {
                seq,
                frag,
                attempts,
                sent_at: SimTime::from_ps(sent_ps),
                span,
            })
    }

    fn arb_chan_tx() -> impl Strategy<Value = ChanTx> {
        (
            (any::<u64>(), any::<u64>()),
            collection::vec(arb_inflight(), 0..6),
            collection::vec(arb_frag(), 0..6),
            (1u64..u64::MAX / 4, any::<u64>(), 0u32..4),
        )
            .prop_map(
                |((next_seq, base), window, pending, (rto_ps, timer_gen, dup_acks))| ChanTx {
                    next_seq,
                    base,
                    window: VecDeque::from(window),
                    pending: VecDeque::from(pending),
                    rto: SimTime::from_ps(rto_ps),
                    timer_gen,
                    dup_acks,
                },
            )
    }

    proptest! {
        /// Go-back-N transmit state survives encode/decode: sequence
        /// numbers, in-flight frames (with their retransmission timers:
        /// `sent_at`, `attempts`, channel `rto` and `timer_gen`) and
        /// queued fragments all reproduce exactly. Canonical-form check:
        /// decode-then-re-encode is the identity on the value tree.
        #[test]
        fn chan_tx_round_trips(ch in arb_chan_tx()) {
            let mut b = Blobs::default();
            let v = chan_tx_to_value(&ch, &mut b);
            let strings: Vec<String> = b
                .list
                .iter()
                .map(|s| s.as_str().unwrap().to_string())
                .collect();
            let t = BlobTable(strings.iter().map(|s| s.as_str()).collect());
            let back = chan_tx_from_value(&v, &t, "t").unwrap();
            prop_assert_eq!(back.next_seq, ch.next_seq);
            prop_assert_eq!(back.base, ch.base);
            prop_assert_eq!(back.rto, ch.rto);
            prop_assert_eq!(back.timer_gen, ch.timer_gen);
            prop_assert_eq!(back.dup_acks, ch.dup_acks);
            prop_assert_eq!(back.window.len(), ch.window.len());
            for (a, b) in back.window.iter().zip(&ch.window) {
                prop_assert_eq!(a.seq, b.seq);
                prop_assert_eq!(a.attempts, b.attempts);
                prop_assert_eq!(a.sent_at, b.sent_at);
                prop_assert_eq!(a.span, b.span);
            }
            // Re-encoding from scratch reproduces both the tree and the
            // blob table: interning is deterministic.
            let mut b2 = Blobs::default();
            prop_assert_eq!(chan_tx_to_value(&back, &mut b2), v);
            prop_assert_eq!(Value::Array(b2.list), Value::Array(b.list));
        }

        /// A populated event queue survives the snapshot encoding: the
        /// restored queue pops the identical `(time, seq, event)` stream.
        #[test]
        fn event_queue_of_events_round_trips(
            evs in collection::vec((any::<u64>(), 0usize..8, any::<u64>()), 1..24)
        ) {
            let mut q: EventQueue<Ev> = EventQueue::new();
            for (t_ps, p, gen) in &evs {
                q.schedule_at(
                    SimTime::from_ps(*t_ps),
                    Ev::RxmitTimer { src: *p, dst: (*p + 1) % 8, gen: *gen },
                );
            }
            // Encode exactly as take_snapshot does...
            let mut b = Blobs::default();
            let entries: Vec<Value> = q
                .snapshot_entries()
                .map(|(t, seq, ev)| {
                    Value::Array(vec![ps(t), Value::from(seq), ev_to_value(ev, &mut b)])
                })
                .collect();
            let strings: Vec<String> = b
                .list
                .iter()
                .map(|s| s.as_str().unwrap().to_string())
                .collect();
            let table = BlobTable(strings.iter().map(|s| s.as_str()).collect());
            // ...decode exactly as resume_run does.
            let decoded: Vec<(SimTime, u64, Ev)> = entries
                .iter()
                .map(|e| {
                    let a = arr(e, "e").unwrap();
                    (
                        time_of(&a[0], "t").unwrap(),
                        u64_of(&a[1], "s").unwrap(),
                        ev_from_value(&a[2], &table, "ev").unwrap(),
                    )
                })
                .collect();
            let mut restored =
                EventQueue::from_snapshot(q.now(), q.next_seq(), decoded).unwrap();
            loop {
                match (q.pop(), restored.pop()) {
                    (None, None) => break,
                    (Some((ta, ea)), Some((tb, eb))) => {
                        prop_assert_eq!(ta, tb);
                        let mut ba = Blobs::default();
                        let mut bb = Blobs::default();
                        prop_assert_eq!(ev_to_value(&ea, &mut ba), ev_to_value(&eb, &mut bb));
                    }
                    _ => prop_assert!(false, "pop streams diverged in length"),
                }
            }
        }
    }

    #[test]
    fn reply_ok_is_not_null() {
        // `Reply::Ok` inside `Option<Reply>` must stay distinguishable
        // from `None`.
        let mut b = Blobs::default();
        assert_ne!(reply_to_value(&Reply::Ok, &mut b), Value::Null);
        let some_ok = reply_to_value(&Reply::Ok, &mut b);
        assert_eq!(
            reply_from_value(&some_ok, &BlobTable(vec![]), "t").unwrap(),
            Reply::Ok
        );
    }

    #[test]
    fn malformed_values_error_instead_of_panicking() {
        let junk = [
            Value::Null,
            Value::Bool(true),
            Value::from(7u64),
            Value::Array(vec![]),
            Value::Array(vec![Value::from(99u64)]),
            Value::Array(vec![Value::from(0u64)]), // tag without operands
            Value::Object(Map::new()),
        ];
        let t = BlobTable(vec![]);
        for v in &junk {
            assert!(ev_from_value(v, &t, "t").is_err());
            let _ = jentry_from_value(v, &t, "t");
            let _ = reply_from_value(v, &t, "t");
            let _ = wire_from_value(v, &t, "t");
            let _ = frag_from_value(v, &t, "t");
            let _ = inflight_from_value(v, &t, "t");
            let _ = cell_from_value(v, &t, "t");
            let _ = msg_from_value(v, &t, "t");
            let _ = chan_tx_from_value(v, &t, "t");
            let _ = cpu_from_value(v, &t, "t");
        }
        // Truncated event operands must error, not index out of bounds.
        let truncated = Value::Array(vec![Value::from(1u64)]);
        assert!(ev_from_value(&truncated, &t, "t").is_err());
        // A payload reference to a missing blob is an error, not a panic.
        let dangling = Value::Array(vec![
            Value::from(7u64), // FrameRx
            Value::from(0u64),
            Value::from(1u64),
            Value::from(0u64),
            Value::Array(vec![Value::Array(vec![
                Value::from(1u64),
                Value::Bool(false),
                Value::Bool(false),
                Value::from(99u64), // blob id 99 does not exist
            ])]),
            Value::from(0u64),
        ]);
        let err = ev_from_value(&dangling, &t, "t").err().unwrap();
        assert!(err.contains("blob reference 99 out of range"), "{err}");
        // Unknown tags are rejected by name.
        let unknown = Value::Array(vec![Value::from(42u64)]);
        let err = ev_from_value(&unknown, &t, "t").err().unwrap();
        assert!(err.contains("unknown event tag 42"), "{err}");
    }
}
