//! Cluster configuration: the paper's Table 1 as data.

use cni_atm::AtmConfig;
use cni_faults::FaultPlan;
use cni_nic::{NicConfig, NicKind};
use cni_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Cost constants for protocol processing, in cycles of whichever
/// processor runs the protocol (host under the standard NIC, the NIC
/// processor under the CNI — the paper's Application Interrupt Handlers).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProtoCosts {
    /// Taking a shared-memory access fault (trap + protocol entry), host
    /// cycles.
    pub fault_trap_cycles: u64,
    /// Application-side cost of a lock acquire/release call, host cycles.
    pub lock_op_cycles: u64,
    /// Application-side cost of a barrier call, host cycles.
    pub barrier_op_cycles: u64,
    /// Base cost of handling one protocol message.
    pub msg_base_cycles: u64,
    /// Cost per word of twin/diff/page data touched.
    pub per_word_cycles: u64,
    /// Cost per write notice processed.
    pub per_notice_cycles: u64,
    /// Fast-path cost of one shared-memory read (fault-free).
    pub shared_read_cycles: u64,
    /// Fast-path cost of one shared-memory write (fault-free).
    pub shared_write_cycles: u64,
}

impl Default for ProtoCosts {
    fn default() -> Self {
        ProtoCosts {
            fault_trap_cycles: 400,
            lock_op_cycles: 60,
            barrier_op_cycles: 80,
            msg_base_cycles: 300,
            per_word_cycles: 2,
            per_notice_cycles: 12,
            shared_read_cycles: 2,
            shared_write_cycles: 2,
        }
    }
}

/// Full configuration of one simulated cluster.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Config {
    /// Processors (= workstations) in the cluster.
    pub procs: usize,
    /// NIC personality: the paper's CNI or the standard baseline.
    pub nic_kind: NicKind,
    /// Host/NIC boundary cost model (Table 1 rows).
    pub nic: NicConfig,
    /// Interconnect parameters (Table 1 rows).
    pub atm: AtmConfig,
    /// Shared page size in bytes (default 2 KB, swept by the page-size
    /// sensitivity figures).
    pub page_bytes: usize,
    /// Protocol cost constants.
    pub costs: ProtoCosts,
    /// Use a combining-tree barrier instead of the centralised manager
    /// (extension; the paper's protocol is centralised).
    pub tree_barrier: bool,
    /// Execute barrier combining and release/lock-chain forwarding as
    /// dedicated collective primitives on the NIC processor instead of
    /// general AIH dispatches (extension; generalises the paper's AIH
    /// along the lines of NIC-based collectives, arXiv cs/0402027).
    /// Implies a tree-structured barrier; only meaningful with
    /// [`NicKind::Cni`].
    pub collectives: bool,
    /// Seed for workload generation.
    pub seed: u64,
    /// Fault-injection plan for the interconnect. [`FaultPlan::none`]
    /// (the default) keeps the simulation on the lossless fast path with
    /// bit-identical timing.
    pub faults: FaultPlan,
    /// Worker threads for the parallel event executor (DESIGN.md §4.11).
    /// `1` (the default) is the exact serial engine; any larger value
    /// shards the run per node under conservative lookahead and produces
    /// byte-identical results. Purely an execution-resource knob: it is
    /// deliberately excluded from sweep axes and report comparisons,
    /// which treat configs differing only here as the same experiment.
    pub engine_workers: usize,
}

impl Config {
    /// The paper's simulation parameters (Table 1) with the CNI interface.
    pub fn paper_default() -> Self {
        Config {
            procs: 8,
            nic_kind: NicKind::Cni,
            nic: NicConfig::default(),
            atm: AtmConfig::default(),
            page_bytes: 2048,
            costs: ProtoCosts::default(),
            tree_barrier: false,
            collectives: false,
            seed: 0x5EED,
            faults: FaultPlan::none(),
            engine_workers: 1,
        }
    }

    /// Same cluster with the standard (baseline) network interface.
    pub fn standard(mut self) -> Self {
        self.nic_kind = NicKind::Standard;
        self
    }

    /// Same cluster with the CNI.
    pub fn cni(mut self) -> Self {
        self.nic_kind = NicKind::Cni;
        self
    }

    /// Set the processor count (one workstation per fabric host port).
    pub fn with_procs(mut self, procs: usize) -> Self {
        assert!(
            procs >= 1 && procs <= self.atm.hosts(),
            "1..=hosts processors"
        );
        self.procs = procs;
        self
    }

    /// Set the fabric topology. Panics when the shape violates the
    /// banyan constraints or strands already-configured processors.
    pub fn with_topology(mut self, topology: cni_atm::Topology) -> Self {
        if let Err(e) = topology.validate(self.atm.ports) {
            panic!("invalid topology: {e}");
        }
        self.atm.topology = topology;
        assert!(
            self.procs <= self.atm.hosts(),
            "topology serves fewer hosts than configured processors"
        );
        self
    }

    /// Shorthand for a 2-level fat-tree of `leaves` leaf switches with
    /// `down` host ports and `up` uplinks each.
    pub fn with_fat_tree(self, leaves: usize, down: usize, up: usize) -> Self {
        self.with_topology(cni_atm::Topology::FatTree { leaves, down, up })
    }

    /// Run barrier/release combining on the NIC processor (NIC-resident
    /// collectives; implies the tree-structured barrier).
    pub fn with_collectives(mut self) -> Self {
        self.collectives = true;
        self.tree_barrier = true;
        self
    }

    /// Set the shared page size (also the Message Cache buffer size).
    pub fn with_page_bytes(mut self, bytes: usize) -> Self {
        assert!(
            bytes >= 512 && bytes.is_multiple_of(8),
            "page size >= 512, word aligned"
        );
        self.page_bytes = bytes;
        self.nic.page_bytes = bytes;
        self
    }

    /// Set the Message Cache capacity.
    pub fn with_msg_cache_bytes(mut self, bytes: usize) -> Self {
        self.nic.msg_cache_bytes = bytes;
        self
    }

    /// Disable individual CNI mechanisms (ablation studies): the Message
    /// Cache, the Application Interrupt Handlers, or the polling hybrid.
    pub fn with_cni_features(mut self, features: cni_nic::config::CniFeatures) -> Self {
        self.nic.cni_features = features;
        self
    }

    /// Use the combining-tree barrier (extension).
    pub fn with_tree_barrier(mut self) -> Self {
        self.tree_barrier = true;
        self
    }

    /// Switch the interconnect to the paper's "mythical" unrestricted cell
    /// size (Table 5).
    pub fn with_unrestricted_cells(mut self) -> Self {
        self.atm.cell_payload = None;
        self
    }

    /// Inject faults according to `plan` (validated when the cluster is
    /// built). A zero plan is equivalent to not calling this at all.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Run the engine on `workers` threads (`cni-run --engine-workers`).
    /// Results are byte-identical at any count; `1` is the serial engine.
    pub fn with_engine_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one engine worker");
        self.engine_workers = workers;
        self
    }

    /// Render the Table 1 parameter listing.
    pub fn table1(&self) -> String {
        let n = &self.nic;
        let mut s = String::new();
        let mut row = |k: &str, v: String| s.push_str(&format!("{k:<32} {v}\n"));
        row("CPU Frequency", "166 MHz".into());
        row("Primary Cache Access Time", "1 cycle".into());
        row("Primary Cache Size", "32K unified".into());
        row("Secondary Cache Access Time", "10 cycles".into());
        row("Secondary Cache Size", "1 MB unified".into());
        row("Cache Organization", "Direct-mapped".into());
        row("Cache Policy", "Write-back".into());
        row("Memory Latency", "20 cycles".into());
        row(
            "Bus Acquisition Time",
            format!("{} cycles", n.bus_acquire_cycles),
        );
        row(
            "Bus Transfer rate",
            format!("{} cycles per word", n.bus_cycles_per_word),
        );
        row("Bus Frequency", "25 MHz".into());
        row(
            "Switch Latency",
            format!("{} ns", self.atm.switch_latency.as_ns()),
        );
        row("Network Processor Frequency", "33 MHz".into());
        row(
            "Network Latency",
            format!("{} ns", self.atm.prop_delay.as_ns()),
        );
        row(
            "Interrupt Latency",
            format!(
                "{} us",
                SimTime::from_ps(n.host_clock.cycles(n.interrupt_cycles).as_ps()).as_us_f64()
                    as u64
            ),
        );
        row(
            "Message Cache Size",
            format!("{} KB", n.msg_cache_bytes / 1024),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_table1() {
        let c = Config::paper_default();
        assert_eq!(c.procs, 8);
        assert_eq!(c.page_bytes, 2048);
        assert_eq!(c.nic.msg_cache_bytes, 32 * 1024);
        assert_eq!(c.atm.ports, 32);
        let t = c.table1();
        assert!(t.contains("166 MHz"));
        assert!(t.contains("Message Cache Size"));
        assert!(t.contains("32 KB"));
    }

    #[test]
    fn builders_compose() {
        let c = Config::paper_default()
            .standard()
            .with_procs(16)
            .with_page_bytes(4096)
            .with_msg_cache_bytes(512 * 1024);
        assert_eq!(c.nic_kind, NicKind::Standard);
        assert_eq!(c.procs, 16);
        assert_eq!(c.page_bytes, 4096);
        assert_eq!(c.nic.page_bytes, 4096);
        assert_eq!(c.nic.msg_cache_bytes, 512 * 1024);
        let j = c.with_unrestricted_cells();
        assert!(j.atm.cell_payload.is_none());
    }

    #[test]
    #[should_panic(expected = "processors")]
    fn too_many_procs_rejected() {
        let _ = Config::paper_default().with_procs(33);
    }

    #[test]
    fn fat_tree_raises_the_host_ceiling() {
        let c = Config::paper_default()
            .with_fat_tree(16, 16, 16)
            .with_procs(256)
            .with_collectives();
        assert_eq!(c.atm.hosts(), 256);
        assert_eq!(c.procs, 256);
        assert!(c.tree_barrier, "collectives imply the tree barrier");
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn bad_topology_shape_rejected() {
        let _ = Config::paper_default().with_fat_tree(3, 16, 16);
    }

    #[test]
    #[should_panic(expected = "fewer hosts")]
    fn shrinking_topology_under_procs_rejected() {
        let _ = Config::paper_default()
            .with_fat_tree(16, 16, 16)
            .with_procs(256)
            .with_topology(cni_atm::Topology::Single);
    }
}
