//! The timed cluster simulation: co-threaded processors + DSM protocol +
//! NIC/ATM transport, composed into one deterministic discrete-event run.
//!
//! This is the reproduction's equivalent of the paper's modified Proteus:
//! application code executes for real on co-threads, and every
//! communication event is costed through the configured NIC personality
//! and the ATM fabric. The **only** difference between a CNI run and a
//! standard run is the cost path — the protocol logic, the applications
//! and the workloads are bit-identical:
//!
//! * **sends**: ADC enqueue vs kernel entry; Message-Cache hit (no DMA) vs
//!   unconditional DMA.
//! * **receives**: PATHFINDER → Application Interrupt Handler on the 33 MHz
//!   NIC processor vs host interrupt + kernel + host protocol processing.
//! * **notification**: poll/interrupt hybrid vs interrupt-only.
//!
//! ### Accounting
//!
//! Per processor, virtual time is split into the paper's three buckets
//! (Tables 2–4): *computation* (cycles the program charged), *synch
//! overhead* (protocol/kernel/interrupt/poll/flush work executed by this
//! CPU) and *synch delay* (stall time waiting for remote events). Protocol
//! work performed asynchronously on the host (standard NIC) is "stolen"
//! from the running program and surfaces as overhead at its next yield;
//! under the CNI the same work runs on the NIC processor and never touches
//! the host buckets.

use crate::config::Config;
use crate::ctx::{AccessCosts, Op, ProcCtx, Reply, YieldMsg};
use crate::report::{KindHistogram, KindLatency, ProcTimes, RunReport, REPORT_VERSION};
use cni_atm::{Cell, Fabric};
use cni_dsm::{
    DsmConfig, DsmNode, HandleResult, LockId, Msg, NodeSpace, PageId, Payload, ProcId, VAddr, Work,
};
use cni_faults::{CellFate, FaultInjector, FaultStats};
use cni_nic::device::TxOrigin;
use cni_nic::{Nic, NicKind, RxDisposition, TxRequest};
use cni_pathfinder::{FieldTest, Pattern};
use cni_sim::stats::Histogram;
use cni_sim::{CoThread, EventQueue, SimTime, SplitMix64, Yield};
use cni_trace::{MetricsSample, TraceEvent, TraceSink};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A program to run on one simulated processor.
pub type Program = Box<dyn FnOnce(&mut ProcCtx<'_>) + Send + 'static>;

/// An inbox entry: (sender, length, optional payload words).
pub(crate) type InboxMsg = (u32, u32, Option<Arc<Vec<u64>>>);

pub(crate) enum Ev {
    /// Resume processor `p`'s co-thread.
    Resume(usize),
    /// Hand a protocol message to `src`'s NIC (the host-side work was
    /// already charged; scheduling this at the right virtual time keeps
    /// the NIC-processor busy register causal — a lump-charged compute
    /// quantum must not reserve the NIC into the future and stall
    /// arrivals). `cause` is the span whose effect provoked this send
    /// (0 for a root cause).
    Xmit { src: usize, msg: Msg, cause: u64 },
    /// Hand an application message to `src`'s NIC.
    XmitApp {
        src: usize,
        dst: usize,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        data: Option<Arc<Vec<u64>>>,
        cause: u64,
    },
    /// A protocol PDU finished arriving at `dst`'s NIC; `span` is its
    /// message span.
    Proto { msg: Msg, span: u64 },
    /// An application-level message finished arriving.
    App {
        dst: usize,
        src: usize,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        data: Option<Arc<Vec<u64>>>,
        span: u64,
    },
    /// Wake a blocked processor; `overhead` is host time already spent on
    /// its behalf during the wait (delivery, protocol, poll/interrupt).
    Wake { p: usize, overhead: SimTime },
    /// Periodic metrics sample (only scheduled when tracing is enabled and
    /// a sampling interval is configured).
    MetricsTick,
    /// A reliable-layer data frame's surviving cells finished arriving at
    /// `dst` (the AAL5 end-of-PDU cell made it through the faulty fabric).
    FrameRx {
        src: usize,
        dst: usize,
        seq: u64,
        cells: Vec<Cell>,
        /// The frame's transmission-attempt span.
        span: u64,
        /// The fragment the frame carries. Shipping it with the event
        /// (instead of looking it up in the sender's window on receipt)
        /// keeps the receive path free of cross-node state — the shard
        /// isolation the parallel engine depends on.
        frag: Frag,
        /// When the fragment was *first* transmitted (one-way latency is
        /// measured from the first attempt, not a retransmission).
        sent_at: SimTime,
    },
    /// A reliable-layer acknowledgement frame arrived back at sender `to`.
    AckRx {
        to: usize,
        from: usize,
        ack: u64,
        cells: Vec<Cell>,
        /// The acknowledgement's span.
        span: u64,
    },
    /// Retransmission timer for the `src -> dst` channel; fires only if
    /// `gen` still matches the channel's timer generation (stale timers
    /// drain as no-ops).
    RxmitTimer { src: usize, dst: usize, gen: u64 },
    /// The receive ring at `dst` frees one frame slot.
    RingRelease { dst: usize },
}

/// A logical message queued on the reliable-delivery layer: either a DSM
/// protocol message or an application-level send. The wire carries a real
/// byte image of it (segmented, CRC-protected, corruptible); the event
/// queue carries the structured form for dispatch once the image survives.
#[derive(Clone)]
pub(crate) enum WireMsg {
    Proto(Msg),
    App {
        src: usize,
        dst: usize,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        data: Option<Arc<Vec<u64>>>,
    },
}

/// Wire length of a logical message in bytes.
pub(crate) fn wire_len(wire: &WireMsg) -> usize {
    match wire {
        WireMsg::Proto(msg) => msg.payload.wire_bytes(),
        WireMsg::App { len, .. } => *len as usize,
    }
}

/// One wire frame of a logical message. Messages longer than the plan's
/// `max_frame_bytes` are split into several frames, each with its own
/// sequence number and CRC domain — otherwise a multi-kilobyte PDU's
/// per-attempt survival probability `(1 - drop_prob)^cells` collapses and
/// no amount of retransmission delivers it. The receiver dispatches the
/// message when the final fragment is accepted (go-back-N delivers in
/// order, so earlier fragments are already in by then).
#[derive(Clone)]
pub(crate) struct Frag {
    pub(crate) wire: Arc<WireMsg>,
    /// Fragment index within the message, `0..nfrags`.
    pub(crate) frag: u32,
    /// Total fragments carrying this message.
    pub(crate) nfrags: u32,
    /// This fragment's wire length in bytes.
    pub(crate) bytes: u32,
    /// The message span this fragment carries (the receiver closes it
    /// when the final fragment dispatches).
    pub(crate) span: u64,
}

/// A send's serial half: everything the acting node decided locally
/// (NIC transmit timing, payload, spans), waiting for the global parts —
/// fabric link occupancy, fault-injector draws, arrival-event scheduling,
/// global counters — which must be applied in exact serial `(time, seq)`
/// order. On the serial path [`World::emit_send`] commits an intent
/// immediately, so the code path (and therefore every timing and every
/// counter) is identical with and without the parallel engine.
pub(crate) enum SendIntent {
    /// A lossless-path protocol PDU (no fault plan active).
    Proto {
        src: usize,
        msg: Msg,
        span: u64,
        now: SimTime,
        host_done: SimTime,
        wire_start: SimTime,
        cell_gap: SimTime,
    },
    /// A lossless-path application PDU.
    App {
        src: usize,
        dst: usize,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        data: Option<Arc<Vec<u64>>>,
        span: u64,
        now: SimTime,
        host_done: SimTime,
        wire_start: SimTime,
        cell_gap: SimTime,
    },
    /// A reliable-layer data frame entering the faulty fabric.
    Frame {
        src: usize,
        dst: usize,
        seq: u64,
        frag: Frag,
        sent_at: SimTime,
        /// First 16 bytes of the frame image (header + sequence number);
        /// the rest is zero fill the segmenter materialises.
        prefix: [u8; 16],
        prefix_len: u8,
        bytes: u32,
        span: u64,
        now: SimTime,
        host_done: SimTime,
        wire_start: SimTime,
        cell_gap: SimTime,
    },
    /// A reliable-layer cumulative acknowledgement frame.
    Ack {
        from: usize,
        to: usize,
        ack: u64,
        image: [u8; 16],
        span: u64,
        now: SimTime,
        host_done: SimTime,
        wire_start: SimTime,
        cell_gap: SimTime,
    },
    /// A global-counter delta recorded mid-dispatch. Deltas commute, but
    /// routing them through the commit path keeps every global-state
    /// mutation out of the (possibly concurrent) dispatch phase.
    Stat(StatDelta),
}

/// Global-counter deltas produced during dispatch (see
/// [`SendIntent::Stat`]).
pub(crate) enum StatDelta {
    /// One protocol message of `kind` entered the reliable layer.
    ProtoMsg { kind: u8 },
    /// A one-way latency sample for `latency[idx]`, in microseconds.
    Latency { idx: usize, us: u64 },
    /// The receiver discarded a duplicate frame.
    Duplicate,
    /// The receiver dropped an in-order frame for lack of ring space.
    RingOverflow,
    /// Two duplicate acks triggered a fast retransmit.
    FastRetransmit,
    /// One frame retransmission.
    Retransmit,
    /// One retransmission-timer expiry.
    Timeout,
    /// A processor unblocked after waiting `raw` on op-kind `kind`.
    Wait { kind: usize, raw: SimTime },
    /// A program finished.
    ProcDone,
}

/// One unacknowledged frame in a sender window.
pub(crate) struct InFlight {
    pub(crate) seq: u64,
    pub(crate) frag: Frag,
    pub(crate) attempts: u32,
    pub(crate) sent_at: SimTime,
    /// Span of the frame's *first* transmission attempt: retransmission
    /// spans are recorded as its children, keeping every wire attempt
    /// causally linked to the originating send.
    pub(crate) span: u64,
}

/// Go-back-N transmit state for one (src, dst) channel.
pub(crate) struct ChanTx {
    pub(crate) next_seq: u64,
    /// Lowest unacknowledged sequence number.
    pub(crate) base: u64,
    pub(crate) window: VecDeque<InFlight>,
    /// Frames waiting for window space.
    pub(crate) pending: VecDeque<Frag>,
    /// Current retransmission timeout (doubles per timeout up to the
    /// plan's cap; resets on forward progress).
    pub(crate) rto: SimTime,
    pub(crate) timer_gen: u64,
    pub(crate) dup_acks: u32,
}

impl ChanTx {
    pub(crate) fn new(rto: SimTime) -> Self {
        ChanTx {
            next_seq: 0,
            base: 0,
            window: VecDeque::new(),
            pending: VecDeque::new(),
            rto,
            timer_gen: 0,
            dup_acks: 0,
        }
    }
}

/// Receive state for one (dst, src) channel: the next in-order sequence
/// number. Anything below it is a duplicate; anything above is discarded
/// (go-back-N keeps no out-of-order buffer) and re-acknowledged.
pub(crate) struct ChanRx {
    pub(crate) expected: u64,
}

pub(crate) struct Cpu {
    pub(crate) thread: Option<CoThread<YieldMsg, Reply>>,
    pub(crate) started: bool,
    pub(crate) clock: SimTime,
    /// The host CPU handles one asynchronous event (interrupt + protocol)
    /// at a time; later arrivals queue behind this.
    pub(crate) async_busy: SimTime,
    pub(crate) compute: SimTime,
    pub(crate) overhead: SimTime,
    pub(crate) delay: SimTime,
    pub(crate) blocked_at: Option<SimTime>,
    pub(crate) stolen: SimTime,
    pub(crate) done: bool,
    pub(crate) inbox: VecDeque<InboxMsg>,
    pub(crate) waiting_recv: bool,
    pub(crate) pending_reply: Option<Reply>,
    pub(crate) blocked_kind: usize,
    pub(crate) blocked_detail: u64,
    /// The span whose delivery last woke this processor: program-order
    /// causality for the messages its next operations send (0 until the
    /// first wakeup, or always when tracing is disabled).
    pub(crate) last_wake_span: u64,
}

/// One recorded engine→node interaction, the serializable stand-in for a
/// co-thread stack. While the journal is enabled (see
/// [`World::enable_journal`]) every interaction with a node is appended in
/// engine order: co-thread resumes with the reply they carried, and the
/// node's DSM handler invocations. A restore re-runs the same programs on
/// fresh co-threads and replays this journal verbatim — `Resume` entries
/// drive each co-thread back to its exact yield point (its yields are
/// discarded, because the engine's recorded reaction *is* the following
/// entries), and the DSM entries re-execute the protocol handlers so node
/// state and shared-memory contents converge to the checkpoint's.
#[derive(Clone, Debug)]
pub(crate) enum JEntry {
    /// Start or resume the node's co-thread with this reply.
    Resume(Reply),
    /// [`DsmNode::on_read_fault`] on the page.
    ReadFault(u32),
    /// [`DsmNode::on_write_fault`] on the page.
    WriteFault(u32),
    /// [`DsmNode::on_acquire`] of the lock.
    Acquire(u32),
    /// [`DsmNode::on_release`] of the lock.
    Release(u32),
    /// [`DsmNode::on_barrier`].
    Barrier,
    /// [`DsmNode::on_message`] with this message.
    Message(Msg),
}

impl Cpu {
    fn new() -> Self {
        Cpu {
            thread: None,
            started: false,
            clock: SimTime::ZERO,
            async_busy: SimTime::ZERO,
            compute: SimTime::ZERO,
            overhead: SimTime::ZERO,
            delay: SimTime::ZERO,
            blocked_at: None,
            stolen: SimTime::ZERO,
            done: false,
            inbox: VecDeque::new(),
            waiting_recv: false,
            pending_reply: None,
            blocked_kind: 0,
            blocked_detail: 0,
            last_wake_span: 0,
        }
    }
}

/// The simulated cluster.
pub struct World {
    pub(crate) cfg: Config,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) fabric: Fabric,
    pub(crate) nics: Vec<Nic>,
    pub(crate) dsm: Vec<DsmNode>,
    pub(crate) spaces: Vec<Arc<NodeSpace>>,
    pub(crate) cpus: Vec<Cpu>,
    pub(crate) next_page: u32,
    pub(crate) live: usize,
    pub(crate) proto_messages: u64,
    pub(crate) msg_kinds: [u64; 9],
    /// Wait-time diagnostics per blocking-op kind (lock, fault, barrier,
    /// recv): (total wait, count). Enabled by `CNI_WAIT_STATS`.
    pub(crate) wait_stats: [(SimTime, u64); 4],
    /// Deterministic jitter sources for protocol-handling costs, one per
    /// node. Identical critical-section durations phase-lock into
    /// pathological convoys that no real machine exhibits (cache and DRAM
    /// variance break them); a few percent of seeded jitter restores
    /// realistic desynchronisation while keeping runs bit-reproducible.
    /// Per-node streams (rather than one engine-wide generator) make each
    /// draw a function of the drawing node's own history, independent of
    /// how other nodes' dispatches interleave — a shard-isolation
    /// requirement of the parallel engine.
    pub(crate) jitter: Box<[SplitMix64]>,
    /// The trace sink cloned into every instrumented component
    /// (disabled by default: figure runs pay a single enum branch).
    pub(crate) trace: TraceSink,
    /// Virtual-time spacing of periodic [`TraceEvent::Metrics`] samples.
    pub(crate) metrics_interval: Option<SimTime>,
    /// Previous cumulative counter snapshot per node, for sample deltas.
    /// Boxed slice: per-node state is sized once at construction so a
    /// 1024-node world carries no spare capacity.
    pub(crate) metrics_prev: Box<[MetricsSample]>,
    /// Last allocated span id (0 = none; span ids are 1-based and only
    /// advance while tracing is enabled, so disabled runs pay nothing and
    /// the engine's timing never depends on the counter).
    pub(crate) next_span: u64,
    /// Previous cumulative busy-time snapshot per node for utilization
    /// deltas: (NIC processor, ingress link, egress link), picoseconds.
    pub(crate) util_prev: Box<[(u64, u64, u64)]>,
    /// Receive-ring high-water mark per node within the current metrics
    /// interval (reset to the live occupancy at each tick).
    pub(crate) ring_hw: Box<[u32]>,
    /// One-way wire latency per message kind, in nanoseconds:
    /// indices 0..=8 are the protocol kinds `0xD0..=0xD8`, index 9 is the
    /// application kind `0xA0`.
    pub(crate) latency: Box<[Histogram]>,
    /// Fault injector, present only for a non-zero fault plan. When `None`
    /// every transmission takes the legacy lossless path and timing is
    /// bit-identical to a build without the faults layer.
    pub(crate) injector: Option<FaultInjector>,
    /// Go-back-N transmit channels: `rel_tx[src]` maps `dst` to the
    /// channel, materialised on first use. Keyed lookups only — never
    /// iterated on the timing path — so the map's order cannot perturb
    /// the simulation, and a lossless run (no fault plan) allocates no
    /// channels at all instead of the former dense N² matrix (the
    /// 1024-node memory fix). Per-node outer slices (instead of one map
    /// keyed `(src, dst)`) give every shard sole ownership of its own
    /// channel states under the parallel engine.
    pub(crate) rel_tx: Box<[BTreeMap<u32, ChanTx>]>,
    /// Receive channels: `rel_rx[dst]` maps `src` to the channel,
    /// materialised on first use.
    pub(crate) rel_rx: Box<[BTreeMap<u32, ChanRx>]>,
    /// Base retransmission timeout for newly materialised channels.
    pub(crate) rel_rto0: SimTime,
    /// Reliability-protocol counters (retransmits, duplicates, overflows).
    pub(crate) rel_stats: FaultStats,
    /// Occupied frame slots in each node's virtual receive ring.
    pub(crate) ring_used: Box<[u32]>,
    /// Per-node replay journal (see [`JEntry`]), recorded only when
    /// checkpointing is enabled: `None` keeps figure runs free of the
    /// recording cost.
    pub(crate) journal: Option<Vec<Vec<JEntry>>>,
    /// Events dispatched since t = 0: the checkpoint cadence counter
    /// (serialized, so a resumed run keeps the original cadence phase).
    pub(crate) events_dispatched: u64,
    /// Snapshot cadence: when set, `checkpoint_sink` runs after every
    /// `N`-th dispatched event.
    checkpoint_every: Option<u64>,
    /// Where checkpoints go. The engine stays IO-free: the embedder's
    /// closure decides what a snapshot becomes (a file, a test buffer).
    checkpoint_sink: Option<CheckpointSink>,
    /// Parallel-engine window state (see [`crate::pdes`]). Inactive (and
    /// empty) whenever the serial loop runs; never serialized.
    pub(crate) pdes: PdesState,
}

/// Routing state for the conservative parallel engine: while a window is
/// being dispatched, every queue schedule and cross-shard side effect is
/// diverted into the acting shard's buffer instead of being applied, and
/// the executor's replay barrier applies them in exact serial order.
pub(crate) struct PdesState {
    /// True only while [`World::run_pdes`] is dispatching windows.
    pub(crate) active: bool,
    /// The current window's horizon: every cross-shard arrival committed
    /// during replay must land at or past it (the lookahead contract).
    pub(crate) horizon: SimTime,
    /// Per-shard buffers of captured effects, drained after each dispatch.
    pub(crate) out: Box<[Vec<PdesOut>]>,
}

impl PdesState {
    pub(crate) fn new() -> Self {
        PdesState {
            active: false,
            horizon: SimTime::ZERO,
            out: Box::new([]),
        }
    }
}

/// One captured effect, in dispatch call order.
pub(crate) enum PdesOut {
    /// The serial engine would have called `schedule_at(at, ev)` here.
    Local(SimTime, Ev),
    /// The serial engine would have applied this side effect here.
    Send(SendIntent),
}

/// The embedder's checkpoint callback (see `World::set_checkpoint`).
type CheckpointSink = Box<dyn FnMut(&World)>;

/// The AIH handler id the DSM protocol is installed under.
const DSM_HANDLER: u32 = 1;

impl World {
    /// Build a cluster per `cfg`.
    pub fn new(cfg: Config) -> Self {
        assert!(cfg.procs >= 1 && cfg.procs <= cfg.atm.hosts());
        cfg.faults.validate();
        let injector = if cfg.faults.is_zero() {
            None
        } else {
            Some(FaultInjector::new(cfg.faults))
        };
        let rto0 = SimTime::from_ps(cfg.faults.rto_base_ps);
        let mut nic_cfg = cfg.nic;
        nic_cfg.page_bytes = cfg.page_bytes;
        // NIC collectives imply the tree barrier (the NIC combines along
        // a tree); the tree's fan-out follows the fabric — on a fat-tree,
        // leaf-wide subtrees keep combining traffic off the spine.
        let tree_barrier = cfg.tree_barrier || cfg.collectives;
        let barrier_arity = match cfg.atm.topology {
            cni_atm::Topology::FatTree { down, .. } if cfg.collectives => down.max(2),
            _ => 2,
        };
        let dsm_cfg = DsmConfig {
            procs: cfg.procs,
            page_bytes: cfg.page_bytes,
            line_bytes: cfg.nic.cache_line_bytes,
            tree_barrier,
            barrier_arity,
        };
        let spaces: Vec<Arc<NodeSpace>> = (0..cfg.procs)
            .map(|_| Arc::new(NodeSpace::new(cfg.page_bytes, cfg.nic.cache_line_bytes)))
            .collect();
        let dsm = (0..cfg.procs)
            .map(|p| DsmNode::new(ProcId(p as u32), dsm_cfg, spaces[p].clone()))
            .collect();
        let nics = (0..cfg.procs)
            .map(|_| {
                let mut nic = Nic::new(cfg.nic_kind, nic_cfg);
                if cfg.nic_kind == NicKind::Cni && cfg.nic.cni_features.aih {
                    // Install the DSM protocol as an Application Interrupt
                    // Handler: one PATHFINDER pattern per protocol kind
                    // byte (0xD0..=0xD8).
                    for kind in 0xD0u8..=0xD8 {
                        nic.install_handler_pattern(
                            Pattern::new(vec![FieldTest::byte(0, kind)]),
                            DSM_HANDLER,
                        );
                    }
                }
                nic
            })
            .collect();
        World {
            q: EventQueue::new(),
            fabric: Fabric::new(cfg.atm),
            nics,
            dsm,
            spaces,
            cpus: (0..cfg.procs).map(|_| Cpu::new()).collect(),
            next_page: 0,
            live: 0,
            proto_messages: 0,
            msg_kinds: [0; 9],
            wait_stats: [(SimTime::ZERO, 0); 4],
            jitter: (0..cfg.procs)
                .map(|p| SplitMix64::new(cfg.seed ^ 0xC31_0C31 ^ p as u64))
                .collect(),
            trace: TraceSink::Disabled,
            metrics_interval: None,
            metrics_prev: vec![MetricsSample::default(); cfg.procs].into_boxed_slice(),
            next_span: 0,
            util_prev: vec![(0, 0, 0); cfg.procs].into_boxed_slice(),
            ring_hw: vec![0; cfg.procs].into_boxed_slice(),
            latency: vec![Histogram::new(); 10].into_boxed_slice(),
            injector,
            rel_tx: (0..cfg.procs).map(|_| BTreeMap::new()).collect(),
            rel_rx: (0..cfg.procs).map(|_| BTreeMap::new()).collect(),
            rel_rto0: rto0,
            rel_stats: FaultStats::default(),
            ring_used: vec![0; cfg.procs].into_boxed_slice(),
            journal: None,
            events_dispatched: 0,
            checkpoint_every: None,
            checkpoint_sink: None,
            pdes: PdesState::new(),
            cfg,
        }
    }

    /// Attach a trace sink to every instrumented component: the event
    /// queue, each NIC (device, Message Cache, ADC rings, classifier) and
    /// each DSM node. Co-threads pick the sink up when [`World::run`]
    /// spawns them. Call before `run`.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.q.set_trace(sink.clone());
        for (p, nic) in self.nics.iter_mut().enumerate() {
            nic.set_trace(sink.clone(), p as u32);
        }
        for d in &mut self.dsm {
            d.set_trace(sink.clone());
        }
        self.trace = sink;
    }

    /// The trace sink (drain it after [`World::run`] to export events).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Emit a [`TraceEvent::Metrics`] sample per node every `interval` of
    /// virtual time (only takes effect when a trace sink is attached).
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn set_metrics_interval(&mut self, interval: SimTime) {
        assert!(
            interval > SimTime::ZERO,
            "metrics interval must be positive"
        );
        self.metrics_interval = Some(interval);
    }

    /// Record the replay journal from the start of the run, enabling
    /// [`World::take_snapshot`]. Must be called before [`World::run`]
    /// (checkpoint-restore needs every engine→program interaction from
    /// t = 0; there is no way to start recording mid-run).
    ///
    /// # Panics
    /// Panics if programs have already started.
    pub fn enable_journal(&mut self) {
        assert!(
            self.cpus.iter().all(|c| !c.started),
            "enable_journal must precede World::run"
        );
        self.journal = Some(vec![Vec::new(); self.cfg.procs]);
    }

    /// Run `sink` after every `every`-th dispatched event. The sink
    /// typically calls [`World::take_snapshot`] and writes the result
    /// somewhere durable; the engine itself performs no IO. Requires
    /// [`World::enable_journal`]. Taking a snapshot never perturbs the
    /// simulation — a checkpointed run stays byte-identical to a plain
    /// one.
    ///
    /// # Panics
    /// Panics if `every` is zero or the journal is not enabled.
    pub fn set_checkpoint(&mut self, every: u64, sink: Box<dyn FnMut(&World)>) {
        assert!(every > 0, "checkpoint interval must be positive");
        assert!(
            self.journal.is_some(),
            "set_checkpoint requires enable_journal"
        );
        self.checkpoint_every = Some(every);
        self.checkpoint_sink = Some(sink);
    }

    /// Events dispatched so far (the checkpoint cadence counter).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Processor `p`'s shared-memory space (inspection after a run).
    pub fn space(&self, p: usize) -> &Arc<NodeSpace> {
        &self.spaces[p]
    }

    /// Diagnostic: (total wait, count) per blocking-op kind
    /// [locks, faults, barriers, receives].
    pub fn wait_stats(&self) -> [(SimTime, u64); 4] {
        self.wait_stats
    }

    /// Allocate shared memory (whole pages, zero-filled, homes assigned
    /// round-robin). Must be called before [`World::run`].
    pub fn alloc(&mut self, bytes: usize) -> VAddr {
        let pages = bytes.div_ceil(self.cfg.page_bytes).max(1);
        let procs = self.cfg.procs;
        let first = self.next_page as usize;
        self.alloc_pages(pages, move |i| (first + i) % procs)
    }

    /// Allocate shared memory with explicit page placement: `home(i)` gives
    /// the owning processor of the `i`-th page of this allocation. Matches
    /// the first-touch placement a real DSM would produce, which keeps
    /// initialisation local (and is what the paper's applications see).
    pub fn alloc_with_homes(&mut self, bytes: usize, home: impl Fn(usize) -> usize) -> VAddr {
        let pages = bytes.div_ceil(self.cfg.page_bytes).max(1);
        self.alloc_pages(pages, home)
    }

    fn alloc_pages(&mut self, pages: usize, home: impl Fn(usize) -> usize) -> VAddr {
        let first = self.next_page;
        self.next_page += pages as u32;
        for (i, pg) in (first..self.next_page).enumerate() {
            let page = PageId(pg);
            let owner = ProcId((home(i) % self.cfg.procs) as u32);
            for d in &mut self.dsm {
                d.set_home(page, owner);
            }
            self.dsm[owner.0 as usize].init_home_page(page);
        }
        VAddr::of_page(PageId(first), self.cfg.page_bytes)
    }

    /// Run one program per processor to completion; returns the
    /// measurements. A `World` is single-shot: allocations and protocol
    /// state belong to exactly one run.
    ///
    /// # Panics
    /// Panics if called twice, if the programs deadlock (no runnable
    /// events while programs are unfinished), or if they violate the DSM
    /// locking discipline.
    pub fn run(&mut self, programs: Vec<Program>) -> RunReport {
        assert_eq!(programs.len(), self.cfg.procs, "one program per processor");
        assert!(
            self.cpus.iter().all(|c| !c.started),
            "World::run is single-shot; build a fresh World for another run"
        );
        self.live = programs.len();
        self.spawn_threads(programs);
        // All processors wake at time zero: one bulk insert, tie-broken by
        // sequence number exactly as the per-call path would be.
        self.q
            .schedule_batch_at(SimTime::ZERO, (0..self.cfg.procs).map(Ev::Resume));
        if self.trace.is_enabled() {
            if let Some(iv) = self.metrics_interval {
                self.q.schedule_at(SimTime::ZERO + iv, Ev::MetricsTick);
            }
        }
        self.run_loop();
        assert_eq!(
            self.live, 0,
            "simulation ran out of events with {} programs unfinished (deadlock)",
            self.live
        );
        self.report()
    }

    /// Spawn one co-thread per program. Shared by [`World::run`] and the
    /// checkpoint-restore path, which re-runs the same programs on fresh
    /// co-threads and replays the journal into them.
    pub(crate) fn spawn_threads(&mut self, programs: Vec<Program>) {
        let costs = AccessCosts {
            read: self.cfg.costs.shared_read_cycles,
            write: self.cfg.costs.shared_write_cycles,
        };
        let page_bytes = self.cfg.page_bytes;
        let line_bytes = self.cfg.nic.cache_line_bytes;
        let procs = self.cfg.procs as u32;
        for (p, prog) in programs.into_iter().enumerate() {
            let space = self.spaces[p].clone();
            let me = p as u32;
            let mut thread = CoThread::spawn(&format!("cpu{p}"), move |port| {
                let mut ctx = ProcCtx::new(me, procs, page_bytes, line_bytes, costs, space, port);
                prog(&mut ctx);
                ctx.finish();
            });
            thread.set_trace(self.trace.clone(), me);
            self.cpus[p].thread = Some(thread);
        }
    }

    /// Dispatch events until every program finishes (or the queue runs
    /// dry), taking a checkpoint after every `checkpoint_every`-th event
    /// when configured. Checkpoints run *between* dispatches, when every
    /// co-thread is parked at a yield and the engine state is quiescent.
    /// Drive the run to completion on whichever engine the configuration
    /// selects: the serial event loop, or — when more than one engine
    /// worker is requested and the run is eligible (no live trace, no
    /// checkpoint cadence) — the conservative lookahead-based parallel
    /// executor (DESIGN.md §4.11). Both produce byte-identical results.
    pub(crate) fn run_loop(&mut self) {
        if self.pdes_eligible() {
            self.run_pdes();
        } else {
            self.event_loop();
        }
    }

    /// Whether this run may use the parallel executor: the operator asked
    /// for more than one worker, there are at least two shards to spread,
    /// and nothing serial-only is active. Live tracing observes engine
    /// internals mid-window and checkpoint cadences count dispatches
    /// between pops, so both pin the run to the serial loop.
    fn pdes_eligible(&self) -> bool {
        self.cfg.engine_workers > 1
            && self.cfg.procs >= 2
            && !self.trace.is_enabled()
            && self.checkpoint_every.is_none()
    }

    pub(crate) fn event_loop(&mut self) {
        while let Some((t, ev)) = self.q.pop() {
            self.dispatch(t, ev);
            self.events_dispatched += 1;
            if let Some(every) = self.checkpoint_every {
                if self.events_dispatched.is_multiple_of(every) {
                    // Take the sink out while it borrows the world.
                    if let Some(mut sink) = self.checkpoint_sink.take() {
                        sink(self);
                        self.checkpoint_sink = Some(sink);
                    }
                }
            }
            if self.live == 0 && self.q.is_empty() {
                break;
            }
        }
    }

    pub(crate) fn dispatch(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::Resume(p) => self.resume(p, Reply::Ok),
            Ev::Xmit { src, msg, cause } => {
                self.transport(src, msg, TxOrigin::Board, t, cause);
            }
            Ev::XmitApp {
                src,
                dst,
                len,
                page,
                cacheable,
                data,
                cause,
            } => self.xmit_app(t, src, dst, len, page, cacheable, data, cause),
            Ev::Proto { msg, span } => self.arrive_proto(t, msg, span),
            Ev::App {
                dst,
                src,
                len,
                page,
                cacheable,
                data,
                span,
            } => self.arrive_app(t, dst, src, len, page, cacheable, data, span),
            Ev::Wake { p, overhead } => self.wake(t, p, overhead),
            Ev::MetricsTick => self.metrics_tick(t),
            Ev::FrameRx {
                src,
                dst,
                seq,
                cells,
                span,
                frag,
                sent_at,
            } => self.on_frame_rx(t, src, dst, seq, cells, span, frag, sent_at),
            Ev::AckRx {
                to,
                from,
                ack,
                cells,
                span,
            } => self.on_ack_rx(t, to, from, ack, cells, span),
            Ev::RxmitTimer { src, dst, gen } => self.on_rxmit_timer(t, src, dst, gen),
            Ev::RingRelease { dst } => {
                self.ring_used[dst] = self.ring_used[dst].saturating_sub(1);
            }
        }
    }

    /// Cumulative counters for node `p`, in [`MetricsSample`] shape
    /// (`interval_ps` left zero; the tick computes deltas).
    fn cumulative_sample(&self, p: usize) -> MetricsSample {
        let n = self.nics[p].stats();
        let d = self.dsm[p].stats();
        MetricsSample {
            interval_ps: 0,
            tx_messages: n.tx_messages,
            rx_messages: n.rx_messages,
            dma_bytes_to_board: n.dma_bytes_to_board,
            dma_bytes_to_host: n.dma_bytes_to_host,
            tx_cache_hits: n.tx_cache_hits,
            tx_page_lookups: n.tx_page_lookups,
            interrupts: n.interrupts,
            polls: n.polls,
            aih_dispatches: n.aih_dispatches,
            page_fetches: d.page_fetches,
            diff_fetches: d.diff_fetches,
            invalidations: d.invalidations,
        }
    }

    /// Emit one [`TraceEvent::Metrics`] delta and one
    /// [`TraceEvent::UtilNode`] gauge per node (plus the engine-wide
    /// [`TraceEvent::UtilQueue`] depth) and reschedule the next tick
    /// while any program is still running.
    fn metrics_tick(&mut self, t: SimTime) {
        let interval = self.metrics_interval.expect("tick without interval");
        for p in 0..self.cfg.procs {
            let cur = self.cumulative_sample(p);
            let delta = cur.delta_from(&self.metrics_prev[p], interval.as_ps());
            self.metrics_prev[p] = cur;
            self.trace
                .emit_at(t.as_ps(), p as u32, TraceEvent::Metrics(delta));
            let busy = self.nics[p].busy_time().as_ps();
            let (ing, eg) = self.fabric.link_busy(p);
            let (ing, eg) = (ing.as_ps(), eg.as_ps());
            let prev = self.util_prev[p];
            self.trace.emit_at(
                t.as_ps(),
                p as u32,
                TraceEvent::UtilNode {
                    busy_ps: busy - prev.0,
                    ingress_ps: ing - prev.1,
                    egress_ps: eg - prev.2,
                    ring_hw: self.ring_hw[p],
                    interval_ps: interval.as_ps(),
                },
            );
            self.util_prev[p] = (busy, ing, eg);
            self.ring_hw[p] = self.ring_used[p];
        }
        self.trace.emit_at(
            t.as_ps(),
            cni_trace::NO_NODE,
            TraceEvent::UtilQueue {
                depth: self.q.len() as u32,
            },
        );
        if self.live > 0 {
            self.q.schedule_at(t + interval, Ev::MetricsTick);
        }
    }

    // --- span plumbing ----------------------------------------------------

    /// Allocate the next span id, or 0 when tracing is disabled. Ids are
    /// assigned in deterministic event order and are only observable
    /// through the trace, so the disabled-path short-circuit cannot
    /// perturb simulation timing.
    fn alloc_span(&mut self) -> u64 {
        if !self.trace.is_enabled() {
            return 0;
        }
        self.next_span += 1;
        self.next_span
    }

    /// Open a span: one message, frame or acknowledgement entering its
    /// lifecycle at `at`.
    #[allow(clippy::too_many_arguments)]
    fn open_span(
        &mut self,
        at: SimTime,
        parent: u64,
        class: u8,
        kind: u8,
        src: usize,
        dst: usize,
        bytes: usize,
    ) -> u64 {
        let span = self.alloc_span();
        self.trace.emit_at(
            at.as_ps(),
            src as u32,
            TraceEvent::SpanOpen {
                span,
                parent,
                class,
                kind,
                src: src as u32,
                dst: dst as u32,
                bytes: bytes as u32,
            },
        );
        span
    }

    /// Record the receive-side stage durations of `span` from the NIC's
    /// receive-path timestamps. Runs on the protocol receive path, so it
    /// must stay free of panicking operators (`cni-lint` P1 enforces
    /// this).
    fn record_rx_span(&self, dst: u32, arrival: SimTime, span: u64, rx: &cni_nic::RxPath) {
        self.trace.emit_at(
            rx.ready_at.as_ps(),
            dst,
            TraceEvent::SpanRx {
                span,
                rx_nic_ps: rx.rx_start.saturating_sub(arrival).as_ps(),
                sar_ps: rx.sar_done.saturating_sub(rx.rx_start).as_ps(),
            },
        );
    }

    /// Close `span` at `at`: its effect was delivered (handler finished,
    /// payload landed in host memory, frame or ACK ingested). Also on
    /// the protocol receive path; panic-free like [`Self::record_rx_span`].
    fn close_span(&self, at: SimTime, node: u32, span: u64) {
        self.trace
            .emit_at(at.as_ps(), node, TraceEvent::SpanClose { span });
    }

    pub(crate) fn report(&self) -> RunReport {
        let wall = self
            .cpus
            .iter()
            .map(|c| c.clock)
            .fold(SimTime::ZERO, SimTime::max);
        let latency = self
            .latency
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(i, h)| KindLatency {
                kind: if i < 9 { 0xD0 + i as u8 } else { 0xA0 },
                count: h.count(),
                mean_us: h.mean() / 1e3,
                p50_us: h.percentile(50.0) / 1e3,
                p99_us: h.percentile(99.0) / 1e3,
            })
            .collect();
        let latency_hist = self
            .latency
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(i, h)| KindHistogram {
                kind: if i < 9 { 0xD0 + i as u8 } else { 0xA0 },
                hist: h.clone(),
            })
            .collect();
        RunReport {
            version: REPORT_VERSION,
            wall,
            procs: self
                .cpus
                .iter()
                .map(|c| ProcTimes {
                    compute: c.compute,
                    overhead: c.overhead,
                    delay: c.delay,
                    total: c.clock,
                })
                .collect(),
            nic: self.nics.iter().map(|n| n.stats()).collect(),
            msg_cache: self.nics.iter().map(|n| n.msg_cache_stats()).collect(),
            dsm: self.dsm.iter().map(|d| d.stats()).collect(),
            messages: self.proto_messages,
            msg_kinds: self.msg_kinds,
            latency,
            latency_hist,
            trace: self.trace.summary(),
            faults: {
                let mut f = self.rel_stats;
                if let Some(inj) = &self.injector {
                    f.merge(&inj.stats());
                }
                f.crc_failures = self
                    .nics
                    .iter()
                    .map(|n| n.stats().rx_crc_failures)
                    .sum::<u64>();
                f
            },
            stages: None,
        }
    }

    // --- time helpers -----------------------------------------------------

    fn host(&self, cycles: u64) -> SimTime {
        self.cfg.nic.host_clock.cycles(cycles)
    }

    /// Protocol labour in host-CPU cycles: the host moves page images with
    /// its own loads/stores (copying between DMA buffers and user pages).
    fn work_cycles(&self, w: &Work) -> u64 {
        let c = &self.cfg.costs;
        c.msg_base_cycles
            + c.per_word_cycles
                * (w.twin_words + w.diff_scan_words + w.diff_words + w.page_copy_words)
            + c.per_notice_cycles * w.notices
    }

    /// Protocol labour in NIC-processor cycles for an Application Interrupt
    /// Handler: diff and notice processing run on the 33 MHz core, but page
    /// images move by DMA/SAR engines (already timed on the bus and wire),
    /// so `page_copy_words` is not a processor cost here. This asymmetry is
    /// the paper's offload argument.
    fn work_cycles_nic(&self, w: &Work) -> u64 {
        let c = &self.cfg.costs;
        c.msg_base_cycles
            + c.per_word_cycles * (w.twin_words + w.diff_scan_words + w.diff_words)
            + c.per_notice_cycles * w.notices
    }

    /// Add deterministic jitter of up to ~6% to a protocol-handling cycle
    /// count, drawn from node `p`'s private stream so concurrent shards
    /// never race on a shared generator.
    fn jittered(&mut self, p: usize, cycles: u64) -> u64 {
        cycles + self.jitter[p].next_below(cycles / 16 + 1)
    }

    /// Charge host overhead synchronously on `p`'s clock.
    fn charge_ov(&mut self, p: usize, cycles: u64) {
        let dt = self.host(cycles);
        self.cpus[p].clock += dt;
        self.cpus[p].overhead += dt;
    }

    // --- program-side event handling ----------------------------------------

    /// Record a journal entry for processor `p` when journalling is on.
    #[inline]
    fn journal_push(&mut self, p: usize, e: JEntry) {
        if let Some(j) = &mut self.journal {
            j[p].push(e);
        }
    }

    fn resume(&mut self, p: usize, reply: Reply) {
        if let Some(j) = &mut self.journal {
            j[p].push(JEntry::Resume(reply.clone()));
        }
        let y = {
            let cpu = &mut self.cpus[p];
            let thread = cpu.thread.as_mut().expect("resume of dead cpu");
            if !cpu.started {
                cpu.started = true;
                thread.start()
            } else {
                thread.resume(reply)
            }
        };
        match y {
            Yield::Finished => {
                self.cpus[p].thread = None;
            }
            Yield::Request(ym) => {
                let comp = self.host(ym.pending_cycles);
                let stolen = std::mem::take(&mut self.cpus[p].stolen);
                {
                    let cpu = &mut self.cpus[p];
                    cpu.clock += comp;
                    cpu.compute += comp;
                    cpu.clock += stolen;
                    cpu.overhead += stolen;
                }
                self.handle_op(p, ym.op);
            }
        }
    }

    /// Re-drive processor `p`'s co-thread and DSM node through a recorded
    /// journal, reconstructing their unserialisable state (thread stack,
    /// page maps, directory, twins) without touching the event queue or
    /// any timing counter.
    ///
    /// `Resume` entries feed the co-thread the exact replies the original
    /// run produced; the yields that come back are *discarded* (the
    /// original run already turned them into events, which live in the
    /// snapshot's queue). `ReadFault`/`WriteFault`/`Acquire`/`Release`/
    /// `Barrier`/`Message` entries re-execute the corresponding DSM
    /// call, discarding its outputs for the same reason — only the side
    /// effects on the node's protocol state matter. Per-node replay is
    /// sufficient because `DsmNode` and `NodeSpace` are per-node: nodes
    /// interact only through messages, which are themselves journaled.
    pub(crate) fn replay_node(&mut self, p: usize, entries: &[JEntry]) -> Result<(), String> {
        for (i, e) in entries.iter().enumerate() {
            match e {
                JEntry::Resume(reply) => {
                    let y = {
                        let cpu = &mut self.cpus[p];
                        let thread = cpu.thread.as_mut().ok_or_else(|| {
                            format!("journal entry {i} resumes processor {p} after its program finished")
                        })?;
                        if !cpu.started {
                            cpu.started = true;
                            thread.start()
                        } else {
                            thread.resume(reply.clone())
                        }
                    };
                    if matches!(y, Yield::Finished) {
                        self.cpus[p].thread = None;
                    }
                }
                JEntry::ReadFault(pg) => {
                    let _ = self.dsm[p].on_read_fault(PageId(*pg));
                }
                JEntry::WriteFault(pg) => {
                    let _ = self.dsm[p].on_write_fault(PageId(*pg));
                }
                JEntry::Acquire(l) => {
                    let _ = self.dsm[p].on_acquire(LockId(*l));
                }
                JEntry::Release(l) => {
                    let _ = self.dsm[p].on_release(LockId(*l));
                }
                JEntry::Barrier => {
                    let _ = self.dsm[p].on_barrier();
                }
                JEntry::Message(m) => {
                    let _ = self.dsm[p].on_message(m.clone());
                }
            }
        }
        Ok(())
    }

    fn handle_op(&mut self, p: usize, op: Op) {
        match op {
            Op::ReadFault(page) => {
                self.charge_ov(p, self.cfg.costs.fault_trap_cycles);
                self.cpus[p].blocked_kind = 1;
                self.cpus[p].blocked_detail = page.0 as u64;
                self.journal_push(p, JEntry::ReadFault(page.0));
                let res = self.dsm[p].on_read_fault(page);
                self.apply_sync_result(p, res, true);
            }
            Op::WriteFault(page) => {
                self.charge_ov(p, self.cfg.costs.fault_trap_cycles);
                self.cpus[p].blocked_kind = 1;
                self.cpus[p].blocked_detail = 0x1_0000_0000 | page.0 as u64;
                self.journal_push(p, JEntry::WriteFault(page.0));
                let res = self.dsm[p].on_write_fault(page);
                self.apply_sync_result(p, res, true);
            }
            Op::Acquire(l) => {
                self.charge_ov(p, self.cfg.costs.lock_op_cycles);
                self.cpus[p].blocked_kind = 0;
                self.cpus[p].blocked_detail = l.0 as u64;
                self.journal_push(p, JEntry::Acquire(l.0));
                let res = self.dsm[p].on_acquire(l);
                self.apply_sync_result(p, res, true);
            }
            Op::Release(l) => {
                self.charge_ov(p, self.cfg.costs.lock_op_cycles);
                self.journal_push(p, JEntry::Release(l.0));
                let res = self.dsm[p].on_release(l);
                self.apply_sync_result(p, res, false);
            }
            Op::Barrier => {
                self.charge_ov(p, self.cfg.costs.barrier_op_cycles);
                self.cpus[p].blocked_kind = 2;
                self.journal_push(p, JEntry::Barrier);
                let res = self.dsm[p].on_barrier();
                self.apply_sync_result(p, res, true);
            }
            Op::SendTo {
                dst,
                len,
                page,
                cacheable,
                dirty_lines,
                data,
            } => {
                self.charge_ov(p, self.host_send_cycles());
                if dirty_lines > 0 {
                    // Write-back flush so the board sees a consistent
                    // buffer; the snooper applies the flushed writes.
                    let now = self.cpus[p].clock;
                    let x = self.nics[p].bus.flush_lines(
                        now,
                        dirty_lines as u64,
                        self.cfg.nic.cache_line_bytes,
                    );
                    let dt = x.end - now;
                    self.cpus[p].clock = x.end;
                    self.cpus[p].overhead += dt;
                    if let Some(pg) = page {
                        self.nics[p].snoop_write(pg);
                    }
                }
                let at = self.cpus[p].clock;
                let cause = self.cpus[p].last_wake_span;
                self.sched(
                    p,
                    at,
                    Ev::XmitApp {
                        src: p,
                        dst: dst as usize,
                        len,
                        page,
                        cacheable,
                        data,
                        cause,
                    },
                );
                self.sched(p, at, Ev::Resume(p));
            }
            Op::Backoff(cycles) => {
                self.charge_ov(p, cycles);
                let at = self.cpus[p].clock;
                self.sched(p, at, Ev::Resume(p));
            }
            Op::Recv => {
                if let Some((src, len, data)) = self.cpus[p].inbox.pop_front() {
                    self.charge_ov(p, self.cfg.nic.poll_cycles);
                    let at = self.cpus[p].clock;
                    self.cpus[p].pending_reply = Some(Reply::Received { src, len, data });
                    self.sched(
                        p,
                        at,
                        Ev::Wake {
                            p,
                            overhead: SimTime::ZERO,
                        },
                    );
                    // Mark as "blocked" for zero time so Wake's accounting
                    // balances.
                    self.cpus[p].blocked_at = Some(at);
                } else {
                    self.cpus[p].waiting_recv = true;
                    self.cpus[p].blocked_kind = 3;
                    self.cpus[p].blocked_at = Some(self.cpus[p].clock);
                }
            }
            Op::Done => {
                self.cpus[p].done = true;
                // `live` is a global counter: route the decrement through
                // the commit path so a parallel window applies it serially.
                self.emit_send(p, SendIntent::Stat(StatDelta::ProcDone));
                // Let the co-thread run to completion.
                self.resume(p, Reply::Ok);
            }
        }
    }

    /// Apply a protocol result produced synchronously by processor `p`'s
    /// own operation: charge its work and flushes to `p`, transmit its
    /// messages host-initiated, and either resume or block `p`.
    fn apply_sync_result(&mut self, p: usize, res: HandleResult, blocking: bool) {
        // Data-movement labour only: the base per-operation cost was
        // already charged by the caller (fault trap / lock op / barrier
        // op), so don't re-add msg_base here.
        let c = &self.cfg.costs;
        let w = &res.work;
        let labour = c.per_word_cycles
            * (w.twin_words + w.diff_scan_words + w.diff_words + w.page_copy_words)
            + c.per_notice_cycles * w.notices;
        self.charge_ov(p, labour);
        self.charge_flushes(p, &res.flushed);
        for m in res.out {
            self.send_proto_sync(p, m);
        }
        if res.wakeup.is_some() || !blocking {
            let at = self.cpus[p].clock;
            self.sched(p, at, Ev::Resume(p));
        } else {
            self.cpus[p].blocked_at = Some(self.cpus[p].clock);
        }
    }

    /// Flush dirty lines over the bus (the releasing CPU stalls for the
    /// write-backs) and feed the flushed pages to the snooper.
    fn charge_flushes(&mut self, p: usize, flushed: &[(PageId, u64)]) {
        if flushed.is_empty() {
            return;
        }
        let line_bytes = self.cfg.nic.cache_line_bytes;
        let total: u64 = flushed.iter().map(|&(_, l)| l).sum();
        let now = self.cpus[p].clock;
        let x = self.nics[p].bus.flush_lines(now, total, line_bytes);
        for &(page, _) in flushed {
            self.nics[p].snoop_write(page.0 as u64);
        }
        let dt = x.end - now;
        self.cpus[p].clock = x.end;
        self.cpus[p].overhead += dt;
    }

    /// Host cycles to hand one message to the NIC (kernel entry on the
    /// standard interface, a user-level ADC enqueue on the CNI).
    fn host_send_cycles(&self) -> u64 {
        match self.cfg.nic_kind {
            NicKind::Standard => self.cfg.nic.kernel_send_cycles,
            NicKind::Cni => self.cfg.nic.adc_enqueue_cycles,
        }
    }

    /// Transmit a protocol message initiated by `p`'s own (synchronous)
    /// operation: the host-side cost advances `p`'s clock now; the
    /// NIC-side work runs as an [`Ev::Xmit`] at that time. The send's
    /// span parent is whatever span last woke `p` — program-order
    /// causality.
    fn send_proto_sync(&mut self, p: usize, msg: Msg) {
        self.charge_ov(p, self.host_send_cycles());
        let at = self.cpus[p].clock;
        let cause = self.cpus[p].last_wake_span;
        self.sched(p, at, Ev::Xmit { src: p, msg, cause });
    }

    // --- effect routing (serial vs parallel engine) ---------------------------

    /// Schedule `ev`, acting as `node`. On the serial path this is plain
    /// `schedule_at`; while the parallel engine dispatches a window the
    /// schedule is captured in `node`'s shard buffer and applied by the
    /// replay barrier with an identically allocated sequence number.
    fn sched(&mut self, node: usize, at: SimTime, ev: Ev) {
        if self.pdes.active {
            self.pdes.out[node].push(PdesOut::Local(at, ev));
        } else {
            self.q.schedule_at(at, ev);
        }
    }

    /// Route a send intent produced while acting as node `src`: committed
    /// immediately on the serial path, deferred to the replay barrier
    /// under the parallel engine.
    fn emit_send(&mut self, src: usize, intent: SendIntent) {
        if self.pdes.active {
            self.pdes.out[src].push(PdesOut::Send(intent));
        } else {
            self.commit_send(intent);
        }
    }

    /// Schedule a cross-shard arrival from a commit. Under the parallel
    /// engine every arrival must land at or past the window horizon — the
    /// conservative-lookahead contract (see [`crate::pdes`]); a violation
    /// means the configured lookahead overstates the fabric's minimum
    /// cross-node latency and the run must die loudly, not corrupt the
    /// order.
    fn sched_arrival(&mut self, at: SimTime, ev: Ev) {
        // cni-lint: allow(panic-path) -- the horizon is engine configuration, not wire data: a violation means the lookahead constant is wrong and every parallel run is unsound
        assert!(
            !self.pdes.active || at >= self.pdes.horizon,
            "lookahead violation: arrival at {at:?} inside the window horizon {:?}",
            self.pdes.horizon,
        );
        self.q.schedule_at(at, ev);
    }

    /// Apply one [`SendIntent`]: the serial half of a send. Besides the
    /// serial event loop itself, this is the only place that touches the
    /// fabric's link state, the fault injector, the global queue and the
    /// global counters — under the parallel engine it runs exclusively on
    /// the coordinating thread, in exact serial dispatch order.
    pub(crate) fn commit_send(&mut self, intent: SendIntent) {
        match intent {
            SendIntent::Proto {
                src,
                msg,
                span,
                now,
                host_done,
                wire_start,
                cell_gap,
            } => {
                let dst = msg.dst.0 as usize;
                let bytes = msg.payload.wire_bytes();
                let kind = msg.payload.kind();
                let timing = self.fabric.send_pdu(wire_start, src, dst, bytes, cell_gap);
                let lat = timing.last_cell_arrival - now;
                self.latency[(kind - 0xD0) as usize].record(lat.as_ps() / 1000);
                self.trace.emit_at(
                    timing.last_cell_arrival.as_ps(),
                    src as u32,
                    TraceEvent::ProtoTx {
                        kind,
                        bytes: bytes as u32,
                        dur_ps: lat.as_ps(),
                    },
                );
                self.trace.emit_at(
                    timing.last_cell_arrival.as_ps(),
                    src as u32,
                    TraceEvent::SpanTx {
                        span,
                        host_dma_ps: host_done.saturating_sub(now).as_ps(),
                        tx_queue_ps: wire_start.saturating_sub(host_done).as_ps(),
                        wire_ps: timing.last_cell_arrival.saturating_sub(wire_start).as_ps(),
                    },
                );
                self.sched_arrival(timing.last_cell_arrival, Ev::Proto { msg, span });
                self.proto_messages += 1;
                self.msg_kinds[(kind - 0xD0) as usize] += 1;
            }
            SendIntent::App {
                src,
                dst,
                len,
                page,
                cacheable,
                data,
                span,
                now,
                host_done,
                wire_start,
                cell_gap,
            } => {
                let timing = self
                    .fabric
                    .send_pdu(wire_start, src, dst, len as usize, cell_gap);
                let lat = timing.last_cell_arrival - now;
                self.latency[9].record(lat.as_ps() / 1000);
                self.trace.emit_at(
                    timing.last_cell_arrival.as_ps(),
                    src as u32,
                    TraceEvent::ProtoTx {
                        kind: 0xA0,
                        bytes: len,
                        dur_ps: lat.as_ps(),
                    },
                );
                self.trace.emit_at(
                    timing.last_cell_arrival.as_ps(),
                    src as u32,
                    TraceEvent::SpanTx {
                        span,
                        host_dma_ps: host_done.saturating_sub(now).as_ps(),
                        tx_queue_ps: wire_start.saturating_sub(host_done).as_ps(),
                        wire_ps: timing.last_cell_arrival.saturating_sub(wire_start).as_ps(),
                    },
                );
                self.sched_arrival(
                    timing.last_cell_arrival,
                    Ev::App {
                        dst,
                        src,
                        len,
                        page,
                        cacheable,
                        data,
                        span,
                    },
                );
            }
            SendIntent::Frame {
                src,
                dst,
                seq,
                frag,
                sent_at,
                prefix,
                prefix_len,
                bytes,
                span,
                now,
                host_done,
                wire_start,
                cell_gap,
            } => {
                // Data frames travel on VCI `src * 2`; acknowledgements on
                // `src * 2 + 1`, so a retransmission can never interleave
                // with the reverse stream inside the destination's per-VCI
                // reassembler.
                let vci = (src * 2) as u16;
                let (cells, done) = self.commit_faulty(
                    src,
                    dst,
                    vci,
                    &prefix[..prefix_len as usize],
                    bytes as usize,
                    span,
                    now,
                    host_done,
                    wire_start,
                    cell_gap,
                );
                if let Some(arrival) = done {
                    self.trace.emit_at(
                        arrival.as_ps(),
                        src as u32,
                        TraceEvent::ProtoTx {
                            kind: prefix[0],
                            bytes,
                            dur_ps: (arrival - now).as_ps(),
                        },
                    );
                    self.sched_arrival(
                        arrival,
                        Ev::FrameRx {
                            src,
                            dst,
                            seq,
                            cells,
                            span,
                            frag,
                            sent_at,
                        },
                    );
                }
            }
            SendIntent::Ack {
                from,
                to,
                ack,
                image,
                span,
                now,
                host_done,
                wire_start,
                cell_gap,
            } => {
                self.rel_stats.acks_sent += 1;
                let vci = (from * 2 + 1) as u16;
                let (cells, done) = self.commit_faulty(
                    from, to, vci, &image, 16, span, now, host_done, wire_start, cell_gap,
                );
                if let Some(arrival) = done {
                    self.sched_arrival(
                        arrival,
                        Ev::AckRx {
                            to,
                            from,
                            ack,
                            cells,
                            span,
                        },
                    );
                }
            }
            SendIntent::Stat(delta) => self.commit_stat(delta),
        }
    }

    /// The serial half of a faulty-fabric frame transmission: segment the
    /// image, draw the injector's per-cell fates, occupy the fabric, and
    /// return the surviving cells plus the reassembly-complete time (the
    /// NIC-side transmit already ran on the acting shard — its timings
    /// arrive as `host_done`/`wire_start`/`cell_gap`).
    #[allow(clippy::too_many_arguments)]
    fn commit_faulty(
        &mut self,
        src: usize,
        dst: usize,
        vci: u16,
        prefix: &[u8],
        bytes: usize,
        span: u64,
        now: SimTime,
        host_done: SimTime,
        wire_start: SimTime,
        cell_gap: SimTime,
    ) -> (Vec<Cell>, Option<SimTime>) {
        let cells = self.fabric.segmenter().segment_prefixed(vci, prefix, bytes);
        let inj = self
            .injector
            .as_mut()
            // cni-lint: allow(panic-path) -- frame intents are only emitted behind an injector.is_some() check; this Option is engine state, not wire data
            .expect("fault transmit needs an injector");
        let fpt = self
            .fabric
            .send_pdu_faulty(wire_start, src, dst, bytes, cell_gap, inj);
        debug_assert_eq!(fpt.cells, cells.len());
        let mut delivered = Vec::with_capacity(cells.len());
        for (i, mut cell) in cells.into_iter().enumerate() {
            match fpt.fates[i] {
                CellFate::Drop => {
                    self.trace.emit_at(
                        now.as_ps(),
                        src as u32,
                        TraceEvent::CellDropped {
                            vci: vci as u32,
                            cell: i as u32,
                        },
                    );
                    continue;
                }
                CellFate::Corrupt { byte, bit } => {
                    // Copy-on-write: only this cell's view materialises a
                    // private copy; the train's other cells keep sharing
                    // the segmented image.
                    cell.payload.xor_bit(byte as usize, bit);
                }
                CellFate::Deliver => {}
            }
            delivered.push(cell);
        }
        let done = if fpt.eop_delivered() {
            fpt.last_delivered
        } else {
            None
        };
        if let Some(arrival) = done {
            self.trace.emit_at(
                arrival.as_ps(),
                src as u32,
                TraceEvent::SpanTx {
                    span,
                    host_dma_ps: host_done.saturating_sub(now).as_ps(),
                    tx_queue_ps: wire_start.saturating_sub(host_done).as_ps(),
                    wire_ps: arrival.saturating_sub(wire_start).as_ps(),
                },
            );
        }
        (delivered, done)
    }

    /// Apply one recorded global-counter delta.
    fn commit_stat(&mut self, delta: StatDelta) {
        match delta {
            StatDelta::ProtoMsg { kind } => {
                self.proto_messages += 1;
                self.msg_kinds[(kind - 0xD0) as usize] += 1;
            }
            StatDelta::Latency { idx, us } => self.latency[idx].record(us),
            StatDelta::Duplicate => self.rel_stats.duplicates += 1,
            StatDelta::RingOverflow => self.rel_stats.ring_overflows += 1,
            StatDelta::FastRetransmit => self.rel_stats.fast_retransmits += 1,
            StatDelta::Retransmit => self.rel_stats.retransmits += 1,
            StatDelta::Timeout => self.rel_stats.timeouts += 1,
            StatDelta::Wait { kind, raw } => {
                let slot = &mut self.wait_stats[kind];
                slot.0 += raw;
                slot.1 += 1;
            }
            StatDelta::ProcDone => self.live -= 1,
        }
    }

    /// Push `msg` through `src`'s NIC and the fabric; the host-side part
    /// finishes at `now` for board-origin sends.
    /// Opens the message's span as a child of `cause`.
    fn transport(&mut self, src: usize, msg: Msg, origin: TxOrigin, now: SimTime, cause: u64) {
        let dst = msg.dst.0 as usize;
        debug_assert_ne!(src, dst, "protocol self-sends are handled locally");
        let bytes = msg.payload.wire_bytes();
        let kind = msg.payload.kind();
        let span = self.open_span(now, cause, cni_trace::SPAN_MSG, kind, src, dst, bytes);
        if self.injector.is_some() {
            debug_assert_eq!(origin, TxOrigin::Board);
            self.queue_reliable(now, src, dst, WireMsg::Proto(msg), span);
            return;
        }
        let cells = self.fabric.segmenter().cell_count(bytes);
        let tx = self.nics[src].transmit(
            now,
            &TxRequest {
                len: bytes,
                cells,
                page: msg.payload.page_payload().map(|p| p.0 as u64),
                cacheable: msg.payload.cacheable(),
                dirty_lines: 0,
                origin,
            },
        );
        self.emit_send(
            src,
            SendIntent::Proto {
                src,
                msg,
                span,
                now,
                host_done: tx.host_done,
                wire_start: tx.wire_start,
                cell_gap: tx.cell_gap,
            },
        );
    }

    // --- network-side event handling -----------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn xmit_app(
        &mut self,
        t: SimTime,
        src: usize,
        dst: usize,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        data: Option<Arc<Vec<u64>>>,
        cause: u64,
    ) {
        let span = self.open_span(t, cause, cni_trace::SPAN_MSG, 0xA0, src, dst, len as usize);
        if self.injector.is_some() {
            let wire = WireMsg::App {
                src,
                dst,
                len,
                page,
                cacheable,
                data,
            };
            self.queue_reliable(t, src, dst, wire, span);
            return;
        }
        let cells = self.fabric.segmenter().cell_count(len as usize);
        let tx = self.nics[src].transmit(
            t,
            &TxRequest {
                len: len as usize,
                cells,
                page,
                cacheable,
                dirty_lines: 0,
                origin: TxOrigin::Board,
            },
        );
        self.emit_send(
            src,
            SendIntent::App {
                src,
                dst,
                len,
                page,
                cacheable,
                data,
                span,
                now: t,
                host_done: tx.host_done,
                wire_start: tx.wire_start,
                cell_gap: tx.cell_gap,
            },
        );
    }

    // --- reliable-delivery layer (active only under a fault plan) ------------

    /// The `src -> dst` go-back-N transmit channel, materialised on first
    /// use. Access is always by key — channel state never depends on what
    /// other channels exist — so lazy creation is timing-neutral and a
    /// lossless run allocates nothing here.
    fn chan_tx(&mut self, src: usize, dst: usize) -> &mut ChanTx {
        let rto0 = self.rel_rto0;
        self.rel_tx[src]
            .entry(dst as u32)
            .or_insert_with(|| ChanTx::new(rto0))
    }

    /// The `dst <- src` receive channel, materialised on first use.
    fn chan_rx(&mut self, dst: usize, src: usize) -> &mut ChanRx {
        self.rel_rx[dst]
            .entry(src as u32)
            .or_insert(ChanRx { expected: 0 })
    }

    /// Hand a logical message to the `src -> dst` go-back-N channel: send
    /// it immediately if the window has room, park it otherwise. `span`
    /// is the message span every fragment carries; each wire attempt
    /// opens a frame span under it.
    fn queue_reliable(&mut self, now: SimTime, src: usize, dst: usize, wire: WireMsg, span: u64) {
        if let WireMsg::Proto(msg) = &wire {
            let kind = msg.payload.kind();
            self.emit_send(src, SendIntent::Stat(StatDelta::ProtoMsg { kind }));
        }
        let total = wire_len(&wire).max(1);
        let fmax = self.cfg.faults.max_frame_bytes as usize;
        let nfrags = total.div_ceil(fmax) as u32;
        let cap = self.cfg.faults.window as usize;
        let wire = Arc::new(wire);
        let mut armed = false;
        for i in 0..nfrags {
            let bytes = if i + 1 < nfrags {
                fmax
            } else {
                total - fmax * (nfrags as usize - 1)
            } as u32;
            let frag = Frag {
                wire: wire.clone(),
                frag: i,
                nfrags,
                bytes,
                span,
            };
            let ch = self.chan_tx(src, dst);
            if ch.window.len() >= cap {
                ch.pending.push_back(frag);
                continue;
            }
            let seq = ch.next_seq;
            ch.next_seq += 1;
            let was_empty = ch.window.is_empty();
            let fspan = self.send_frame(now, src, dst, seq, &frag, now, span);
            let ch = self.chan_tx(src, dst);
            ch.window.push_back(InFlight {
                seq,
                frag: frag.clone(),
                attempts: 0,
                sent_at: now,
                span: fspan,
            });
            if was_empty && !armed {
                self.arm_timer(now, src, dst);
                armed = true;
            }
        }
    }

    /// Transmit one data frame: build its byte image (header, sequence
    /// number, zero fill), push it through the NIC, and emit the
    /// fabric-facing half as a [`SendIntent::Frame`] (which draws the
    /// injector fates and schedules the receive event if the end-of-PDU
    /// cell survives). `sent_at` is the fragment's *first* transmission
    /// time, carried to the receiver for one-way latency accounting.
    /// Opens a frame span under `parent` (the message span on a first
    /// attempt, the first attempt's frame span on a retransmission) and
    /// returns it.
    #[allow(clippy::too_many_arguments)]
    fn send_frame(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        seq: u64,
        frag: &Frag,
        sent_at: SimTime,
        parent: u64,
    ) -> u64 {
        let (header, page, cacheable) = match &*frag.wire {
            WireMsg::Proto(msg) => (
                msg.payload.header_bytes(msg.src),
                msg.payload.page_payload().map(|p| p.0 as u64),
                msg.payload.cacheable(),
            ),
            WireMsg::App {
                src: asrc,
                page,
                cacheable,
                ..
            } => {
                let mut h = [0u8; 8];
                h[0] = 0xA0;
                h[1] = *asrc as u8;
                (h, *page, *cacheable)
            }
        };
        // The host DMA / Message-Cache interaction belongs to the message,
        // not to each fragment: later fragments ship board-resident bytes.
        let (page, cacheable) = if frag.frag == 0 {
            (page, cacheable)
        } else {
            (None, false)
        };
        let bytes = frag.bytes as usize;
        // Only the first 16 bytes of a frame carry information (header +
        // little-endian sequence number); the rest is zero fill that the
        // segmenter materialises directly into the PDU image, so a
        // retransmission attempt no longer allocates and copies a
        // frame-sized scratch vector.
        let mut prefix = [0u8; 16];
        let hn = header.len().min(bytes);
        prefix[..hn].copy_from_slice(&header[..hn]);
        let end = bytes.min(16);
        if end > 8 {
            prefix[8..end].copy_from_slice(&seq.to_le_bytes()[..end - 8]);
        }
        let fspan = self.open_span(
            now,
            parent,
            cni_trace::SPAN_FRAME,
            header[0],
            src,
            dst,
            bytes,
        );
        let cells_n = self.fabric.segmenter().cell_count(bytes);
        let tx = self.nics[src].transmit(
            now,
            &TxRequest {
                len: bytes,
                cells: cells_n,
                page,
                cacheable,
                dirty_lines: 0,
                origin: TxOrigin::Board,
            },
        );
        self.emit_send(
            src,
            SendIntent::Frame {
                src,
                dst,
                seq,
                frag: frag.clone(),
                sent_at,
                prefix,
                prefix_len: end as u8,
                bytes: bytes as u32,
                span: fspan,
                now,
                host_done: tx.host_done,
                wire_start: tx.wire_start,
                cell_gap: tx.cell_gap,
            },
        );
        fspan
    }

    /// Restart the `src -> dst` retransmission timer (invalidating any
    /// previously armed one via the generation counter).
    fn arm_timer(&mut self, now: SimTime, src: usize, dst: usize) {
        let ch = self.chan_tx(src, dst);
        ch.timer_gen += 1;
        let (gen, rto, seq) = (ch.timer_gen, ch.rto, ch.base);
        self.sched(src, now + rto, Ev::RxmitTimer { src, dst, gen });
        self.trace.emit_at(
            now.as_ps(),
            src as u32,
            TraceEvent::RetransmitScheduled {
                seq,
                rto_ps: rto.as_ps(),
            },
        );
    }

    /// Invalidate the pending `src -> dst` timer (window fully acked).
    fn cancel_timer(&mut self, src: usize, dst: usize) {
        self.chan_tx(src, dst).timer_gen += 1;
    }

    /// Send a cumulative acknowledgement frame from `from` back to `to`:
    /// a real 16-byte PDU that itself crosses the faulty fabric. The ACK
    /// span is a child of `parent`, the frame span whose receipt (or
    /// rejection) provoked it.
    fn send_ack(&mut self, now: SimTime, from: usize, to: usize, ack: u64, parent: u64) {
        let mut image = [0u8; 16];
        image[0] = 0xF1;
        image[1] = from as u8;
        image[8..16].copy_from_slice(&ack.to_le_bytes());
        let aspan = self.open_span(now, parent, cni_trace::SPAN_ACK, 0xF1, from, to, 16);
        let tx = self.nics[from].transmit(
            now,
            &TxRequest {
                len: 16,
                cells: self.fabric.segmenter().cell_count(16),
                page: None,
                cacheable: false,
                dirty_lines: 0,
                origin: TxOrigin::Board,
            },
        );
        self.emit_send(
            from,
            SendIntent::Ack {
                from,
                to,
                ack,
                image,
                span: aspan,
                now,
                host_done: tx.host_done,
                wire_start: tx.wire_start,
                cell_gap: tx.cell_gap,
            },
        );
    }

    /// A data frame's surviving cells reached `dst`: reassemble and
    /// CRC-check them, suppress duplicates, admit in-order frames to the
    /// receive ring (drop-and-NAK when it is full) and dispatch the inner
    /// message exactly once. Every outcome is acknowledged — a corrupt or
    /// out-of-order frame re-acknowledges the current expectation, which
    /// doubles as a NAK for go-back-N.
    #[allow(clippy::too_many_arguments)]
    fn on_frame_rx(
        &mut self,
        t: SimTime,
        src: usize,
        dst: usize,
        seq: u64,
        cells: Vec<Cell>,
        span: u64,
        frag: Frag,
        sent_at: SimTime,
    ) {
        match self.nics[dst].ingest_frame(&cells) {
            Some(Ok(pdu)) => {
                // The frame's bytes are not consumed further (the typed
                // message rides in `Frag::wire`); hand the gather buffer
                // straight back to the NIC's pool.
                self.nics[dst].recycle_pdu(pdu);
            }
            Some(Err(_)) => {
                // The NIC counted the discard (and the CRC failure). The
                // frame span closes here: its lifecycle ended in
                // rejection, and the NAK it provokes is its child.
                self.close_span(t, dst as u32, span);
                let ack = self.chan_rx(dst, src).expected;
                self.send_ack(t, dst, src, ack, span);
                return;
            }
            // Unreachable in practice: FrameRx is only scheduled when the
            // end-of-PDU cell was delivered, which always completes a PDU.
            None => return,
        }
        self.close_span(t, dst as u32, span);
        let expected = self.chan_rx(dst, src).expected;
        if seq != expected {
            if seq < expected {
                self.emit_send(dst, SendIntent::Stat(StatDelta::Duplicate));
            }
            self.send_ack(t, dst, src, expected, span);
            return;
        }
        if frag.frag + 1 < frag.nfrags {
            // An interior fragment: accept and acknowledge it, but the
            // message dispatches only with its final fragment.
            self.chan_rx(dst, src).expected = seq + 1;
            self.send_ack(t, dst, src, seq + 1, span);
            return;
        }
        // Only whole messages occupy receive-ring slots.
        let ring = self.cfg.faults.rx_ring_frames;
        if ring > 0 && self.ring_used[dst] >= ring {
            self.emit_send(dst, SendIntent::Stat(StatDelta::RingOverflow));
            self.trace.emit_at(
                t.as_ps(),
                dst as u32,
                TraceEvent::RingOverflow {
                    channel: src as u32,
                },
            );
            self.send_ack(t, dst, src, expected, span);
            return;
        }
        self.ring_used[dst] += 1;
        self.ring_hw[dst] = self.ring_hw[dst].max(self.ring_used[dst]);
        self.chan_rx(dst, src).expected = seq + 1;
        // One-way latency measured from the final fragment's *first*
        // transmission.
        let kind = match &*frag.wire {
            WireMsg::Proto(msg) => msg.payload.kind(),
            WireMsg::App { .. } => 0xA0,
        };
        let li = if kind == 0xA0 {
            9
        } else {
            (kind - 0xD0) as usize
        };
        self.emit_send(
            dst,
            SendIntent::Stat(StatDelta::Latency {
                idx: li,
                us: (t - sent_at).as_ps() / 1000,
            }),
        );
        match (*frag.wire).clone() {
            WireMsg::Proto(msg) => self.arrive_proto(t, msg, frag.span),
            WireMsg::App {
                src: asrc,
                dst: adst,
                len,
                page,
                cacheable,
                data,
            } => self.arrive_app(t, adst, asrc, len, page, cacheable, data, frag.span),
        }
        // The frame occupies its ring slot until the NIC processor is done
        // handling it.
        let release = self.nics[dst].nic_busy_until().max(t);
        self.sched(dst, release, Ev::RingRelease { dst });
        self.send_ack(t, dst, src, seq + 1, span);
    }

    /// A (possibly corrupt) acknowledgement arrived back at sender `to`.
    fn on_ack_rx(
        &mut self,
        t: SimTime,
        to: usize,
        from: usize,
        ack: u64,
        cells: Vec<Cell>,
        span: u64,
    ) {
        match self.nics[to].ingest_frame(&cells) {
            Some(Ok(pdu)) => self.nics[to].recycle_pdu(pdu),
            // Corrupt ack: the NIC counted it; retransmission recovers.
            // The ACK span stays unclosed — like a dropped one, it never
            // took effect, and the unclosed count doubles as a loss
            // diagnostic.
            _ => return,
        }
        self.close_span(t, to as u32, span);
        let cap = self.cfg.faults.window as usize;
        let rto0 = SimTime::from_ps(self.cfg.faults.rto_base_ps);
        let ch = self.chan_tx(to, from);
        if ack > ch.base {
            while ch.base < ack {
                let acked = ch.window.pop_front();
                debug_assert!(acked.is_some(), "cumulative ack beyond the window");
                ch.base += 1;
            }
            ch.dup_acks = 0;
            ch.rto = rto0;
            // Admit parked frames into the freed window.
            let mut admitted = Vec::new();
            while ch.window.len() < cap {
                let Some(frag) = ch.pending.pop_front() else {
                    break;
                };
                let seq = ch.next_seq;
                ch.next_seq += 1;
                ch.window.push_back(InFlight {
                    seq,
                    frag: frag.clone(),
                    attempts: 0,
                    sent_at: t,
                    span: 0,
                });
                admitted.push((seq, frag));
            }
            let empty = ch.window.is_empty();
            for (seq, frag) in &admitted {
                let fspan = self.send_frame(t, to, from, *seq, frag, t, frag.span);
                if let Some(f) = self
                    .chan_tx(to, from)
                    .window
                    .iter_mut()
                    .find(|f| f.seq == *seq)
                {
                    f.span = fspan;
                }
            }
            if empty {
                self.cancel_timer(to, from);
            } else {
                self.arm_timer(t, to, from);
            }
        } else {
            ch.dup_acks += 1;
            if ch.dup_acks >= 2 && !ch.window.is_empty() {
                ch.dup_acks = 0;
                self.emit_send(to, SendIntent::Stat(StatDelta::FastRetransmit));
                // Resend only the frame the receiver is missing. Resending
                // the whole window here is unstable: every duplicate frame
                // provokes another duplicate ack, so a W-frame window turns
                // 2 dup-acks into W more — an ack storm with gain W/2. The
                // full go-back-N resend belongs to the paced timeout path.
                self.resend_front(t, to, from);
            }
        }
    }

    /// Fast-retransmit the oldest unacknowledged frame on `src -> dst`
    /// (the one the duplicate acks say is missing) and restart the timer.
    fn resend_front(&mut self, t: SimTime, src: usize, dst: usize) {
        let ch = self.chan_tx(src, dst);
        let Some(f) = ch.window.front_mut() else {
            return;
        };
        f.attempts += 1;
        let (seq, frag, attempt, sent_at, first_span) =
            (f.seq, f.frag.clone(), f.attempts, f.sent_at, f.span);
        if attempt >= 10_000 {
            // cni-lint: allow(panic-path) -- deliberate livelock detector: 10k resends of one seq means the retransmit logic is broken and the run must die loudly, not spin forever
            panic!(
                "reliable delivery cannot make progress: {src}->{dst} seq {seq} resent {attempt} times \
                 (base {}, next {}, window {}, pending {})",
                ch.base,
                ch.next_seq,
                ch.window.len(),
                ch.pending.len(),
            );
        }
        self.emit_send(src, SendIntent::Stat(StatDelta::Retransmit));
        self.trace.emit_at(
            t.as_ps(),
            src as u32,
            TraceEvent::RetransmitFired { seq, attempt },
        );
        // The retransmission's span is a child of the first attempt's, so
        // every wire attempt hangs off the originating send.
        self.send_frame(t, src, dst, seq, &frag, sent_at, first_span);
        self.arm_timer(t, src, dst);
    }

    /// Resend every unacknowledged frame on the `src -> dst` channel
    /// (go-back-N recovers the whole window) and restart the timer.
    fn resend_window(&mut self, t: SimTime, src: usize, dst: usize) {
        let frames: Vec<(u64, Frag, u32, SimTime, u64)> = self
            .chan_tx(src, dst)
            .window
            .iter_mut()
            .map(|f| {
                f.attempts += 1;
                assert!(
                    f.attempts < 10_000,
                    "reliable delivery cannot make progress (seq {} resent {} times)",
                    f.seq,
                    f.attempts
                );
                (f.seq, f.frag.clone(), f.attempts, f.sent_at, f.span)
            })
            .collect();
        for (seq, frag, attempt, sent_at, first_span) in &frames {
            self.emit_send(src, SendIntent::Stat(StatDelta::Retransmit));
            self.trace.emit_at(
                t.as_ps(),
                src as u32,
                TraceEvent::RetransmitFired {
                    seq: *seq,
                    attempt: *attempt,
                },
            );
            self.send_frame(t, src, dst, *seq, frag, *sent_at, *first_span);
        }
        self.arm_timer(t, src, dst);
    }

    /// The `src -> dst` retransmission timer fired: if it is still current
    /// and frames are outstanding, back the timeout off exponentially and
    /// resend the window.
    fn on_rxmit_timer(&mut self, t: SimTime, src: usize, dst: usize, gen: u64) {
        let cap_ps = self.cfg.faults.rto_cap_ps;
        let ch = self.chan_tx(src, dst);
        if gen != ch.timer_gen || ch.window.is_empty() {
            return;
        }
        ch.rto = SimTime::from_ps((ch.rto.as_ps() * 2).min(cap_ps));
        self.emit_send(src, SendIntent::Stat(StatDelta::Timeout));
        self.resend_window(t, src, dst);
    }

    fn arrive_proto(&mut self, t: SimTime, msg: Msg, span: u64) {
        let dst = msg.dst.0 as usize;
        if let Some(j) = &mut self.journal {
            j[dst].push(JEntry::Message(msg.clone()));
        }
        let bytes = msg.payload.wire_bytes();
        let cells = self.fabric.segmenter().cell_count(bytes);
        let header = msg.payload.header_bytes(msg.src);
        let rx = self.nics[dst].receive(t, cells, &header);
        self.record_rx_span(dst as u32, t, span, &rx);
        match (self.cfg.nic_kind, rx.disposition) {
            (NicKind::Cni, RxDisposition::Handler(h)) => {
                debug_assert_eq!(h, DSM_HANDLER);
                let info = delivery_info(&msg.payload);
                let kind = msg.payload.kind();
                let res = self.dsm[dst].on_message(msg);
                // NIC-resident collectives (generalised AIH, after the
                // Quadrics/Myrinet NIC-collective protocol of
                // cs/0402027): barrier combining and release / lock-chain
                // forwarding execute as dedicated NIC-processor steps
                // instead of a full protocol dispatch. Notice folding
                // still costs per notice — the combine carries the write
                // notices with it.
                let cycles = if self.cfg.collectives {
                    match kind {
                        // BarrierArrive: fold a child into the combine.
                        0xD3 => {
                            self.nics[dst].record_collective(1, 0);
                            self.cfg.nic.coll_combine_cycles
                                + self.cfg.costs.per_notice_cycles * res.work.notices
                        }
                        // AcquireFwd / BarrierRelease: forward down the
                        // chain or tree.
                        0xD1 | 0xD4 => {
                            self.nics[dst].record_collective(0, 1);
                            self.cfg.nic.coll_forward_cycles
                                + self.cfg.costs.per_notice_cycles * res.work.notices
                        }
                        _ => self.work_cycles_nic(&res.work),
                    }
                } else {
                    self.work_cycles_nic(&res.work)
                };
                let cycles = self.jittered(dst, cycles);
                let t_done = self.nics[dst].run_handler(rx.ready_at, cycles);
                // AIH replies leave straight from the board, as children
                // of the message that provoked them.
                for m in res.out {
                    self.transport(dst, m, TxOrigin::Board, t_done, span);
                }
                debug_assert!(res.flushed.is_empty(), "AIH handling never flushes");
                if res.wakeup.is_none() {
                    // Handled entirely on the board: the span closes when
                    // the AIH finishes.
                    self.close_span(t_done, dst as u32, span);
                } else {
                    let (len, page, cacheable) = info;
                    // The header cache bit marks pages "likely to migrate
                    // from one host to another" (§2.2): a requester that
                    // writes the page (now, or in earlier intervals — the
                    // read-modify-write critical sections of Water and
                    // Cholesky fault as reads first) is the page's next
                    // sender. A pure reader (a Jacobi boundary row) is
                    // not, and caching its fetches would only pollute the
                    // buffer map.
                    let wants_write = self.cpus[dst].blocked_kind == 1
                        && self.cpus[dst].blocked_detail & 0x1_0000_0000 != 0;
                    let migratory = wants_write
                        || page
                            .map(|pg| self.dsm[dst].has_written(PageId(pg as u32)))
                            .unwrap_or(false);
                    let cacheable = cacheable && migratory;
                    let d = self.nics[dst].deliver_to_host(t_done, len, page, cacheable, true);
                    let ov = self.host(d.host_cycles);
                    self.sched(
                        dst,
                        d.at + ov,
                        Ev::Wake {
                            p: dst,
                            overhead: ov,
                        },
                    );
                    // The wakeup delivers the effect: close the span and
                    // make it the parent of whatever the woken processor
                    // sends next.
                    self.cpus[dst].last_wake_span = span;
                    self.close_span(d.at + ov, dst as u32, span);
                }
            }
            (NicKind::Standard, RxDisposition::HostBound) => {
                // DMA the whole message to host memory, interrupt, run the
                // protocol on the host CPU. The host serialises interrupt
                // handling: this arrival queues behind any handler still
                // running.
                let blocked = self.cpus[dst].blocked_at.is_some();
                let d = self.nics[dst].deliver_to_host(rx.ready_at, bytes, None, false, blocked);
                let res = self.dsm[dst].on_message(msg);
                let work = self.work_cycles(&res.work);
                // The handler occupies the CPU (and blocks further
                // interrupts) for the occupancy part; the rest of the
                // interrupt cost is pipeline/cache disruption charged to
                // whatever was running.
                let n = &self.cfg.nic;
                let occupancy = self.jittered(
                    dst,
                    n.interrupt_occupancy_cycles + n.kernel_recv_cycles + work,
                );
                let full = d.host_cycles + work;
                let start = d.at.max(self.cpus[dst].async_busy);
                let mut t_occ = start + self.host(occupancy);
                debug_assert!(res.flushed.is_empty());
                for m in res.out {
                    t_occ += self.host(self.cfg.nic.kernel_send_cycles);
                    self.sched(
                        dst,
                        t_occ,
                        Ev::Xmit {
                            src: dst,
                            msg: m,
                            cause: span,
                        },
                    );
                }
                self.cpus[dst].async_busy = t_occ;
                if res.wakeup.is_some() {
                    let wake_t = t_occ.max(start + self.host(full));
                    self.sched(
                        dst,
                        wake_t,
                        Ev::Wake {
                            p: dst,
                            overhead: wake_t - start,
                        },
                    );
                    self.cpus[dst].last_wake_span = span;
                    self.close_span(wake_t, dst as u32, span);
                } else {
                    // Stolen from whatever the host was doing.
                    let stolen = self.host(full).max(t_occ - start);
                    self.cpus[dst].stolen += stolen;
                    self.close_span(start + stolen, dst as u32, span);
                }
            }
            (NicKind::Cni, RxDisposition::HostBound) => {
                // AIH disabled (ablation): the protocol runs on the host
                // behind interrupts, but sends still use the ADC path.
                let blocked = self.cpus[dst].blocked_at.is_some();
                let d = self.nics[dst].deliver_to_host(rx.ready_at, bytes, None, false, blocked);
                let res = self.dsm[dst].on_message(msg);
                let work = self.work_cycles(&res.work);
                let n = &self.cfg.nic;
                let occupancy = self.jittered(dst, n.interrupt_occupancy_cycles + work);
                let full = d.host_cycles + work;
                let start = d.at.max(self.cpus[dst].async_busy);
                let mut t_occ = start + self.host(occupancy);
                for m in res.out {
                    t_occ += self.host(self.cfg.nic.adc_enqueue_cycles);
                    self.sched(
                        dst,
                        t_occ,
                        Ev::Xmit {
                            src: dst,
                            msg: m,
                            cause: span,
                        },
                    );
                }
                self.cpus[dst].async_busy = t_occ;
                if res.wakeup.is_some() {
                    let wake_t = t_occ.max(start + self.host(full));
                    self.sched(
                        dst,
                        wake_t,
                        Ev::Wake {
                            p: dst,
                            overhead: wake_t - start,
                        },
                    );
                    self.cpus[dst].last_wake_span = span;
                    self.close_span(wake_t, dst as u32, span);
                } else {
                    let stolen = self.host(full).max(t_occ - start);
                    self.cpus[dst].stolen += stolen;
                    self.close_span(start + stolen, dst as u32, span);
                }
            }
            (kind, disp) => {
                // cni-lint: allow(panic-path) -- the (NicKind, dispatch) pairing is decided by this engine when the message was sent, not parsed off the wire; a mismatch is an engine bug
                panic!("protocol message mis-dispatched: {kind:?} / {disp:?}")
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn arrive_app(
        &mut self,
        t: SimTime,
        dst: usize,
        src: usize,
        len: u32,
        page: Option<u64>,
        cacheable: bool,
        data: Option<Arc<Vec<u64>>>,
        span: u64,
    ) {
        let cells = self.fabric.segmenter().cell_count(len as usize);
        // Application messages carry an app header PATHFINDER has no AIH
        // pattern for: they demultiplex to the host channel.
        let rx = self.nics[dst].receive(t, cells, &[0xA0, src as u8]);
        self.record_rx_span(dst as u32, t, span, &rx);
        debug_assert_eq!(rx.disposition, RxDisposition::HostBound);
        let waiting = self.cpus[dst].waiting_recv;
        let d = self.nics[dst].deliver_to_host(rx.ready_at, len as usize, page, cacheable, waiting);
        let ov = self.host(d.host_cycles);
        self.cpus[dst].inbox.push_back((src as u32, len, data));
        if waiting {
            self.cpus[dst].waiting_recv = false;
            // cni-lint: allow(panic-path) -- the inbox was pushed two lines up; pop_front on it cannot fail and the value is local engine state
            let (s, l, data) = self.cpus[dst].inbox.pop_front().expect("just pushed");
            self.cpus[dst].pending_reply = Some(Reply::Received {
                src: s,
                len: l,
                data,
            });
            self.sched(
                dst,
                d.at + ov,
                Ev::Wake {
                    p: dst,
                    overhead: ov,
                },
            );
            self.cpus[dst].last_wake_span = span;
            self.close_span(d.at + ov, dst as u32, span);
        } else {
            self.cpus[dst].stolen += ov;
            // The payload is in host memory once the delivery DMA ends;
            // the receiver just has not polled for it yet.
            self.close_span(d.at, dst as u32, span);
        }
    }

    fn wake(&mut self, t: SimTime, p: usize, overhead: SimTime) {
        let (reply, wait_kind, wait_raw) = {
            let cpu = &mut self.cpus[p];
            let blocked_at = cpu
                .blocked_at
                .take()
                .expect("wake of a processor that is not blocked");
            let raw = t.saturating_sub(blocked_at);
            if raw > SimTime::from_ms(2) && std::env::var_os("CNI_WAIT_DUMP").is_some() {
                eprintln!(
                    "[p{p}] kind={} detail={:#x} wait={} at t={}",
                    cpu.blocked_kind, cpu.blocked_detail, raw, t
                );
            }
            let stolen = std::mem::take(&mut cpu.stolen);
            let ov = (overhead + stolen).min(raw);
            cpu.delay += raw - ov;
            cpu.overhead += ov;
            cpu.clock = cpu.clock.max(t);
            (
                cpu.pending_reply.take().unwrap_or(Reply::Ok),
                cpu.blocked_kind.min(3),
                raw,
            )
        };
        self.emit_send(
            p,
            SendIntent::Stat(StatDelta::Wait {
                kind: wait_kind,
                raw: wait_raw,
            }),
        );
        self.resume(p, reply);
    }
}

/// What part of a wakeup-carrying protocol message must be DMAed to host
/// memory on the CNI (the AIH keeps the rest on the board):
/// (bytes, destination page for receive caching, cache bit).
fn delivery_info(p: &Payload) -> (usize, Option<u64>, bool) {
    match p {
        Payload::PageResp { page, data, .. } => (data.len() * 8, Some(page.0 as u64), true),
        Payload::DiffResp { diffs, .. } => (
            diffs.iter().map(|d| d.wire_bytes()).sum::<usize>().max(16),
            None,
            false,
        ),
        // Grants and barrier releases update host-side page protections;
        // a small descriptor write suffices.
        Payload::AcquireGrant { .. } | Payload::BarrierRelease { .. } => (64, None, false),
        _ => (0, None, false),
    }
}
