//! The [`cni_sim::pdes`] driver for [`World`]: shards the engine per
//! node and runs it on the conservative lookahead-based parallel
//! executor (DESIGN.md §4.11).
//!
//! The split follows the engine's own structure. Every event acts on
//! behalf of exactly one node (its *shard*), and its dispatch touches
//! only that node's state: its CPU and co-thread, NIC, DSM protocol
//! state, reliability channels and jitter stream. Everything shared —
//! the fabric's link registers, the fault injector, global counters,
//! the event queue itself — is reached only through [`SendIntent`]s
//! that [`World::commit_send`] applies inside the executor's serial
//! replay barrier, in exact serial dispatch order. The lookahead is the
//! fabric's [`min_remote_latency`](cni_atm::AtmConfig::min_remote_latency):
//! no cross-node effect can land earlier than one switch traversal away,
//! so events inside a window can never affect each other across shards.
//!
//! Determinism is therefore structural, not accidental: the serial
//! engine and the replay barrier run the *same* commit code in the
//! *same* order with the *same* sequence-number allocation, so every
//! RunReport, snapshot and histogram is byte-identical at any worker
//! count.

use crate::world::{Ev, PdesOut, PdesState, SendIntent, World};
use cni_sim::pdes::{Driver, Executor, Outbox};
use cni_sim::SimTime;

/// Borrow of a [`World`] shaped for the executor.
///
/// The raw pointer (instead of `&mut World`) is what lets `dispatch`
/// reach node-owned state from worker threads while the coordinating
/// thread retains the driver. The safety argument is the shard contract:
/// concurrent `dispatch` calls are for distinct shards and, per the
/// [`Driver`] safety contract (checked mechanically by cni-lint's C1
/// rule), only touch disjoint per-node state; every other trait method
/// is called serially by the coordinator.
pub(crate) struct WorldDriver {
    pub(crate) world: *mut World,
}

// SAFETY: the executor shares `&WorldDriver` across its workers only to
// call `dispatch`, and the Driver safety contract restricts each such
// call to its own shard's disjoint state (see the struct docs).
unsafe impl Sync for WorldDriver {}

// The event partition below routes every event to the node whose state
// its handler mutates, and cni-lint's C1 shard-isolation rule walks the
// dispatch call graph to verify the handlers honour that.
// SAFETY: dispatch touches only state owned by `shard` (see above).
unsafe impl Driver for WorldDriver {
    type Ev = Ev;
    type Intent = SendIntent;

    fn shards(&self) -> usize {
        // SAFETY: called serially from the coordinating thread.
        unsafe { (*self.world).cfg.procs }
    }

    fn shard_of(&self, ev: &Ev) -> usize {
        match ev {
            Ev::Resume(p) | Ev::Wake { p, .. } => *p,
            Ev::Xmit { src, .. } | Ev::XmitApp { src, .. } | Ev::RxmitTimer { src, .. } => *src,
            Ev::Proto { msg, .. } => msg.dst.0 as usize,
            Ev::App { dst, .. } | Ev::FrameRx { dst, .. } | Ev::RingRelease { dst } => *dst,
            Ev::AckRx { to, .. } => *to,
            // Metrics ticks exist only on traced runs, which never take
            // the parallel engine (`World::pdes_eligible`).
            Ev::MetricsTick => unreachable!("metrics ticks are serial-only"),
        }
    }

    fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, u64, Ev)> {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).q.pop_if_before(horizon) }
    }

    fn peek_time(&self) -> Option<SimTime> {
        // SAFETY: called serially from the coordinating thread.
        unsafe { (*self.world).q.peek_time() }
    }

    fn alloc_seq(&mut self) -> u64 {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).q.alloc_seq() }
    }

    fn insert_with_seq(&mut self, at: SimTime, seq: u64, ev: Ev) {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).q.insert_with_seq(at, seq, ev) }
    }

    fn advance_now(&mut self, t: SimTime) {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).q.advance_now(t) }
    }

    fn dispatch(&self, shard: usize, t: SimTime, ev: Ev, out: &mut Outbox<Ev, SendIntent>) {
        // The Driver contract guarantees concurrent calls use distinct
        // `shard` values, and `World::dispatch` under `pdes.active`
        // touches only shard-owned state (plus `pdes.out[shard]`, also
        // owned by this call) — the C1 lint rule checks this property.
        // SAFETY: shard isolation, as above, makes this deref sound.
        let w = unsafe { &mut *self.world };
        w.dispatch(t, ev);
        for item in std::mem::take(&mut w.pdes.out[shard]) {
            match item {
                PdesOut::Local(at, ev) => out.local(at, ev),
                PdesOut::Send(intent) => out.send(intent),
            }
        }
    }

    fn commit(&mut self, _t: SimTime, intent: SendIntent) {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).commit_send(intent) }
    }

    fn window_begin(&mut self, horizon: SimTime) {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).pdes.horizon = horizon }
    }

    fn window_end(&mut self, dispatched: u64) {
        // SAFETY: `&mut self` — called serially from the coordinator.
        unsafe { (*self.world).events_dispatched += dispatched }
    }
}

impl World {
    /// Drive this run on the parallel executor. Entered only through
    /// [`World::run_loop`] when the run is eligible; produces the exact
    /// byte sequence the serial loop would.
    pub(crate) fn run_pdes(&mut self) {
        let lookahead = self.cfg.atm.min_remote_latency();
        let workers = self.cfg.engine_workers.min(self.cfg.procs);
        self.pdes.out = (0..self.cfg.procs).map(|_| Vec::new()).collect();
        self.pdes.active = true;
        let exec = Executor::new(workers, lookahead);
        let mut driver = WorldDriver {
            world: self as *mut World,
        };
        exec.run(&mut driver);
        self.pdes = PdesState::new();
    }
}
