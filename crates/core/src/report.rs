//! Run reports: the numbers the paper's tables and figures are made of.

use cni_dsm::DsmStats;
use cni_faults::FaultStats;
use cni_nic::msgcache::MsgCacheStats;
use cni_nic::stats::NicStats;
use cni_sim::{Clock, Histogram, SimTime};
use cni_trace::TraceSummary;
use serde::{Deserialize, Serialize};

/// Schema version of [`RunReport`]'s serialized form. Bumped whenever a
/// field is added, removed or changes meaning, so archived `--json` output
/// is self-describing.
///
/// History:
/// * **2** — first versioned schema: added `version` and the per-kind
///   `latency` summaries.
/// * **3** — added the `faults` record (fault injection and
///   retransmission counters).
/// * **4** — added `latency_hist`, the raw per-kind latency histograms,
///   so batch runs can merge distributions across runs
///   (`cni-batch`'s `BatchReport`).
/// * **5** — added `stages`, the span-derived per-message stage
///   decomposition (`--obs` runs), and the span accounting counters
///   inside `trace` (`spans_opened` / `spans_closed` / `span_drops`).
/// * **6** — widened the per-NIC stats with the collective offload
///   counters (`coll_combines` / `coll_forwards`), added when barrier
///   combining moved onto the NIC processor.
///
/// Reports from any version in [`OLDEST_PARSEABLE_VERSION`]`..=`
/// [`REPORT_VERSION`] still parse — see [`RunReport::parse_json`].
pub const REPORT_VERSION: u32 = 6;

/// The oldest archived report schema [`RunReport::parse_json`] accepts.
pub const OLDEST_PARSEABLE_VERSION: u32 = 2;

/// Raw one-way latency histogram of one wire message kind, in
/// nanoseconds (the unit the engine records; [`KindLatency`] divides by
/// 10³ for its microsecond summaries). Unlike the summarised
/// [`KindLatency`], histograms are mergeable across runs (bucket-wise),
/// which is what batch aggregation needs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KindHistogram {
    /// The wire kind byte (`0xD0..=0xD8` protocol, `0xA0` application).
    pub kind: u8,
    /// Log-2 bucketed latency distribution (values in whole
    /// nanoseconds). Empty-histogram percentiles are 0 by
    /// [`Histogram::percentile`]'s documented contract.
    pub hist: Histogram,
}

/// Per-processor time breakdown, in virtual time.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ProcTimes {
    /// Application computation.
    pub compute: SimTime,
    /// Synchronisation overhead: cycles the CPU spent executing protocol,
    /// kernel, interrupt, poll and flush code.
    pub overhead: SimTime,
    /// Synchronisation delay: time stalled waiting for remote pages, locks
    /// and barriers.
    pub delay: SimTime,
    /// Completion time of this processor.
    pub total: SimTime,
}

/// Latency distribution of one wire message kind over a run: from the
/// moment the sender's NIC takes the message to the last cell's arrival at
/// the receiving board.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct KindLatency {
    /// The wire kind byte (`0xD0..=0xD8` protocol, `0xA0` application).
    pub kind: u8,
    /// Messages of this kind transported.
    pub count: u64,
    /// Mean one-way latency in microseconds.
    pub mean_us: f64,
    /// Median (50th percentile) one-way latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile one-way latency in microseconds.
    pub p99_us: f64,
}

/// Human-readable name of a wire kind byte (see [`KindLatency::kind`]).
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        0xD0 => "acquire-req",
        0xD1 => "acquire-fwd",
        0xD2 => "acquire-grant",
        0xD3 => "barrier-arrive",
        0xD4 => "barrier-release",
        0xD5 => "page-req",
        0xD6 => "page-resp",
        0xD7 => "diff-req",
        0xD8 => "diff-resp",
        0xA0 => "app",
        _ => "unknown",
    }
}

/// Everything measured in one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version of this report ([`REPORT_VERSION`]).
    pub version: u32,
    /// Completion time of the whole run (max over processors).
    pub wall: SimTime,
    /// Per-processor breakdowns.
    pub procs: Vec<ProcTimes>,
    /// Per-node NIC counters.
    pub nic: Vec<NicStats>,
    /// Per-node Message Cache counters (zeroes for standard NICs).
    pub msg_cache: Vec<MsgCacheStats>,
    /// Per-node protocol counters.
    pub dsm: Vec<DsmStats>,
    /// Protocol messages transported.
    pub messages: u64,
    /// Protocol messages by kind: [acquire-req, acquire-fwd, grant,
    /// barrier-arrive, barrier-release, page-req, page-resp, diff-req,
    /// diff-resp].
    pub msg_kinds: [u64; 9],
    /// One-way wire latency distribution per message kind (kinds that
    /// never appeared are omitted).
    pub latency: Vec<KindLatency>,
    /// Raw per-kind latency histograms behind `latency` (schema ≥ 4;
    /// empty when parsed from an older archive). These are what
    /// `cni-batch` merges across the runs of a batch.
    pub latency_hist: Vec<KindHistogram>,
    /// Trace-buffer accounting when tracing was enabled, `None` otherwise.
    pub trace: Option<TraceSummary>,
    /// Fault-injection and reliability-protocol counters (all zero when
    /// the run used a zero fault plan). Schema ≥ 3; zeroes when parsed
    /// from a version-2 archive.
    pub faults: FaultStats,
    /// Span-derived per-message stage decomposition, present when the
    /// run was executed with observability enabled (`cni-run --obs`).
    /// Schema ≥ 5; `None` when parsed from an older archive.
    pub stages: Option<cni_obs::ObsReport>,
}

impl RunReport {
    /// Parse a serialized report of any supported schema version.
    ///
    /// * Versions [`OLDEST_PARSEABLE_VERSION`]`..=`[`REPORT_VERSION`]
    ///   parse; fields a version predates are filled with their
    ///   documented defaults (`faults` zeroed below 3, `latency_hist`
    ///   empty below 4). The parsed struct keeps the archive's original
    ///   `version` value.
    /// * A missing, non-integer, too-old or too-new `version` field is
    ///   rejected with a descriptive error — a report written by a future
    ///   major schema must not be silently misread.
    pub fn parse_json(s: &str) -> Result<RunReport, String> {
        let mut v: serde_json::Value =
            serde_json::from_str(s).map_err(|e| format!("malformed report JSON: {e}"))?;
        let obj = v
            .as_object_mut()
            .ok_or_else(|| "report JSON is not an object".to_string())?;
        let version = obj
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| "report has no integer `version` field".to_string())?;
        if version < OLDEST_PARSEABLE_VERSION as u64 {
            return Err(format!(
                "report schema version {version} predates the oldest supported \
                 version {OLDEST_PARSEABLE_VERSION}"
            ));
        }
        if version > REPORT_VERSION as u64 {
            return Err(format!(
                "report schema version {version} is newer than this build \
                 understands (max {REPORT_VERSION})"
            ));
        }
        // Migrate: materialise fields the archive's schema predates.
        if version < 3 && !obj.contains_key("faults") {
            obj.insert("faults".to_string(), FaultStats::default().to_value());
        }
        if version < 4 && !obj.contains_key("latency_hist") {
            obj.insert(
                "latency_hist".to_string(),
                Vec::<KindHistogram>::new().to_value(),
            );
        }
        if version < 5 {
            if !obj.contains_key("stages") {
                obj.insert("stages".to_string(), serde_json::Value::Null);
            }
            // v5 also widened `TraceSummary` with the span accounting
            // counters; a pre-v5 archive's (non-null) trace object lacks
            // them and would fail strict field deserialization.
            if let Some(mut t) = obj.remove("trace") {
                if let Some(tm) = t.as_object_mut() {
                    for key in ["spans_opened", "spans_closed", "span_drops"] {
                        if !tm.contains_key(key) {
                            tm.insert(key.to_string(), 0u64.to_value());
                        }
                    }
                }
                obj.insert("trace".to_string(), t);
            }
        }
        if version < 6 {
            // v6 widened the per-NIC stats with the collective offload
            // counters; older archives never offloaded, so zero is exact.
            if let Some(mut nic) = obj.remove("nic") {
                if let Some(entries) = nic.as_array_mut() {
                    for entry in entries.iter_mut() {
                        if let Some(em) = entry.as_object_mut() {
                            for key in ["coll_combines", "coll_forwards"] {
                                if !em.contains_key(key) {
                                    em.insert(key.to_string(), 0u64.to_value());
                                }
                            }
                        }
                    }
                }
                obj.insert("nic".to_string(), nic);
            }
        }
        RunReport::from_value(&v).map_err(|e| format!("invalid v{version} report: {e}"))
    }
    /// The paper's *network cache hit ratio*, aggregated across nodes:
    /// board-resident transmissions over page-backed transmissions.
    pub fn hit_ratio(&self) -> f64 {
        let hits: u64 = self.nic.iter().map(|n| n.tx_cache_hits).sum();
        let lookups: u64 = self.nic.iter().map(|n| n.tx_page_lookups).sum();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Mean per-processor breakdown (what Tables 2–4 report).
    pub fn mean_breakdown(&self) -> ProcTimes {
        let n = self.procs.len().max(1) as u64;
        let mut acc = ProcTimes::default();
        for p in &self.procs {
            acc.compute += p.compute;
            acc.overhead += p.overhead;
            acc.delay += p.delay;
            acc.total += p.total;
        }
        ProcTimes {
            compute: SimTime::from_ps(acc.compute.as_ps() / n),
            overhead: SimTime::from_ps(acc.overhead.as_ps() / n),
            delay: SimTime::from_ps(acc.delay.as_ps() / n),
            total: SimTime::from_ps(acc.total.as_ps() / n),
        }
    }

    /// Convert a time into units of 10⁹ CPU cycles of `clock` (the unit of
    /// Tables 2–4).
    pub fn gcycles(t: SimTime, clock: Clock) -> f64 {
        clock.cycles_in(t) as f64 / 1e9
    }

    /// Total host interrupts taken across the cluster.
    pub fn interrupts(&self) -> u64 {
        self.nic.iter().map(|n| n.interrupts).sum()
    }

    /// Total bytes DMAed host→board across the cluster.
    pub fn dma_bytes_to_board(&self) -> u64 {
        self.nic.iter().map(|n| n.dma_bytes_to_board).sum()
    }

    /// Full-page protocol transfers (the Message Cache's traffic).
    pub fn page_transfers(&self) -> u64 {
        self.msg_kinds[6]
    }

    /// Diff transfers (concurrent-write-sharing merges).
    pub fn diff_transfers(&self) -> u64 {
        self.msg_kinds[8]
    }
}

/// Speedup of a parallel run against a baseline (usually 1 processor).
pub fn speedup(baseline: &RunReport, parallel: &RunReport) -> f64 {
    baseline.wall.as_ps() as f64 / parallel.wall.as_ps() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(walls: &[(u64, u64)]) -> RunReport {
        // (hits, lookups) per node
        RunReport {
            version: REPORT_VERSION,
            wall: SimTime::from_us(10),
            procs: vec![
                ProcTimes {
                    compute: SimTime::from_us(4),
                    overhead: SimTime::from_us(1),
                    delay: SimTime::from_us(5),
                    total: SimTime::from_us(10),
                };
                walls.len()
            ],
            nic: walls
                .iter()
                .map(|&(h, l)| NicStats {
                    tx_cache_hits: h,
                    tx_page_lookups: l,
                    ..NicStats::default()
                })
                .collect(),
            msg_cache: vec![MsgCacheStats::default(); walls.len()],
            dsm: vec![DsmStats::default(); walls.len()],
            messages: 0,
            msg_kinds: [0; 9],
            latency: Vec::new(),
            latency_hist: Vec::new(),
            trace: None,
            faults: FaultStats::default(),
            stages: None,
        }
    }

    #[test]
    fn hit_ratio_aggregates_across_nodes() {
        let r = report(&[(3, 4), (1, 4)]);
        assert!((r.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(report(&[(0, 0)]).hit_ratio(), 0.0);
    }

    #[test]
    fn mean_breakdown_averages() {
        let r = report(&[(0, 0), (0, 0)]);
        let m = r.mean_breakdown();
        assert_eq!(m.compute, SimTime::from_us(4));
        assert_eq!(m.total, SimTime::from_us(10));
    }

    #[test]
    fn speedup_ratio() {
        let base = report(&[(0, 0)]);
        let mut par = report(&[(0, 0)]);
        par.wall = SimTime::from_us(2);
        assert!((speedup(&base, &par) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gcycles_conversion() {
        let clock = Clock::from_mhz(166);
        let t = clock.cycles(2_000_000_000);
        assert!((RunReport::gcycles(t, clock) - 2.0).abs() < 1e-9);
    }

    /// A hand-written archive at `version`, shaped like the fields that
    /// schema actually had: v2 predates `faults`, v3 predates
    /// `latency_hist`, v4 predates `stages` and the span counters inside
    /// `trace`, v5 predates the per-NIC collective counters.
    fn archived_json(version: u32) -> String {
        let mut r = report(&[(3, 4)]);
        r.version = version;
        let mut v = serde_json::to_value(&r).unwrap();
        let obj = v.as_object_mut().unwrap();
        if version < 6 {
            for entry in obj.get_mut("nic").unwrap().as_array_mut().unwrap() {
                let em = entry.as_object_mut().unwrap();
                em.remove("coll_combines");
                em.remove("coll_forwards");
            }
        }
        if version < 5 {
            obj.remove("stages");
        }
        if version < 4 {
            obj.remove("latency_hist");
        }
        if version < 3 {
            obj.remove("faults");
        }
        serde_json::to_string(&v).unwrap()
    }

    #[test]
    fn parse_json_reads_v2_archives() {
        let r = RunReport::parse_json(&archived_json(2)).unwrap();
        assert_eq!(r.version, 2);
        assert_eq!(r.faults, FaultStats::default());
        assert!(r.latency_hist.is_empty());
        assert_eq!(r.nic[0].tx_cache_hits, 3);
        assert!((r.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parse_json_reads_v3_archives() {
        let r = RunReport::parse_json(&archived_json(3)).unwrap();
        assert_eq!(r.version, 3);
        assert!(r.latency_hist.is_empty());
    }

    #[test]
    fn parse_json_reads_v4_archives_with_pre_span_trace() {
        // A v4 archive whose `trace` summary predates the span
        // accounting counters: migration must default them to zero
        // instead of failing the missing-field check.
        let mut v: serde_json::Value = serde_json::from_str(&archived_json(4)).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.insert(
            "trace".to_string(),
            serde_json::from_str("{\"recorded\": 12, \"dropped\": 3, \"capacity\": 64}").unwrap(),
        );
        let r = RunReport::parse_json(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(r.version, 4);
        assert!(r.stages.is_none());
        let t = r.trace.unwrap();
        assert_eq!(t.recorded, 12);
        assert_eq!(t.spans_opened, 0);
        assert_eq!(t.spans_closed, 0);
        assert_eq!(t.span_drops, 0);
    }

    #[test]
    fn parse_json_reads_v5_archives_without_collective_counters() {
        let r = RunReport::parse_json(&archived_json(5)).unwrap();
        assert_eq!(r.version, 5);
        assert_eq!(r.nic[0].coll_combines, 0);
        assert_eq!(r.nic[0].coll_forwards, 0);
        assert_eq!(r.nic[0].tx_cache_hits, 3);
    }

    #[test]
    fn parse_json_round_trips_current() {
        let mut orig = report(&[(1, 2)]);
        let mut h = Histogram::new();
        h.record(7);
        h.record(130);
        orig.latency_hist = vec![KindHistogram {
            kind: 0xA0,
            hist: h,
        }];
        orig.stages = Some(cni_obs::ObsReport {
            messages: 1,
            ..cni_obs::ObsReport::default()
        });
        let json = serde_json::to_string(&orig).unwrap();
        let back = RunReport::parse_json(&json).unwrap();
        assert_eq!(back.version, REPORT_VERSION);
        assert_eq!(back.latency_hist.len(), 1);
        assert_eq!(back.latency_hist[0].kind, 0xA0);
        assert_eq!(back.latency_hist[0].hist.count(), 2);
        assert_eq!(back.stages.as_ref().map(|s| s.messages), Some(1));
        // Re-serialising the parsed report is byte-identical.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn parse_json_rejects_unknown_majors() {
        for bad in [0, 1, REPORT_VERSION + 1, 99] {
            let err = RunReport::parse_json(&archived_json(bad)).unwrap_err();
            assert!(err.contains("version") || err.contains("schema"), "{err}");
        }
        let err = RunReport::parse_json("{\"wall\": 0}").unwrap_err();
        assert!(err.contains("version"), "{err}");
        assert!(RunReport::parse_json("not json").is_err());
        assert!(RunReport::parse_json("[1, 2]").is_err());
    }
}
