//! The checkpoint-restore identity contract, at the engine level:
//! run-to-T must equal run-to-checkpoint-then-resume-to-T **byte for
//! byte** in the serialized `RunReport` — lossless and under cell loss —
//! and taking checkpoints must not perturb the run at all.

use cni::{BrownoutWindow, Config, FaultPlan, LockId, Program, RunReport, VAddr, World};
use std::cell::RefCell;
use std::rc::Rc;

/// Barrier-phased neighbour exchange (Jacobi-shaped) on `n` procs.
fn neighbour_exchange(n: u32, iters: u64) -> impl Fn(VAddr) -> Vec<Program> {
    move |base| {
        (0..n)
            .map(|me| -> Program {
                Box::new(move |ctx| {
                    let page = ctx.page_bytes() as u64;
                    let mine = base.add(me as u64 * page);
                    for it in 0..iters {
                        let mut acc = 0u64;
                        if me > 0 {
                            acc += ctx.read_u64(base.add((me as u64 - 1) * page));
                        }
                        if me + 1 < n {
                            acc += ctx.read_u64(base.add((me as u64 + 1) * page));
                        }
                        ctx.barrier();
                        for w in 0..(page / 8) {
                            ctx.write_u64(mine.add(w * 8), acc + it + me as u64);
                        }
                        ctx.compute(50_000);
                        ctx.barrier();
                    }
                })
            })
            .collect()
    }
}

/// Lock ping-pong with message passing mixed in, to cover the
/// send/recv/inbox paths too.
fn mixed_workload(rounds: u64) -> impl Fn(VAddr) -> Vec<Program> {
    move |base| {
        (0..2u32)
            .map(|me| -> Program {
                Box::new(move |ctx| {
                    let l = LockId(0);
                    for r in 0..rounds {
                        ctx.acquire(l);
                        let v = ctx.read_u64(base);
                        ctx.write_u64(base, v + 1);
                        ctx.release(l);
                        if me == 0 {
                            ctx.send_data(1, vec![r, v], None, false, 0);
                        } else {
                            let (_src, _data) = ctx.recv_data();
                        }
                        ctx.compute(10_000);
                    }
                    ctx.barrier();
                })
            })
            .collect()
    }
}

const ALLOC: usize = 64 * 1024;

fn report_json(r: &RunReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

fn plain_run(cfg: Config, mk: &dyn Fn(VAddr) -> Vec<Program>) -> RunReport {
    let mut w = World::new(cfg);
    let base = w.alloc(ALLOC);
    w.run(mk(base))
}

/// Run with checkpoints every `every` events, returning the report and
/// every snapshot taken.
fn checkpointed_run(
    cfg: Config,
    mk: &dyn Fn(VAddr) -> Vec<Program>,
    every: u64,
) -> (RunReport, Vec<serde::Value>) {
    let mut w = World::new(cfg);
    let base = w.alloc(ALLOC);
    w.enable_journal();
    let snaps: Rc<RefCell<Vec<serde::Value>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = snaps.clone();
    w.set_checkpoint(
        every,
        Box::new(move |world: &World| {
            sink.borrow_mut().push(world.take_snapshot());
        }),
    );
    let report = w.run(mk(base));
    drop(w); // releases the sink's clone of `snaps`
    let snaps = Rc::try_unwrap(snaps)
        .expect("sink dropped with world")
        .into_inner();
    (report, snaps)
}

fn resume_from(
    cfg: Config,
    mk: &dyn Fn(VAddr) -> Vec<Program>,
    snap: &serde::Value,
) -> Result<RunReport, String> {
    let mut w = World::new(cfg);
    let base = w.alloc(ALLOC);
    w.resume_run(snap, mk(base))
}

fn identity_for(cfg: Config, mk: &dyn Fn(VAddr) -> Vec<Program>, every: u64) {
    let baseline = report_json(&plain_run(cfg, mk));
    let (chk_report, snaps) = checkpointed_run(cfg, mk, every);
    // Checkpointing must not perturb the run.
    assert_eq!(report_json(&chk_report), baseline);
    assert!(
        snaps.len() >= 2,
        "expected several snapshots, got {} (lower `every`)",
        snaps.len()
    );
    // Every snapshot — early, middle and last — resumes to the same bytes.
    for (i, snap) in snaps.iter().enumerate() {
        let resumed = resume_from(cfg, mk, snap)
            .unwrap_or_else(|e| panic!("resume from snapshot {i} failed: {e}"));
        assert_eq!(
            report_json(&resumed),
            baseline,
            "snapshot {i}/{} diverged from the uninterrupted run",
            snaps.len()
        );
    }
}

#[test]
fn lossless_identity_neighbour_exchange() {
    let cfg = Config::paper_default().with_procs(4);
    identity_for(cfg, &neighbour_exchange(4, 3), 40);
}

#[test]
fn lossless_identity_mixed_workload() {
    let cfg = Config::paper_default().with_procs(2);
    identity_for(cfg, &mixed_workload(6), 30);
}

#[test]
fn lossy_identity_five_percent_cell_loss() {
    let mut plan = FaultPlan::none();
    plan.drop_prob = 0.05;
    let cfg = Config::paper_default().with_procs(4).with_faults(plan);
    identity_for(cfg, &neighbour_exchange(4, 2), 100);
}

#[test]
fn fork_with_identical_config_reproduces_tail() {
    // `--fork-at` with an unchanged config is exactly resume: the child
    // must replay the parent's tail byte-for-byte. (Covered per-snapshot
    // by identity_for; this pins the semantics under a *faulty* parent,
    // where the injector stream restore is what carries the tail.)
    let mut plan = FaultPlan::none();
    plan.drop_prob = 0.03;
    let cfg = Config::paper_default().with_procs(2).with_faults(plan);
    let mk = mixed_workload(5);
    let baseline = report_json(&plain_run(cfg, &mk));
    let (_, snaps) = checkpointed_run(cfg, &mk, 60);
    let snap = snaps.last().expect("at least one snapshot");
    let forked = resume_from(cfg, &mk, snap).expect("fork resumes");
    assert_eq!(report_json(&forked), baseline);
}

#[test]
fn fork_into_brownout_diverges_only_in_future() {
    // Parent: lossless. Child: same warmup, then a brownout window after
    // the checkpoint. The child must run to completion; its fault
    // counters must show brownout losses the parent never saw.
    let cfg = Config::paper_default().with_procs(4);
    let mk = neighbour_exchange(4, 3);
    let parent = plain_run(cfg, &mk);
    let (_, snaps) = checkpointed_run(cfg, &mk, 40);
    let snap = &snaps[0];

    let mut plan = FaultPlan::none();
    // A brownout well past the first checkpoint but inside the run.
    plan.brownouts[0] = Some(BrownoutWindow {
        link: 1,
        start_ps: 1_000_000,
        end_ps: parent.wall.as_ps().max(2_000_000),
    });
    let child_cfg = Config::paper_default().with_procs(4).with_faults(plan);
    let mut w = World::new(child_cfg);
    let base = w.alloc(ALLOC);
    let child = w
        .resume_run(snap, mk(base))
        .expect("lossless parent forks into a faulty child");
    assert!(
        child.faults.brownout_cells > 0,
        "child should have suffered the injected brownout"
    );
    assert!(child.wall >= parent.wall, "retransmissions cost time");
}

#[test]
fn faulty_snapshot_rejected_under_lossless_plan() {
    let mut plan = FaultPlan::none();
    plan.drop_prob = 0.05;
    let cfg = Config::paper_default().with_procs(2).with_faults(plan);
    let mk = mixed_workload(4);
    let (_, snaps) = checkpointed_run(cfg, &mk, 50);
    let lossless = Config::paper_default().with_procs(2);
    let err = resume_from(lossless, &mk, snaps.last().unwrap()).unwrap_err();
    assert!(err.contains("not supported"), "{err}");
}

#[test]
fn mismatched_setup_is_rejected_not_panicking() {
    let cfg = Config::paper_default().with_procs(4);
    let mk = neighbour_exchange(4, 2);
    let (_, snaps) = checkpointed_run(cfg, &mk, 60);
    let snap = snaps.last().unwrap();

    // Wrong processor count.
    let err = {
        let bad = Config::paper_default().with_procs(2);
        let mut w = World::new(bad);
        let base = w.alloc(ALLOC);
        w.resume_run(snap, neighbour_exchange(2, 2)(base))
            .unwrap_err()
    };
    assert!(err.contains("processors"), "{err}");

    // Missing alloc() calls.
    let err = {
        let mut w = World::new(cfg);
        w.resume_run(snap, mk(VAddr(0))).unwrap_err()
    };
    assert!(err.contains("alloc"), "{err}");

    // Structurally mangled snapshot values never panic.
    for junk in [
        serde::Value::Null,
        serde::Value::Bool(true),
        serde::Value::Array(vec![]),
        serde::Value::Object(serde::Map::new()),
    ] {
        let mut w = World::new(cfg);
        let base = w.alloc(ALLOC);
        assert!(w.resume_run(&junk, mk(base)).is_err());
    }
}

#[test]
#[ignore]
fn probe_event_counts() {
    for (name, cfg, mk) in [
        (
            "ne4x3",
            Config::paper_default().with_procs(4),
            Box::new(neighbour_exchange(4, 3)) as Box<dyn Fn(VAddr) -> Vec<Program>>,
        ),
        (
            "mix6",
            Config::paper_default().with_procs(2),
            Box::new(mixed_workload(6)),
        ),
    ] {
        let mut w = World::new(cfg);
        let base = w.alloc(ALLOC);
        let _ = w.run(mk(base));
        println!("{name}: {} events", w.events_dispatched());
    }
}
