//! Edge cases and failure modes of the timed cluster: deadlocks are
//! detected, locking-discipline violations panic loudly, and the
//! configuration knobs reach the machinery they claim to control.

use cni::{Config, LockId, Program, World};
use cni_nic::config::CniFeatures;

fn two_procs() -> World {
    World::new(Config::paper_default().with_procs(2))
}

#[test]
#[should_panic(expected = "deadlock")]
fn cross_lock_deadlock_is_detected() {
    // Classic AB/BA deadlock: the engine runs out of events with live
    // programs and says so instead of hanging.
    let mut w = two_procs();
    let _ = w.alloc(2048);
    let mk = |first: u32, second: u32| -> Program {
        Box::new(move |ctx| {
            ctx.acquire(LockId(first));
            // Ensure both processors hold their first lock before asking
            // for the second: a compute gap orders the requests in virtual
            // time deterministically.
            ctx.compute(1_000_000);
            ctx.acquire(LockId(second));
            ctx.release(LockId(second));
            ctx.release(LockId(first));
        })
    };
    let _ = w.run(vec![mk(0, 1), mk(1, 0)]);
}

#[test]
#[should_panic(expected = "re-acquire")]
fn double_acquire_panics() {
    let mut w = two_procs();
    let _ = w.run(vec![
        Box::new(|ctx| {
            ctx.acquire(LockId(0));
            ctx.acquire(LockId(0));
        }),
        Box::new(|_ctx| {}),
    ]);
}

#[test]
#[should_panic(expected = "release of unheld lock")]
fn release_without_acquire_panics() {
    let mut w = two_procs();
    let _ = w.run(vec![
        Box::new(|ctx| {
            ctx.acquire(LockId(0));
            ctx.release(LockId(0));
            ctx.release(LockId(0));
        }),
        Box::new(|_ctx| {}),
    ]);
}

#[test]
#[should_panic(expected = "one program per processor")]
fn program_count_must_match() {
    let mut w = two_procs();
    let _ = w.run(vec![Box::new(|_ctx| {})]);
}

#[test]
fn app_panics_propagate_with_context() {
    let mut w = two_procs();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = w.run(vec![
            Box::new(|_ctx| panic!("application exploded")),
            Box::new(|ctx| ctx.barrier()),
        ]);
    }));
    let err = result.expect_err("panic must propagate");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("application exploded"),
        "panic context lost: {msg}"
    );
}

#[test]
fn message_cache_size_knob_reaches_the_device() {
    // A 1-page cache thrashes where a big cache hits.
    let run = |cache_bytes: usize| {
        let mut w = World::new(
            Config::paper_default()
                .with_procs(2)
                .with_msg_cache_bytes(cache_bytes),
        );
        let base = w.alloc(8 * 2048);
        let r = w.run(vec![
            Box::new(move |ctx| {
                for round in 0..6u64 {
                    for pg in 0..4u64 {
                        ctx.write_u64(base.add(pg * 2048), round * 10 + pg);
                    }
                    ctx.barrier();
                    ctx.barrier();
                }
            }),
            Box::new(move |ctx| {
                for _round in 0..6u64 {
                    ctx.barrier();
                    let mut acc = 0u64;
                    for pg in 0..4u64 {
                        acc = acc.wrapping_add(ctx.read_u64(base.add(pg * 2048)));
                    }
                    std::hint::black_box(acc);
                    ctx.barrier();
                }
            }),
        ]);
        r.hit_ratio()
    };
    let small = run(2048);
    let large = run(64 * 1024);
    assert!(
        large > small,
        "bigger cache should hit more: {small:.2} vs {large:.2}"
    );
}

#[test]
fn ablation_flags_reach_the_device() {
    let cfg = Config::paper_default()
        .with_procs(2)
        .with_cni_features(CniFeatures {
            msg_cache: false,
            aih: true,
            polling: true,
        });
    let mut w = World::new(cfg);
    let base = w.alloc(2048);
    let r = w.run(vec![
        Box::new(move |ctx| {
            for round in 0..4u64 {
                ctx.write_u64(base, round);
                ctx.barrier();
                ctx.barrier();
            }
        }),
        Box::new(move |ctx| {
            for _ in 0..4u64 {
                ctx.barrier();
                let _ = ctx.read_u64(base);
                ctx.barrier();
            }
        }),
    ]);
    assert_eq!(r.hit_ratio(), 0.0, "disabled message cache must never hit");
}

#[test]
fn zero_compute_programs_terminate() {
    let mut w = two_procs();
    let r = w.run(vec![Box::new(|_| {}), Box::new(|_| {})]);
    assert_eq!(r.wall, cni::SimTime::ZERO);
    assert_eq!(r.messages, 0);
}
