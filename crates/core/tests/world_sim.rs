//! End-to-end behaviour of the timed cluster simulation: the qualitative
//! claims of the paper, asserted as invariants.

use cni::{Config, LockId, Program, RunReport, VAddr, World};
use cni_sim::SimTime;

fn run(cfg: Config, mk: impl Fn(VAddr) -> Vec<Program>) -> RunReport {
    let mut w = World::new(cfg);
    let base = w.alloc(64 * 1024);
    w.run(mk(base))
}

/// Lock-protected page ping-pong between two processors.
fn ping_pong(rounds: u64) -> impl Fn(VAddr) -> Vec<Program> {
    move |base| {
        (0..2u32)
            .map(|me| -> Program {
                Box::new(move |ctx| {
                    let l = LockId(0);
                    for r in 0..rounds {
                        ctx.acquire(l);
                        let v = ctx.read_u64(base);
                        if v == 2 * r + me as u64 {
                            // My turn: fill the page so it travels whole.
                            for w in 0..(ctx.page_bytes() / 8) as u64 {
                                ctx.write_u64(base.add(w * 8), v + 1);
                            }
                        }
                        ctx.release(l);
                        ctx.compute(2_000);
                    }
                    ctx.barrier();
                })
            })
            .collect()
    }
}

/// Barrier-phased neighbour exchange (Jacobi-shaped) on `n` procs.
fn neighbour_exchange(n: u32, iters: u64) -> impl Fn(VAddr) -> Vec<Program> {
    move |base| {
        (0..n)
            .map(|me| -> Program {
                Box::new(move |ctx| {
                    let page = ctx.page_bytes() as u64;
                    let mine = base.add(me as u64 * page);
                    for it in 0..iters {
                        // Read neighbours' pages.
                        let mut acc = 0u64;
                        if me > 0 {
                            acc += ctx.read_u64(base.add((me as u64 - 1) * page));
                        }
                        if me + 1 < n {
                            acc += ctx.read_u64(base.add((me as u64 + 1) * page));
                        }
                        ctx.barrier();
                        // Rewrite my whole page.
                        for w in 0..(page / 8) {
                            ctx.write_u64(mine.add(w * 8), acc + it + me as u64);
                        }
                        ctx.compute(50_000);
                        ctx.barrier();
                    }
                })
            })
            .collect()
    }
}

#[test]
fn deterministic_across_runs() {
    let cfg = Config::paper_default().with_procs(4);
    let a = run(cfg, neighbour_exchange(4, 3));
    let b = run(cfg, neighbour_exchange(4, 3));
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.messages, b.messages);
    assert_eq!(
        serde_json::to_string(&a.procs).unwrap(),
        serde_json::to_string(&b.procs).unwrap()
    );
}

#[test]
fn cni_beats_standard_on_page_ping_pong() {
    let cni = run(Config::paper_default().with_procs(2), ping_pong(10));
    let std_ = run(
        Config::paper_default().with_procs(2).standard(),
        ping_pong(10),
    );
    assert!(
        cni.wall < std_.wall,
        "CNI {} !< standard {}",
        cni.wall,
        std_.wall
    );
}

#[test]
fn cni_beats_standard_on_neighbour_exchange() {
    let cni = run(
        Config::paper_default().with_procs(4),
        neighbour_exchange(4, 4),
    );
    let std_ = run(
        Config::paper_default().with_procs(4).standard(),
        neighbour_exchange(4, 4),
    );
    assert!(cni.wall < std_.wall);
    // And the win shows up as lower synch overhead (Tables 2–4 shape).
    let c = cni.mean_breakdown();
    let s = std_.mean_breakdown();
    assert!(
        c.overhead < s.overhead,
        "CNI overhead {} !< standard {}",
        c.overhead,
        s.overhead
    );
}

#[test]
fn message_cache_hits_on_repeated_page_sends() {
    // The neighbour pages are re-sent every iteration; after the cold
    // start the writer's board copy stays consistent by snooping, so the
    // hit ratio must be substantial.
    let r = run(
        Config::paper_default().with_procs(4),
        neighbour_exchange(4, 8),
    );
    assert!(
        r.hit_ratio() > 0.5,
        "expected high network-cache hit ratio, got {}",
        r.hit_ratio()
    );
    // Standard NICs never hit.
    let s = run(
        Config::paper_default().with_procs(4).standard(),
        neighbour_exchange(4, 8),
    );
    assert_eq!(s.hit_ratio(), 0.0);
}

#[test]
fn standard_takes_many_interrupts_cni_mostly_polls() {
    let cni = run(
        Config::paper_default().with_procs(4),
        neighbour_exchange(4, 4),
    );
    let std_ = run(
        Config::paper_default().with_procs(4).standard(),
        neighbour_exchange(4, 4),
    );
    assert!(std_.interrupts() > 0);
    let cni_polls: u64 = cni.nic.iter().map(|n| n.polls).sum();
    assert!(cni_polls > 0, "waiting CNI processors should poll");
    assert!(
        cni.interrupts() < std_.interrupts(),
        "CNI {} !< standard {} interrupts",
        cni.interrupts(),
        std_.interrupts()
    );
}

#[test]
fn cni_moves_fewer_dma_bytes_to_board() {
    let cni = run(Config::paper_default().with_procs(2), ping_pong(10));
    let std_ = run(
        Config::paper_default().with_procs(2).standard(),
        ping_pong(10),
    );
    assert!(
        cni.dma_bytes_to_board() < std_.dma_bytes_to_board(),
        "transmit caching should eliminate host->board DMA: {} vs {}",
        cni.dma_bytes_to_board(),
        std_.dma_bytes_to_board()
    );
}

#[test]
fn unrestricted_cells_speed_up_page_traffic() {
    let std_cells = run(Config::paper_default().with_procs(2), ping_pong(10));
    let jumbo = run(
        Config::paper_default()
            .with_procs(2)
            .with_unrestricted_cells(),
        ping_pong(10),
    );
    assert!(
        jumbo.wall < std_cells.wall,
        "jumbo {} !< 53-byte cells {}",
        jumbo.wall,
        std_cells.wall
    );
}

#[test]
fn single_proc_run_has_no_communication() {
    let mut w = World::new(Config::paper_default().with_procs(1));
    let base = w.alloc(8192);
    let r = w.run(vec![Box::new(move |ctx| {
        for i in 0..1000u64 {
            ctx.write_u64(base.add((i % 1024) * 8), i);
        }
        ctx.compute(1_000_000);
        ctx.barrier();
    })]);
    assert_eq!(r.messages, 0);
    assert_eq!(r.procs[0].delay, SimTime::ZERO);
    // Computation dominates.
    assert!(r.procs[0].compute > r.procs[0].overhead);
}

#[test]
fn compute_scales_wall_clock() {
    let mk = |cycles: u64| -> Vec<Program> {
        vec![Box::new(move |ctx: &mut cni::ProcCtx<'_>| {
            ctx.compute(cycles);
        })]
    };
    let mut w1 = World::new(Config::paper_default().with_procs(1));
    let r1 = w1.run(mk(1_000_000));
    let mut w2 = World::new(Config::paper_default().with_procs(1));
    let r2 = w2.run(mk(2_000_000));
    // 166 MHz: 1M cycles ≈ 6.024 ms.
    assert_eq!(r1.wall, SimTime::from_ps(6024 * 1_000_000));
    assert_eq!(r2.wall, SimTime::from_ps(6024 * 2_000_000));
}

#[test]
fn message_passing_ping_pong_roundtrip() {
    let cfg = Config::paper_default().with_procs(2);
    let mut w = World::new(cfg);
    let _ = w.alloc(4096);
    let r = w.run(vec![
        Box::new(|ctx| {
            for i in 0..5u64 {
                ctx.send_to(1, 256, Some(0x0100_0000 + i % 2), true, 8);
                let (src, len) = ctx.recv();
                assert_eq!(src, 1);
                assert_eq!(len, 256);
            }
        }),
        Box::new(|ctx| {
            for i in 0..5u64 {
                let (src, len) = ctx.recv();
                assert_eq!(src, 0);
                assert_eq!(len, 256);
                ctx.send_to(0, 256, Some(0x0200_0000 + i % 2), true, 8);
            }
        }),
    ]);
    // 10 application messages were exchanged; none is a protocol message.
    assert_eq!(r.messages, 0);
    let tx_total: u64 = r.nic.iter().map(|n| n.tx_messages).sum();
    assert_eq!(tx_total, 10);
}

#[test]
fn breakdown_buckets_sum_to_total() {
    let r = run(
        Config::paper_default().with_procs(4),
        neighbour_exchange(4, 4),
    );
    for (i, p) in r.procs.iter().enumerate() {
        let sum = p.compute + p.overhead + p.delay;
        let diff = sum.as_ps().abs_diff(p.total.as_ps());
        assert!(
            diff <= p.total.as_ps() / 100 + 1_000_000,
            "proc {i}: buckets {sum} vs total {total} diverge",
            total = p.total
        );
    }
}

#[test]
fn bigger_pages_cost_more_per_migration() {
    let small = run(
        Config::paper_default().with_procs(2).with_page_bytes(1024),
        ping_pong(6),
    );
    let large = run(
        Config::paper_default().with_procs(2).with_page_bytes(8192),
        ping_pong(6),
    );
    // The ping-pong writes whole pages, so larger pages mean strictly more
    // data motion and a longer run.
    assert!(large.wall > small.wall);
}

#[test]
fn tree_barrier_is_a_drop_in_replacement() {
    // Same answers, and at scale the combining tree relieves the
    // centralised manager (extension experiment; the paper's protocol is
    // centralised).
    let central = run(
        Config::paper_default().with_procs(8),
        neighbour_exchange(8, 4),
    );
    let tree = run(
        Config::paper_default().with_procs(8).with_tree_barrier(),
        neighbour_exchange(8, 4),
    );
    // Identical logical work.
    let faults =
        |r: &RunReport| -> u64 { r.dsm.iter().map(|d| d.read_faults + d.write_faults).sum() };
    assert_eq!(faults(&central), faults(&tree));
    // Both finish; neither is pathologically slower.
    let ratio = tree.wall.as_ps() as f64 / central.wall.as_ps() as f64;
    assert!((0.5..2.0).contains(&ratio), "tree/central ratio {ratio}");
}
