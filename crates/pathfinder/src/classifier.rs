//! The PATHFINDER decision DAG.
//!
//! Installed patterns are compiled into a prefix-sharing tree of comparison
//! cells: nodes that examine the same (offset, width, mask) field share a
//! single extraction, and branches fan out by expected value — the software
//! analogue of PATHFINDER's hardware cell lines. Classification walks the
//! tree, collects every accepting pattern on the way, and resolves ties by
//! (priority, pattern length, insertion order). The number of cells visited
//! is reported so callers can charge classification cycles.
//!
//! Fragment handling mirrors the hardware: classify the first fragment,
//! [`Classifier::bind_flow`] the verdict to the VCI, and route the
//! remaining fragments through the binding table in O(1).

use crate::pattern::{FieldTest, Pattern, PatternId};
use cni_trace::{TraceEvent, TraceSink};
use std::collections::HashMap;

/// A successful classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifyOutcome<T> {
    /// Which installed pattern matched.
    pub pattern: PatternId,
    /// The target bound to that pattern (application channel, AIH, ...).
    pub target: T,
    /// Comparison cells evaluated — the classification work done.
    pub cells_visited: u32,
}

struct Installed<T> {
    pattern: Pattern,
    target: T,
    live: bool,
}

struct Node {
    key: (u16, u8, u32),
    /// Sorted by value for deterministic traversal.
    edges: Vec<(u32, NodeChildren)>,
}

#[derive(Default)]
struct NodeChildren {
    accepts: Vec<PatternId>,
    children: Vec<Node>,
}

/// A programmable packet classifier with fragment-flow binding.
///
/// ```
/// use cni_pathfinder::{Classifier, FieldTest, Pattern};
///
/// let mut cls = Classifier::new();
/// cls.install(Pattern::new(vec![FieldTest::byte(0, 0xD6)]), "dsm-page");
/// cls.install(
///     Pattern::new(vec![FieldTest::byte(0, 0xA0), FieldTest::u16(2, 7)]),
///     "app-chan-7",
/// );
///
/// let hit = cls.classify(&[0xA0, 0, 0, 7]).unwrap();
/// assert_eq!(hit.target, "app-chan-7");
///
/// // Fragments of the same PDU skip the pattern walk via the flow table.
/// cls.bind_flow(42, hit.target);
/// assert_eq!(cls.lookup_flow(42), Some(&"app-chan-7"));
/// ```
pub struct Classifier<T> {
    installed: Vec<Installed<T>>,
    roots: Vec<Node>,
    flows: HashMap<u16, T>,
    classifications: u64,
    cells_total: u64,
}

impl<T: Clone> Default for Classifier<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Classifier<T> {
    /// An empty classifier.
    pub fn new() -> Self {
        Classifier {
            installed: Vec::new(),
            roots: Vec::new(),
            flows: HashMap::new(),
            classifications: 0,
            cells_total: 0,
        }
    }

    /// Install `pattern`, routing matches to `target`. Returns the id used
    /// to remove it later.
    pub fn install(&mut self, pattern: Pattern, target: T) -> PatternId {
        assert!(
            !pattern.tests.is_empty(),
            "a pattern needs at least one test"
        );
        let id = PatternId(self.installed.len() as u32);
        self.installed.push(Installed {
            pattern,
            target,
            live: true,
        });
        self.rebuild();
        id
    }

    /// Remove a previously installed pattern. Safe to call twice.
    pub fn remove(&mut self, id: PatternId) {
        if let Some(p) = self.installed.get_mut(id.0 as usize) {
            p.live = false;
            self.rebuild();
        }
    }

    /// Number of live patterns.
    pub fn live_patterns(&self) -> usize {
        self.installed.iter().filter(|p| p.live).count()
    }

    fn rebuild(&mut self) {
        self.roots.clear();
        for (idx, inst) in self.installed.iter().enumerate() {
            if !inst.live {
                continue;
            }
            Self::insert(&mut self.roots, &inst.pattern.tests, PatternId(idx as u32));
        }
    }

    fn insert(level: &mut Vec<Node>, tests: &[FieldTest], id: PatternId) {
        let (test, rest) = tests.split_first().expect("patterns are non-empty");
        let node_pos = match level.iter().position(|n| n.key == test.key()) {
            Some(p) => p,
            None => {
                level.push(Node {
                    key: test.key(),
                    edges: Vec::new(),
                });
                level.len() - 1
            }
        };
        let node = &mut level[node_pos];
        let edge_pos = match node.edges.binary_search_by_key(&test.value, |e| e.0) {
            Ok(p) => p,
            Err(p) => {
                node.edges.insert(p, (test.value, NodeChildren::default()));
                p
            }
        };
        let children = &mut node.edges[edge_pos].1;
        if rest.is_empty() {
            children.accepts.push(id);
        } else {
            Self::insert(&mut children.children, rest, id);
        }
    }

    /// Classify `packet` against the installed patterns.
    ///
    /// Returns the best match (priority, then pattern length, then lowest
    /// id) or `None`. Statistics and the per-call `cells_visited` count the
    /// comparison work.
    pub fn classify(&mut self, packet: &[u8]) -> Option<ClassifyOutcome<T>> {
        let mut cells = 0u32;
        let mut best: Option<PatternId> = None;
        Self::walk(&self.roots, packet, &mut cells, &mut |id| {
            let replace = match best {
                None => true,
                Some(cur) => {
                    let a = &self.installed[id.0 as usize].pattern;
                    let b = &self.installed[cur.0 as usize].pattern;
                    (a.priority, a.tests.len(), std::cmp::Reverse(id.0))
                        > (b.priority, b.tests.len(), std::cmp::Reverse(cur.0))
                }
            };
            if replace {
                best = Some(id);
            }
        });
        self.classifications += 1;
        self.cells_total += cells as u64;
        best.map(|id| ClassifyOutcome {
            pattern: id,
            target: self.installed[id.0 as usize].target.clone(),
            cells_visited: cells,
        })
    }

    /// [`Classifier::classify`], recording a `Classify` trace event for
    /// `node` (the comparison-cell count and whether any pattern accepted).
    /// With a disabled sink this is exactly `classify`.
    pub fn classify_traced(
        &mut self,
        packet: &[u8],
        trace: &TraceSink,
        node: u32,
    ) -> Option<ClassifyOutcome<T>> {
        let out = self.classify(packet);
        if trace.is_enabled() {
            trace.emit(
                node,
                TraceEvent::Classify {
                    cells: out.as_ref().map(|o| o.cells_visited).unwrap_or(1),
                    matched: out.is_some(),
                },
            );
        }
        out
    }

    fn walk(level: &[Node], packet: &[u8], cells: &mut u32, accept: &mut impl FnMut(PatternId)) {
        for node in level {
            *cells += 1;
            let test = FieldTest {
                offset: node.key.0,
                width: node.key.1,
                mask: node.key.2,
                value: 0,
            };
            let Some(actual) = test.extract(packet) else {
                continue;
            };
            if let Ok(pos) = node.edges.binary_search_by_key(&actual, |e| e.0) {
                let hit = &node.edges[pos].1;
                for &id in &hit.accepts {
                    accept(id);
                }
                Self::walk(&hit.children, packet, cells, accept);
            }
        }
    }

    /// Bind a classification verdict to a flow (VCI), so later fragments of
    /// the same PDU skip pattern matching.
    pub fn bind_flow(&mut self, vci: u16, target: T) {
        self.flows.insert(vci, target);
    }

    /// Constant-time lookup for a subsequent fragment of a bound flow.
    pub fn lookup_flow(&self, vci: u16) -> Option<&T> {
        self.flows.get(&vci)
    }

    /// Drop a flow binding (PDU complete).
    pub fn unbind_flow(&mut self, vci: u16) {
        self.flows.remove(&vci);
    }

    /// Total classify() calls.
    pub fn classifications(&self) -> u64 {
        self.classifications
    }

    /// The classification counters `(classifications, cells_total)`, for
    /// checkpointing. The decision DAG itself is rebuilt deterministically
    /// from the installed patterns on restore, so only the counters are
    /// runtime state.
    pub fn snapshot_counters(&self) -> (u64, u64) {
        (self.classifications, self.cells_total)
    }

    /// Restore counters captured with [`Classifier::snapshot_counters`].
    pub fn restore_counters(&mut self, classifications: u64, cells_total: u64) {
        self.classifications = classifications;
        self.cells_total = cells_total;
    }

    /// Mean comparison cells per classification.
    pub fn mean_cells(&self) -> f64 {
        if self.classifications == 0 {
            0.0
        } else {
            self.cells_total as f64 / self.classifications as f64
        }
    }

    /// Reference implementation: linear scan over live patterns with the
    /// same tie-break rule. Used by tests to validate the DAG.
    pub fn classify_linear(&self, packet: &[u8]) -> Option<PatternId> {
        let mut best: Option<PatternId> = None;
        for (idx, inst) in self.installed.iter().enumerate() {
            if !inst.live || !inst.pattern.matches(packet) {
                continue;
            }
            let id = PatternId(idx as u32);
            let replace = match best {
                None => true,
                Some(cur) => {
                    let a = &inst.pattern;
                    let b = &self.installed[cur.0 as usize].pattern;
                    (a.priority, a.tests.len(), std::cmp::Reverse(id.0))
                        > (b.priority, b.tests.len(), std::cmp::Reverse(cur.0))
                }
            };
            if replace {
                best = Some(id);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demux_classifier() -> Classifier<&'static str> {
        let mut c = Classifier::new();
        // Byte 0 = message kind, bytes 2..4 = channel.
        c.install(
            Pattern::new(vec![FieldTest::byte(0, 1), FieldTest::u16(2, 10)]),
            "app10-data",
        );
        c.install(
            Pattern::new(vec![FieldTest::byte(0, 1), FieldTest::u16(2, 11)]),
            "app11-data",
        );
        c.install(Pattern::new(vec![FieldTest::byte(0, 2)]), "dsm-protocol");
        c
    }

    #[test]
    fn routes_to_distinct_targets() {
        let mut c = demux_classifier();
        assert_eq!(c.classify(&[1, 0, 0, 10]).unwrap().target, "app10-data");
        assert_eq!(c.classify(&[1, 0, 0, 11]).unwrap().target, "app11-data");
        assert_eq!(c.classify(&[2, 0, 0, 99]).unwrap().target, "dsm-protocol");
        assert!(c.classify(&[3, 0, 0, 10]).is_none());
        assert_eq!(c.classifications(), 4);
    }

    #[test]
    fn shared_prefix_is_one_cell() {
        let mut c = demux_classifier();
        // All three patterns examine byte 0, so they share one root cell
        // (kind=1 and kind=2 are value edges of the same node); the walk
        // visits that cell plus the shared u16 channel cell = 2.
        let out = c.classify(&[1, 0, 0, 10]).unwrap();
        assert_eq!(out.cells_visited, 2);
    }

    #[test]
    fn longer_pattern_wins_tie() {
        let mut c = Classifier::new();
        c.install(Pattern::new(vec![FieldTest::byte(0, 7)]), "general");
        c.install(
            Pattern::new(vec![FieldTest::byte(0, 7), FieldTest::byte(1, 9)]),
            "specific",
        );
        assert_eq!(c.classify(&[7, 9]).unwrap().target, "specific");
        assert_eq!(c.classify(&[7, 0]).unwrap().target, "general");
    }

    #[test]
    fn priority_beats_length() {
        let mut c = Classifier::new();
        c.install(
            Pattern::new(vec![FieldTest::byte(0, 7)]).with_priority(5),
            "vip",
        );
        c.install(
            Pattern::new(vec![FieldTest::byte(0, 7), FieldTest::byte(1, 9)]),
            "long",
        );
        assert_eq!(c.classify(&[7, 9]).unwrap().target, "vip");
    }

    #[test]
    fn remove_uninstalls() {
        let mut c = demux_classifier();
        let id = c.classify(&[2, 0]).unwrap().pattern;
        c.remove(id);
        assert!(c.classify(&[2, 0]).is_none());
        assert_eq!(c.live_patterns(), 2);
        c.remove(id); // idempotent
    }

    #[test]
    fn short_packet_does_not_match_deep_pattern() {
        let mut c = demux_classifier();
        assert!(c.classify(&[1]).is_none());
    }

    #[test]
    fn flow_binding_roundtrip() {
        let mut c = demux_classifier();
        assert!(c.lookup_flow(42).is_none());
        c.bind_flow(42, "bound");
        assert_eq!(c.lookup_flow(42), Some(&"bound"));
        c.unbind_flow(42);
        assert!(c.lookup_flow(42).is_none());
    }

    #[test]
    fn dag_agrees_with_linear_reference() {
        let mut c = Classifier::new();
        // A mess of overlapping masked patterns.
        c.install(
            Pattern::new(vec![FieldTest::masked_byte(0, 0xF0, 0x10)]),
            1u32,
        );
        c.install(
            Pattern::new(vec![FieldTest::byte(0, 0x12), FieldTest::byte(1, 3)]),
            2,
        );
        c.install(
            Pattern::new(vec![FieldTest::u16(0, 0x1203)]).with_priority(2),
            3,
        );
        c.install(Pattern::new(vec![FieldTest::byte(1, 3)]), 4);
        for b0 in 0u8..=255 {
            for b1 in [0u8, 3, 7] {
                let pkt = [b0, b1];
                let dag = c.classify(&pkt).map(|o| o.pattern);
                let lin = c.classify_linear(&pkt);
                assert_eq!(dag, lin, "divergence on {pkt:?}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_test() -> impl Strategy<Value = FieldTest> {
        (
            0u16..6,
            prop_oneof![Just(1u8), Just(2u8)],
            any::<u32>(),
            any::<u32>(),
        )
            .prop_map(|(offset, width, mask, value)| {
                let width_mask = if width == 1 { 0xFF } else { 0xFFFF };
                let mask = mask & width_mask;
                FieldTest {
                    offset,
                    width,
                    mask,
                    value: value & mask,
                }
            })
    }

    fn arb_pattern() -> impl Strategy<Value = Pattern> {
        (proptest::collection::vec(arb_test(), 1..4), 0u8..4)
            .prop_map(|(tests, priority)| Pattern { tests, priority })
    }

    proptest! {
        #[test]
        fn dag_equals_linear(
            patterns in proptest::collection::vec(arb_pattern(), 1..12),
            packets in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..10), 1..30),
        ) {
            let mut c = Classifier::new();
            for (i, p) in patterns.into_iter().enumerate() {
                c.install(p, i as u32);
            }
            for pkt in &packets {
                let dag = c.classify(pkt).map(|o| o.pattern);
                let lin = c.classify_linear(pkt);
                prop_assert_eq!(dag, lin);
            }
        }
    }
}
