//! Classification patterns: sequences of masked field comparisons.

use serde::{Deserialize, Serialize};

/// Identifier of an installed pattern, returned by
/// [`crate::Classifier::install`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternId(pub u32);

/// One masked comparison against a header field.
///
/// The field is `width` bytes starting at `offset` (big-endian), masked
/// with `mask` and compared with `value`. This is PATHFINDER's comparison
/// "cell": real hardware evaluates one such cell per clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldTest {
    /// Byte offset of the field in the packet header.
    pub offset: u16,
    /// Field width in bytes: 1, 2, or 4.
    pub width: u8,
    /// Mask applied before comparison.
    pub mask: u32,
    /// Expected value (after masking).
    pub value: u32,
}

impl FieldTest {
    /// A full-width equality test on a 1-byte field.
    pub fn byte(offset: u16, value: u8) -> Self {
        FieldTest {
            offset,
            width: 1,
            mask: 0xFF,
            value: value as u32,
        }
    }

    /// A full-width equality test on a 2-byte (big-endian) field.
    pub fn u16(offset: u16, value: u16) -> Self {
        FieldTest {
            offset,
            width: 2,
            mask: 0xFFFF,
            value: value as u32,
        }
    }

    /// A full-width equality test on a 4-byte (big-endian) field.
    pub fn u32(offset: u16, value: u32) -> Self {
        FieldTest {
            offset,
            width: 4,
            mask: 0xFFFF_FFFF,
            value,
        }
    }

    /// A masked test on a 1-byte field.
    pub fn masked_byte(offset: u16, mask: u8, value: u8) -> Self {
        FieldTest {
            offset,
            width: 1,
            mask: mask as u32,
            value: (value & mask) as u32,
        }
    }

    /// Extract and mask this test's field from `packet`; `None` if the
    /// packet is too short.
    pub fn extract(&self, packet: &[u8]) -> Option<u32> {
        let start = self.offset as usize;
        let end = start + self.width as usize;
        if end > packet.len() {
            return None;
        }
        let raw = match self.width {
            1 => packet[start] as u32,
            2 => u16::from_be_bytes([packet[start], packet[start + 1]]) as u32,
            4 => u32::from_be_bytes([
                packet[start],
                packet[start + 1],
                packet[start + 2],
                packet[start + 3],
            ]),
            // cni-lint: allow(panic-path) -- the width comes from the classifier program built by the host, not from the packet; programs are validated at construction
            w => panic!("unsupported field width {w}"),
        };
        Some(raw & self.mask)
    }

    /// Does `packet` satisfy this test?
    pub fn matches(&self, packet: &[u8]) -> bool {
        self.extract(packet) == Some(self.value)
    }

    /// The comparison *key* (offset, width, mask): two tests with the same
    /// key examine the same field and can share a decision-DAG node.
    pub fn key(&self) -> (u16, u8, u32) {
        (self.offset, self.width, self.mask)
    }
}

/// A classification pattern: all tests must match, in order.
///
/// `priority` breaks ties when several patterns match one packet — the
/// highest priority wins, then the longest pattern, then lowest id
/// (deterministic).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// The comparison cells, evaluated in order.
    pub tests: Vec<FieldTest>,
    /// Tie-break priority; higher wins.
    pub priority: u8,
}

impl Pattern {
    /// A pattern from tests with default (zero) priority.
    pub fn new(tests: Vec<FieldTest>) -> Self {
        Pattern { tests, priority: 0 }
    }

    /// Set the priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Does `packet` satisfy every test?
    pub fn matches(&self, packet: &[u8]) -> bool {
        self.tests.iter().all(|t| t.matches(packet))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_test_extract_and_match() {
        let t = FieldTest::byte(2, 0xAB);
        assert!(t.matches(&[0, 0, 0xAB, 9]));
        assert!(!t.matches(&[0, 0, 0xAC, 9]));
        assert!(!t.matches(&[0, 0])); // too short
    }

    #[test]
    fn u16_and_u32_are_big_endian() {
        assert!(FieldTest::u16(0, 0x1234).matches(&[0x12, 0x34]));
        assert!(FieldTest::u32(1, 0xDEADBEEF).matches(&[0, 0xDE, 0xAD, 0xBE, 0xEF]));
    }

    #[test]
    fn masked_byte_ignores_unmasked_bits() {
        let t = FieldTest::masked_byte(0, 0xF0, 0x50);
        assert!(t.matches(&[0x5A]));
        assert!(t.matches(&[0x5F]));
        assert!(!t.matches(&[0x6A]));
    }

    #[test]
    fn pattern_requires_all_tests() {
        let p = Pattern::new(vec![FieldTest::byte(0, 1), FieldTest::byte(1, 2)]);
        assert!(p.matches(&[1, 2]));
        assert!(!p.matches(&[1, 3]));
        assert!(!p.matches(&[0, 2]));
    }

    #[test]
    fn key_ignores_value() {
        let a = FieldTest::byte(3, 1);
        let b = FieldTest::byte(3, 200);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), FieldTest::u16(3, 1).key());
    }
}
