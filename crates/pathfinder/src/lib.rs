//! `cni-pathfinder` — a model of the PATHFINDER pattern-based packet
//! classifier (Bailey, Gopal, Pagels, Peterson & Sarkar, OSDI '94) that the
//! CNI uses as its hardware demultiplexer.
//!
//! CNI needs the classifier for two jobs the OSIRIS board's VCI-only demux
//! cannot do:
//!
//! 1. route an incoming packet to the right *application* channel — finer
//!    grained than a VCI, because one application may multiplex several
//!    protocol actions on one connection; and
//! 2. transfer control to *Application Interrupt Handler* code on the NIC
//!    when a packet matches an installed protocol pattern (the DSM
//!    consistency protocol in this reproduction).
//!
//! The model keeps PATHFINDER's two key features:
//!
//! * **flexible classification programmability** — patterns are sequences
//!   of masked field comparisons over the packet header, composed into a
//!   prefix-sharing decision DAG ([`Classifier`]); the number of
//!   comparison cells touched per classification is reported so the NIC
//!   can charge cycles for it;
//! * **fragmented packets** — the first fragment of a PDU is classified on
//!   its headers and the result is *bound* to the flow (the VCI); later
//!   fragments short-circuit through the binding table
//!   ([`Classifier::bind_flow`] / [`Classifier::lookup_flow`]).

#![deny(missing_docs)]

pub mod classifier;
pub mod pattern;

pub use classifier::{Classifier, ClassifyOutcome};
pub use pattern::{FieldTest, Pattern, PatternId};
