//! Fragment handling end to end: PATHFINDER classifies the first fragment
//! of a PDU on its headers and routes the rest through the flow binding —
//! the mechanism that lets a hardware classifier keep up with ATM cells
//! (only one pattern match per PDU, not per cell).

use cni_pathfinder::{Classifier, FieldTest, Pattern};

/// Simulate the arrival of a fragmented PDU: `cells` payload fragments on
/// `vci`, of which only the first carries the protocol header.
fn deliver_fragmented(
    cls: &mut Classifier<&'static str>,
    vci: u16,
    header: &[u8],
    cells: usize,
) -> Vec<&'static str> {
    let mut routed = Vec::new();
    for i in 0..cells {
        if i == 0 {
            let outcome = cls.classify(header).expect("first fragment classifies");
            cls.bind_flow(vci, outcome.target);
            routed.push(outcome.target);
        } else {
            // Later fragments: O(1) flow lookup, no pattern walk.
            routed.push(*cls.lookup_flow(vci).expect("flow bound"));
        }
    }
    cls.unbind_flow(vci);
    routed
}

#[test]
fn fragments_follow_their_first_cell() {
    let mut cls = Classifier::new();
    cls.install(Pattern::new(vec![FieldTest::byte(0, 0xD6)]), "dsm-page");
    cls.install(Pattern::new(vec![FieldTest::byte(0, 0xA0)]), "app-data");

    let page = deliver_fragmented(&mut cls, 7, &[0xD6, 1, 2, 3], 43);
    assert_eq!(page.len(), 43);
    assert!(page.iter().all(|&t| t == "dsm-page"));

    let app = deliver_fragmented(&mut cls, 7, &[0xA0, 9, 9, 9], 5);
    assert!(app.iter().all(|&t| t == "app-data"));
}

#[test]
fn concurrent_flows_stay_separate() {
    let mut cls = Classifier::new();
    cls.install(Pattern::new(vec![FieldTest::byte(0, 1)]), "alpha");
    cls.install(Pattern::new(vec![FieldTest::byte(0, 2)]), "beta");

    // Interleave two PDUs on different VCIs.
    let a = cls.classify(&[1u8]).unwrap();
    cls.bind_flow(10, a.target);
    let b = cls.classify(&[2u8]).unwrap();
    cls.bind_flow(11, b.target);

    for _ in 0..20 {
        assert_eq!(cls.lookup_flow(10), Some(&"alpha"));
        assert_eq!(cls.lookup_flow(11), Some(&"beta"));
    }
    cls.unbind_flow(10);
    assert_eq!(cls.lookup_flow(10), None);
    assert_eq!(cls.lookup_flow(11), Some(&"beta"));
}

#[test]
fn classification_work_is_paid_once_per_pdu() {
    let mut cls = Classifier::new();
    for k in 0..16u16 {
        cls.install(
            Pattern::new(vec![FieldTest::byte(0, 0xD6), FieldTest::u16(2, k)]),
            "chan",
        );
    }
    let before = cls.classifications();
    deliver_fragmented(&mut cls, 3, &[0xD6, 0, 0, 5], 86);
    // One classify() for 86 fragments.
    assert_eq!(cls.classifications(), before + 1);
}

#[test]
fn rebinding_a_flow_replaces_the_target() {
    let mut cls: Classifier<u32> = Classifier::new();
    cls.bind_flow(4, 1);
    cls.bind_flow(4, 2);
    assert_eq!(cls.lookup_flow(4), Some(&2));
}
