//! Property tests of the interconnect timing model: causality, per-flow
//! ordering, and bandwidth conservation must hold for arbitrary traffic.

use cni_atm::{AtmConfig, Fabric};
use cni_sim::SimTime;
use proptest::prelude::*;

fn arb_traffic() -> impl Strategy<Value = Vec<(u64, u8, u8, u16)>> {
    // (start offset ns, src, dst, pdu len)
    proptest::collection::vec((0u64..100_000, 0u8..8, 0u8..8, 1u16..4096), 1..60)
}

proptest! {
    #[test]
    fn arrivals_never_precede_sends(traffic in arb_traffic()) {
        let mut fabric = Fabric::new(AtmConfig::default());
        let mut t = SimTime::ZERO;
        for (dt, src, dst, len) in traffic {
            let (src, dst) = (src as usize % 8, dst as usize % 8);
            if src == dst {
                continue;
            }
            t += SimTime::from_ns(dt);
            let timing = fabric.send_pdu(t, src, dst, len as usize, SimTime::from_ns(758));
            prop_assert!(timing.first_cell_arrival > t);
            prop_assert!(timing.last_cell_arrival >= timing.first_cell_arrival);
            prop_assert!(timing.cells >= 1);
            prop_assert!(timing.wire_bytes >= len as usize);
        }
    }

    #[test]
    fn same_pair_pdus_stay_ordered(lens in proptest::collection::vec(1usize..4096, 2..20)) {
        let mut fabric = Fabric::new(AtmConfig::default());
        let mut last = SimTime::ZERO;
        for (i, len) in lens.iter().enumerate() {
            // Sent back to back from node 0 to node 1.
            let timing = fabric.send_pdu(
                SimTime::from_ns(i as u64),
                0,
                1,
                *len,
                SimTime::from_ns(758),
            );
            prop_assert!(
                timing.last_cell_arrival >= last,
                "PDU {i} finished before its predecessor"
            );
            last = timing.last_cell_arrival;
        }
    }

    #[test]
    fn wire_time_respects_link_bandwidth(len in 1usize..8192) {
        // A PDU cannot finish faster than its wire bytes at 622 Mb/s plus
        // the fixed path latency.
        let mut fabric = Fabric::new(AtmConfig::default());
        let timing = fabric.send_pdu(SimTime::ZERO, 2, 5, len, SimTime::ZERO);
        let min_ps = timing.wire_bytes as u128 * 8 * 1_000_000_000_000 / 622_000_000
            / timing.cells as u128; // one cell must fully serialise
        prop_assert!(
            (timing.last_cell_arrival.as_ps() as u128) >= min_ps,
            "{} bytes arrived impossibly fast",
            timing.wire_bytes
        );
    }
}
