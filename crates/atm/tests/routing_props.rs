//! Property tests of multi-switch routing determinism: every `(src, dst)`
//! pair must map to exactly one route, hop counts must be symmetric, and
//! the full timing model must deliver byte-identical results across
//! independent runs — the fabric half of the DESIGN.md §4.7 byte-identity
//! contract, now over arbitrary valid fat-tree shapes.

use cni_atm::{AtmConfig, Fabric, Route, Topology};
use cni_sim::SimTime;
use proptest::prelude::*;

/// Arbitrary *valid* fat-tree shape: power-of-two leaves ≥ 2, a
/// power-of-two leaf radix split into ≥1 host ports and ≥1 uplinks.
fn arb_fat_tree() -> impl Strategy<Value = Topology> {
    (1u32..=4, 1u32..=5, any::<u16>()).prop_map(|(leaves_exp, radix_exp, down_seed)| {
        let radix = 1usize << radix_exp;
        let down = 1 + down_seed as usize % (radix - 1).max(1);
        Topology::FatTree {
            leaves: 1 << leaves_exp,
            down,
            up: radix - down,
        }
    })
}

fn ft_config(topology: Topology) -> AtmConfig {
    AtmConfig {
        topology,
        ..AtmConfig::default()
    }
}

proptest! {
    #[test]
    fn arbitrary_shapes_validate_and_route_uniquely(t in arb_fat_tree()) {
        prop_assert!(t.validate(32).is_ok(), "{t:?}");
        let hosts = t.hosts(32);
        for src in 0..hosts {
            for dst in 0..hosts {
                // Deterministic: re-deriving the route gives the same path.
                let route = t.route(src, dst);
                prop_assert_eq!(route, t.route(src, dst));
                // Consistent with the attachment map.
                match route {
                    Route::Leaf { switch } => {
                        prop_assert_eq!(switch, t.leaf_of(src));
                        prop_assert_eq!(t.leaf_of(src), t.leaf_of(dst));
                    }
                    Route::Spine { src_leaf, spine, dst_leaf } => {
                        prop_assert_eq!(src_leaf, t.leaf_of(src));
                        prop_assert_eq!(dst_leaf, t.leaf_of(dst));
                        prop_assert_ne!(src_leaf, dst_leaf);
                        // D-mod-k: the spine depends only on the destination.
                        let Topology::FatTree { up, .. } = t else { unreachable!() };
                        prop_assert_eq!(spine, dst % up);
                    }
                }
            }
        }
    }

    #[test]
    fn hop_counts_are_symmetric(t in arb_fat_tree()) {
        let hosts = t.hosts(32);
        for src in 0..hosts {
            for dst in 0..hosts {
                let fwd = t.route(src, dst);
                let rev = t.route(dst, src);
                prop_assert_eq!(fwd.switch_hops(), rev.switch_hops());
                prop_assert_eq!(fwd.trunk_hops(), rev.trunk_hops());
            }
        }
    }

    #[test]
    fn delivery_is_byte_identical_across_runs(
        t in arb_fat_tree(),
        traffic in proptest::collection::vec((0u64..100_000, any::<u8>(), any::<u8>(), 1u16..4096), 1..40),
    ) {
        // Two independent fabrics fed the same traffic must produce the
        // same timing, cell count and wire bytes for every PDU.
        let hosts = t.hosts(32);
        let mut a = Fabric::new(ft_config(t));
        let mut b = Fabric::new(ft_config(t));
        let mut now = SimTime::ZERO;
        for (dt, src, dst, len) in traffic {
            let (src, dst) = (src as usize % hosts, dst as usize % hosts);
            if src == dst {
                continue;
            }
            now += SimTime::from_ns(dt);
            let ta = a.send_pdu(now, src, dst, len as usize, SimTime::from_ns(758));
            let tb = b.send_pdu(now, src, dst, len as usize, SimTime::from_ns(758));
            prop_assert_eq!(ta, tb, "fabric timing diverged between identical runs");
        }
    }
}
