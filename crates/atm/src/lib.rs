//! `cni-atm` — the ATM interconnect substrate for the CNI reproduction.
//!
//! The paper connects its workstation cluster with an STS-12 (622 Mb/s) ATM
//! fabric built around a 32-port banyan switch, and identifies the 53-byte
//! ATM cell as the main limit on its latency gains (Table 5). This crate
//! models that substrate — and scales it past the paper's single switch:
//! the same banyan building block can be arranged into a 2-level fat-tree
//! of leaf and spine switches ([`topology`]), serving hundreds to a
//! thousand hosts with deterministic D-mod-k routing (see `TOPOLOGY.md`
//! at the repository root for the full fabric model). The components:
//!
//! * [`cell`] — ATM cells: 5-byte header (VCI, payload type, CLP) plus a
//!   48-byte payload, with an optional "jumbo" mode used for the paper's
//!   *unrestricted cell size* experiment.
//! * [`crc`] — the CRC-32 used by the AAL5 trailer.
//! * [`aal5`] — AAL5-style segmentation and reassembly: pad + 8-byte
//!   trailer (length + CRC) on transmit, per-VCI reassembly with integrity
//!   checking on receive.
//! * [`link`] — serialising point-to-point links (rate + propagation
//!   delay) with next-free-time contention.
//! * [`switch`] — a multistage banyan fabric of 2×2 crossbars with
//!   per-stage internal-link contention and cut-through forwarding.
//! * [`topology`] — fabric topologies: the paper's single switch, or a
//!   2-level fat-tree of banyans with unique deterministic routes.
//! * [`fabric`] — the whole network seen by a NIC: segments a PDU into
//!   cells and pipelines them through source link → switch(es) → sink
//!   link per the configured topology, returning cell-accurate
//!   first/last arrival times.

#![deny(missing_docs)]

pub mod aal5;
pub mod buf;
pub mod cell;
pub mod crc;
pub mod fabric;
pub mod link;
pub mod pipe;
pub mod state;
pub mod switch;
pub mod topology;

pub use aal5::{Reassembler, ReassemblyError, Segmenter};
pub use buf::{BufPool, PduBuf};
pub use cell::{Cell, CellHeader, ATM_CELL_BYTES, ATM_HEADER_BYTES, ATM_PAYLOAD_BYTES};
pub use fabric::{AtmConfig, Fabric, FaultyPduTiming, PduTiming};
pub use link::Link;
pub use pipe::{CellPipe, FaultModel, PipeOutcome};
pub use state::{FabricState, LinkState, SwitchState};
pub use switch::BanyanSwitch;
pub use topology::{Route, Topology};
