//! Fabric topologies: the arrangement of banyan switches between hosts.
//!
//! The paper evaluates a single 32-port banyan switch, which caps a
//! cluster at 32 workstations. This module describes how the same banyan
//! building block scales further: a [`Topology`] names either the paper's
//! single-switch fabric or a 2-level folded-Clos ("fat-tree") of leaf and
//! spine switches joined by inter-switch links, and defines the unique
//! deterministic [`Route`] every cell takes through it. The timing model
//! that walks cells along these routes lives in [`crate::fabric`]; the
//! wiring, routing and latency accounting are documented end-to-end in
//! `TOPOLOGY.md` at the repository root.
//!
//! # Fat-tree shape
//!
//! A `FatTree { leaves, down, up }` fabric has `leaves` leaf switches,
//! each a banyan with `down + up` ports: `down` host-facing ports and
//! `up` uplinks, one to each of the `up` spine switches. Each spine is a
//! banyan with `leaves` ports, one per leaf. Host `h` attaches to leaf
//! `h / down` at host port `h % down`, so the fabric serves
//! `leaves * down` hosts with an oversubscription ratio of `down / up`.
//!
//! # Routing
//!
//! Routing is destination-deterministic (D-mod-k): a cell from `src` to
//! `dst` in different leaves always climbs to spine `dst % up`. Combined
//! with the banyan's destination-tag routing inside each switch, every
//! `(src, dst)` pair has exactly one path — there is no adaptivity and
//! therefore no routing-induced nondeterminism, which is what lets the
//! simulator promise byte-identical reports for identical seeds on any
//! topology (DESIGN.md §4.7).

use serde::{Deserialize, Serialize};

/// The arrangement of switches between the hosts of a fabric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// The paper's fabric: every host on one banyan switch
    /// ([`crate::AtmConfig::ports`] ports).
    #[default]
    Single,
    /// A 2-level folded Clos: `leaves` leaf banyans with `down` host
    /// ports and `up` uplinks each, fully connected to `up` spine
    /// banyans of `leaves` ports each. Serves `leaves * down` hosts.
    FatTree {
        /// Number of leaf switches; must be a power of two ≥ 2 (it is
        /// the port count of each spine banyan).
        leaves: usize,
        /// Host-facing ports per leaf switch.
        down: usize,
        /// Uplink ports per leaf switch (= number of spine switches);
        /// `down + up` must be a power of two ≥ 2.
        up: usize,
    },
}

/// The unique path a cell takes between two hosts, at switch granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Both hosts share one switch: the single switch, or leaf
    /// `switch` of a fat-tree.
    Leaf {
        /// Index of the shared (leaf) switch; always 0 for
        /// [`Topology::Single`].
        switch: usize,
    },
    /// Leaf → spine → leaf across a fat-tree, traversing one uplink and
    /// one downlink in addition to three switches.
    Spine {
        /// The source host's leaf switch.
        src_leaf: usize,
        /// The spine switch chosen by D-mod-k routing (`dst % up`).
        spine: usize,
        /// The destination host's leaf switch.
        dst_leaf: usize,
    },
}

impl Route {
    /// Number of switches the cell's head falls through.
    pub fn switch_hops(&self) -> usize {
        match self {
            Route::Leaf { .. } => 1,
            Route::Spine { .. } => 3,
        }
    }

    /// Number of inter-switch links traversed (0 within one switch,
    /// 2 — one uplink, one downlink — via a spine). Host access links
    /// are not counted; every route uses exactly one on each end.
    pub fn trunk_hops(&self) -> usize {
        match self {
            Route::Leaf { .. } => 0,
            Route::Spine { .. } => 2,
        }
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    /// Parse the CLI/sweep spelling of a topology: `single`, or
    /// `LxDxU` for a fat-tree of `L` leaves with `D` host ports and `U`
    /// uplinks each (e.g. `4x16x16` = 64 hosts). Shape validation is
    /// separate — call [`Topology::validate`] on the result.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "single" {
            return Ok(Topology::Single);
        }
        let mut parts = s.split('x');
        let err = || format!("topology must be `single` or `LxDxU` (e.g. 4x16x16), got {s:?}");
        let next = |parts: &mut std::str::Split<'_, char>| {
            parts
                .next()
                .and_then(|p| p.parse::<usize>().ok())
                .ok_or_else(err)
        };
        let leaves = next(&mut parts)?;
        let down = next(&mut parts)?;
        let up = next(&mut parts)?;
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Topology::FatTree { leaves, down, up })
    }
}

impl Topology {
    /// Number of hosts the fabric serves. `single_ports` is the port
    /// count of the lone switch when the topology is [`Topology::Single`]
    /// (fat-trees derive their host count from their own shape).
    pub fn hosts(&self, single_ports: usize) -> usize {
        match *self {
            Topology::Single => single_ports,
            Topology::FatTree { leaves, down, .. } => leaves * down,
        }
    }

    /// Validate the shape against the banyan building block's
    /// constraints. Returns `Err` (never panics) describing the first
    /// violated constraint.
    pub fn validate(&self, single_ports: usize) -> Result<(), String> {
        match *self {
            Topology::Single => {
                if !single_ports.is_power_of_two() || single_ports < 2 {
                    return Err(format!(
                        "single-switch fabric needs a power-of-two port count >= 2, got {single_ports}"
                    ));
                }
                Ok(())
            }
            Topology::FatTree { leaves, down, up } => {
                if !leaves.is_power_of_two() || leaves < 2 {
                    return Err(format!(
                        "fat-tree needs a power-of-two leaf count >= 2 (spine banyans have one port per leaf), got {leaves}"
                    ));
                }
                if down == 0 || up == 0 {
                    return Err(format!(
                        "fat-tree needs down >= 1 and up >= 1, got down={down} up={up}"
                    ));
                }
                let radix = down + up;
                if !radix.is_power_of_two() || radix < 2 {
                    return Err(format!(
                        "fat-tree leaf radix down+up must be a power of two >= 2, got {down}+{up}={radix}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Oversubscription ratio of the fabric: host bandwidth into a leaf
    /// divided by uplink bandwidth out of it (`down / up` as a float);
    /// 1.0 for a single switch or a fully-provisioned fat-tree.
    pub fn oversubscription(&self) -> f64 {
        match *self {
            Topology::Single => 1.0,
            Topology::FatTree { down, up, .. } => down as f64 / up as f64,
        }
    }

    /// The leaf switch a host attaches to (0 for [`Topology::Single`]).
    pub fn leaf_of(&self, host: usize) -> usize {
        match *self {
            Topology::Single => 0,
            Topology::FatTree { down, .. } => host / down,
        }
    }

    /// The unique deterministic route from `src` to `dst`. Both hosts
    /// must be in range (`< hosts(...)`); routing itself never panics on
    /// in-range inputs and involves no state, so the same pair always
    /// maps to the same path.
    pub fn route(&self, src: usize, dst: usize) -> Route {
        match *self {
            Topology::Single => Route::Leaf { switch: 0 },
            Topology::FatTree { down, up, .. } => {
                let src_leaf = src / down;
                let dst_leaf = dst / down;
                if src_leaf == dst_leaf {
                    Route::Leaf { switch: src_leaf }
                } else {
                    Route::Spine {
                        src_leaf,
                        spine: dst % up,
                        dst_leaf,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FT: Topology = Topology::FatTree {
        leaves: 4,
        down: 16,
        up: 16,
    };

    #[test]
    fn hosts_and_validation() {
        assert_eq!(Topology::Single.hosts(32), 32);
        assert_eq!(FT.hosts(32), 64);
        assert!(Topology::Single.validate(32).is_ok());
        assert!(FT.validate(32).is_ok());
        // 12-port banyans do not exist.
        assert!(Topology::Single.validate(12).is_err());
        let bad_radix = Topology::FatTree {
            leaves: 4,
            down: 10,
            up: 2,
        };
        assert!(bad_radix.validate(32).is_err());
        let bad_leaves = Topology::FatTree {
            leaves: 3,
            down: 8,
            up: 8,
        };
        assert!(bad_leaves.validate(32).is_err());
    }

    #[test]
    fn routes_are_unique_and_deterministic() {
        let hosts = FT.hosts(32);
        for src in 0..hosts {
            for dst in 0..hosts {
                assert_eq!(FT.route(src, dst), FT.route(src, dst));
            }
        }
    }

    #[test]
    fn same_leaf_stays_local() {
        assert_eq!(FT.route(0, 15), Route::Leaf { switch: 0 });
        assert_eq!(FT.route(17, 31), Route::Leaf { switch: 1 });
        assert_eq!(FT.route(0, 15).switch_hops(), 1);
        assert_eq!(FT.route(0, 15).trunk_hops(), 0);
    }

    #[test]
    fn cross_leaf_goes_via_dmodk_spine() {
        assert_eq!(
            FT.route(3, 49),
            Route::Spine {
                src_leaf: 0,
                spine: 1, // 49 % 16
                dst_leaf: 3,
            }
        );
        assert_eq!(FT.route(3, 49).switch_hops(), 3);
        assert_eq!(FT.route(3, 49).trunk_hops(), 2);
    }

    #[test]
    fn hop_counts_are_symmetric() {
        let hosts = FT.hosts(32);
        for src in 0..hosts {
            for dst in 0..hosts {
                assert_eq!(
                    FT.route(src, dst).switch_hops(),
                    FT.route(dst, src).switch_hops()
                );
            }
        }
    }

    #[test]
    fn parses_cli_spellings() {
        assert_eq!("single".parse::<Topology>().unwrap(), Topology::Single);
        assert_eq!(
            "4x16x16".parse::<Topology>().unwrap(),
            Topology::FatTree {
                leaves: 4,
                down: 16,
                up: 16,
            }
        );
        for bad in ["", "4x16", "4x16x16x2", "ax16x16", "fat-tree"] {
            assert!(bad.parse::<Topology>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn serde_round_trip() {
        for t in [
            Topology::Single,
            Topology::FatTree {
                leaves: 16,
                down: 16,
                up: 16,
            },
        ] {
            let j = serde_json::to_string(&t).unwrap();
            let back: Topology = serde_json::from_str(&j).unwrap();
            assert_eq!(back, t);
        }
    }
}
