//! CRC-32 as used by the AAL5 trailer (IEEE 802.3 polynomial 0x04C11DB7,
//! reflected form 0xEDB88320, initial value all-ones, final complement).
//!
//! Table-driven, computed once at first use.

use std::sync::OnceLock;

const POLY_REFLECTED: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ POLY_REFLECTED
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 ("CRC-32/ISO-HDLC") check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let before = crc32(&data);
        data[17] ^= 0x04;
        assert_ne!(crc32(&data), before);
    }
}
