//! CRC-32 as used by the AAL5 trailer (IEEE 802.3 polynomial 0x04C11DB7,
//! reflected form 0xEDB88320, initial value all-ones, final complement).
//!
//! Slicing-by-8: eight derived lookup tables let the inner loop consume
//! eight bytes per step instead of one, which matters because the CRC is
//! the single largest per-byte cost on the segmentation/reassembly hot
//! path (the `hotpath` bench in cni-bench tracks it). The tables are
//! computed once at first use and produce bit-identical values to the
//! classic one-byte-at-a-time algorithm (the tests pin the standard check
//! vectors).

use std::sync::OnceLock;

const POLY_REFLECTED: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for i in 0..256 {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ POLY_REFLECTED
                } else {
                    c >> 1
                };
            }
            t[0][i] = c;
        }
        // t[k][i] extends t[0] by k extra zero bytes, so eight parallel
        // lookups fold one u64 of input into the running state at once.
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut chunks = data.chunks_exact(8);
        let mut s = self.state;
        for c in chunks.by_ref() {
            // The chunk is exactly 8 bytes; fold all of them at once.
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ s;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            s = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            s = (s >> 8) ^ t[0][((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 ("CRC-32/ISO-HDLC") check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let before = crc32(&data);
        data[17] ^= 0x04;
        assert_ne!(crc32(&data), before);
    }
}
