//! AAL5-style segmentation and reassembly (SAR).
//!
//! On transmit a PDU is padded to a whole number of cells and an 8-byte
//! trailer (UU, CPI, 16-bit length, CRC-32) is appended; the final cell is
//! marked end-of-PDU in the payload-type field. On receive, cells
//! accumulate per VCI until the end-of-PDU cell arrives, then length and
//! CRC are checked. This per-cell tax — the padding, the trailer, and the
//! 5-byte header per 48 payload bytes — is exactly the "small cell size"
//! overhead the paper's Table 5 quantifies; the [`Segmenter`] therefore also
//! supports an unrestricted (jumbo) mode that carries the whole PDU in one
//! cell.
//!
//! The data path is zero-copy past the one inherent gather/scatter each
//! direction: segmentation builds the padded PDU image once and hands every
//! cell a [`PduBuf`] *view* of it; reassembly gathers cell payloads into a
//! buffer drawn from a [`BufPool`] and freezes it into
//! the returned `PduBuf` without a copy.

use crate::buf::{BufPool, PduBuf};
use crate::cell::{Cell, ATM_PAYLOAD_BYTES};
use crate::crc::crc32;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Size of the AAL5 CPCS trailer.
pub const AAL5_TRAILER_BYTES: usize = 8;

/// Largest PDU a single AAL5 frame can carry (16-bit length field).
pub const AAL5_MAX_PDU: usize = u16::MAX as usize;

/// Errors detected while reassembling a PDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReassemblyError {
    /// The CRC-32 in the trailer does not match the received bytes.
    CrcMismatch,
    /// The length field disagrees with the number of received payload bytes.
    LengthMismatch,
    /// The end-of-PDU cell arrived but fewer than `AAL5_TRAILER_BYTES` were
    /// accumulated.
    Truncated,
}

/// Segments PDUs into ATM cells.
#[derive(Clone, Copy, Debug)]
pub struct Segmenter {
    /// Payload capacity per cell. [`ATM_PAYLOAD_BYTES`] for standard ATM;
    /// `None` selects unrestricted (jumbo) mode with one cell per PDU.
    cell_payload: Option<usize>,
}

impl Segmenter {
    /// A standard ATM segmenter (48-byte cell payloads).
    pub fn standard() -> Self {
        Segmenter {
            cell_payload: Some(ATM_PAYLOAD_BYTES),
        }
    }

    /// A segmenter with a custom cell payload size (model exploration).
    pub fn with_cell_payload(bytes: usize) -> Self {
        assert!(bytes > 0, "cell payload must be positive");
        Segmenter {
            cell_payload: Some(bytes),
        }
    }

    /// The paper's mythical unrestricted-cell-size network: one cell per
    /// PDU, no padding beyond the trailer.
    pub fn unrestricted() -> Self {
        Segmenter { cell_payload: None }
    }

    /// True when in unrestricted (jumbo) mode.
    pub fn is_unrestricted(&self) -> bool {
        self.cell_payload.is_none()
    }

    /// Number of cells `pdu_len` bytes of user data will occupy.
    pub fn cell_count(&self, pdu_len: usize) -> usize {
        match self.cell_payload {
            Some(cap) => (pdu_len + AAL5_TRAILER_BYTES).div_ceil(cap),
            None => 1,
        }
    }

    /// Total wire bytes (headers + payloads + pad + trailer) for a PDU.
    pub fn wire_bytes(&self, pdu_len: usize) -> usize {
        match self.cell_payload {
            Some(cap) => self.cell_count(pdu_len) * (cap + crate::cell::ATM_HEADER_BYTES),
            None => pdu_len + AAL5_TRAILER_BYTES + crate::cell::ATM_HEADER_BYTES,
        }
    }

    /// Build the padded PDU image (`data` + zero fill to `len` + pad +
    /// trailer) and split it into cell views. `data` shorter than `len`
    /// models a frame whose tail is zero fill — the engine's protocol
    /// frames — without the caller materialising those zeros first.
    fn segment_image(&self, vci: u16, data: &[u8], len: usize) -> Vec<Cell> {
        debug_assert!(len <= AAL5_MAX_PDU, "PDU too large for AAL5: {len} bytes");
        debug_assert!(data.len() <= len);
        let cap = self.cell_payload.unwrap_or(len + AAL5_TRAILER_BYTES);
        let total = (len + AAL5_TRAILER_BYTES).div_ceil(cap).max(1) * cap;
        let pad = total - len - AAL5_TRAILER_BYTES;

        let mut pdu = Vec::with_capacity(total);
        pdu.extend_from_slice(data);
        // Zero fill to the logical PDU length, then pad to a whole number
        // of cells; the two fills are one resize.
        pdu.resize(len + pad, 0);
        pdu.push(0); // CPCS-UU
        pdu.push(0); // CPI
        pdu.extend_from_slice(&(len as u16).to_be_bytes());
        // CRC over everything up to (not including) the CRC field itself.
        let crc = crc32(&pdu);
        pdu.extend_from_slice(&crc.to_be_bytes());
        let image = PduBuf::from_vec(pdu);

        let n = image.len() / cap;
        let mut cells = Vec::with_capacity(n);
        for (i, chunk) in image.chunks(cap).enumerate() {
            cells.push(Cell::new(vci, i + 1 == n, chunk));
        }
        cells
    }

    /// Segment `data` into cells on `vci`.
    ///
    /// # Panics
    /// Panics if `data` exceeds [`AAL5_MAX_PDU`].
    pub fn segment(&self, vci: u16, data: &[u8]) -> Vec<Cell> {
        self.segment_image(vci, data, data.len())
    }

    /// Segment a `len`-byte PDU whose leading bytes are `prefix` and whose
    /// remainder is zero fill, without the caller allocating the image.
    /// Byte-identical to `segment(vci, &{prefix + zeros})`; the engine's
    /// frame headers use this to skip one full-frame copy per transmission
    /// attempt.
    ///
    /// # Panics
    /// Panics if `len` exceeds [`AAL5_MAX_PDU`].
    pub fn segment_prefixed(&self, vci: u16, prefix: &[u8], len: usize) -> Vec<Cell> {
        let n = prefix.len().min(len);
        // `get` keeps the clamp panic-free for any prefix/len combination.
        self.segment_image(vci, prefix.get(..n).unwrap_or(prefix), len)
    }
}

/// Per-VCI reassembly state.
///
/// Gather buffers come from an internal [`BufPool`]; rejected PDUs return
/// their storage to the pool, and callers that are done with a delivered
/// PDU can donate it back through [`Reassembler::recycle`].
pub struct Reassembler {
    partial: BTreeMap<u16, Vec<u8>>,
    pool: BufPool,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new()
    }
}

/// Big-endian integer from the first `N` bytes of `b`, or `None` when
/// `b` is shorter (panic-free trailer decoding: the receive path must
/// survive arbitrarily corrupt or truncated input).
fn be_uint<const N: usize>(b: &[u8]) -> Option<u64> {
    let field = b.get(..N)?;
    Some(field.iter().fold(0u64, |acc, &x| (acc << 8) | u64::from(x)))
}

impl Reassembler {
    /// Fresh reassembler with no partial PDUs.
    pub fn new() -> Self {
        Reassembler {
            partial: BTreeMap::new(),
            pool: BufPool::new(),
        }
    }

    /// Fresh reassembler whose gather-buffer pool retains up to `retain`
    /// buffers (the buffer-pool knob; see DESIGN.md §4.1).
    pub fn with_pool_retain(retain: usize) -> Self {
        Reassembler {
            partial: BTreeMap::new(),
            pool: BufPool::with_retain(retain),
        }
    }

    /// Accept one cell. Returns `Some(..)` when this cell completes a PDU:
    /// the user payload on success, or the detected error.
    pub fn push(&mut self, cell: &Cell) -> Option<Result<PduBuf, ReassemblyError>> {
        let buf = match self.partial.entry(cell.header.vci) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(self.pool.acquire(cell.payload.len())),
        };
        buf.extend_from_slice(&cell.payload);
        if !cell.header.end_of_pdu {
            return None;
        }
        let pdu = self.partial.remove(&cell.header.vci).unwrap_or_default();
        Some(match Self::finish(&pdu) {
            Ok(len) => {
                let image = PduBuf::from_vec(pdu);
                // `finish` proved len <= image len, so the view exists.
                match image.view(0, len) {
                    Some(v) => Ok(v),
                    None => Err(ReassemblyError::LengthMismatch),
                }
            }
            Err(e) => {
                self.pool.recycle_vec(pdu);
                Err(e)
            }
        })
    }

    /// Validate the trailer; on success return the user-payload length.
    fn finish(pdu: &[u8]) -> Result<usize, ReassemblyError> {
        if pdu.len() < AAL5_TRAILER_BYTES {
            return Err(ReassemblyError::Truncated);
        }
        // Trailer layout: .. | UU | CPI | len (2) | CRC-32 (4).
        let body_end = pdu.len() - 4;
        let Some(rx_crc) = pdu.get(body_end..).and_then(be_uint::<4>) else {
            return Err(ReassemblyError::Truncated);
        };
        let Some(body) = pdu.get(..body_end) else {
            return Err(ReassemblyError::Truncated);
        };
        if u64::from(crc32(body)) != rx_crc {
            return Err(ReassemblyError::CrcMismatch);
        }
        let Some(len) = pdu.get(pdu.len() - 6..).and_then(be_uint::<2>) else {
            return Err(ReassemblyError::Truncated);
        };
        let len = len as usize;
        if len > pdu.len() - AAL5_TRAILER_BYTES {
            return Err(ReassemblyError::LengthMismatch);
        }
        Ok(len)
    }

    /// Donate a delivered PDU's storage back to the gather-buffer pool (a
    /// no-op unless `buf` is the storage's sole remaining owner).
    pub fn recycle(&mut self, buf: PduBuf) {
        self.pool.recycle(buf);
    }

    /// Number of VCIs with a partially reassembled PDU.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Capture the in-flight partial PDUs for a checkpoint, in ascending
    /// VCI order (the `BTreeMap` iteration order, so the capture is
    /// deterministic). The gather-buffer pool is a pure performance cache
    /// and is deliberately not part of the snapshot.
    pub fn snapshot_partials(&self) -> Vec<(u16, Vec<u8>)> {
        self.partial
            .iter()
            .map(|(vci, bytes)| (*vci, bytes.clone()))
            .collect()
    }

    /// Restore partial PDUs captured with
    /// [`Reassembler::snapshot_partials`], replacing any current ones.
    pub fn restore_partials(&mut self, partials: Vec<(u16, Vec<u8>)>) {
        self.partial = partials.into_iter().collect();
    }

    /// Number of gather buffers currently retained by the pool.
    pub fn pooled(&self) -> usize {
        self.pool.retained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(seg: &Segmenter, data: &[u8]) {
        let cells = seg.segment(9, data);
        assert_eq!(cells.len(), seg.cell_count(data.len()));
        let mut rx = Reassembler::new();
        let mut out = None;
        for (i, c) in cells.iter().enumerate() {
            let done = rx.push(c);
            if i + 1 < cells.len() {
                assert!(done.is_none(), "completed early at cell {i}");
            } else {
                out = done;
            }
        }
        let pdu = out.expect("last cell completes").expect("valid PDU");
        assert_eq!(&pdu[..], data);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn roundtrip_various_sizes_standard() {
        let seg = Segmenter::standard();
        for len in [0usize, 1, 39, 40, 41, 47, 48, 49, 96, 1024, 4096, 8191] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            roundtrip(&seg, &data);
        }
    }

    #[test]
    fn roundtrip_unrestricted() {
        let seg = Segmenter::unrestricted();
        for len in [0usize, 1, 48, 4096] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let cells = seg.segment(3, &data);
            assert_eq!(cells.len(), 1);
            roundtrip(&seg, &data);
        }
    }

    #[test]
    fn cell_count_matches_formula() {
        let seg = Segmenter::standard();
        // 40 bytes + 8 trailer = 48 -> exactly one cell.
        assert_eq!(seg.cell_count(40), 1);
        // 41 bytes + 8 = 49 -> two cells.
        assert_eq!(seg.cell_count(41), 2);
        // A 4 KB page: (4096+8)/48 -> 86 cells.
        assert_eq!(seg.cell_count(4096), 86);
    }

    #[test]
    fn wire_bytes_overhead() {
        let seg = Segmenter::standard();
        assert_eq!(seg.wire_bytes(40), 53);
        assert_eq!(seg.wire_bytes(4096), 86 * 53);
        let jumbo = Segmenter::unrestricted();
        assert_eq!(jumbo.wire_bytes(4096), 4096 + 8 + 5);
    }

    #[test]
    fn cells_are_views_of_one_image() {
        // The zero-copy contract: segmenting must not copy per cell. All
        // cells of a PDU alias one backing buffer, so the total payload
        // bytes equal the image length while only one allocation exists.
        let seg = Segmenter::standard();
        let data = vec![0x5Au8; 500];
        let cells = seg.segment(1, &data);
        for c in &cells {
            assert_eq!(c.payload.len(), ATM_PAYLOAD_BYTES);
        }
        // Identical contents to a reference re-segmentation.
        let reference = seg.segment(1, &data);
        assert_eq!(cells, reference);
    }

    #[test]
    fn segment_prefixed_matches_materialised_zero_fill() {
        let seg = Segmenter::standard();
        for (prefix_len, total) in [(0usize, 0usize), (8, 16), (16, 16), (16, 2048), (5, 4096)] {
            let prefix: Vec<u8> = (0..prefix_len).map(|i| (i * 7 + 1) as u8).collect();
            let mut image = vec![0u8; total];
            let n = prefix.len().min(total);
            image[..n].copy_from_slice(&prefix[..n]);
            assert_eq!(
                seg.segment_prefixed(9, &prefix, total),
                seg.segment(9, &image),
                "prefix {prefix_len} / total {total}"
            );
        }
    }

    #[test]
    fn corrupted_payload_detected() {
        let seg = Segmenter::standard();
        let data = vec![7u8; 500];
        let mut cells = seg.segment(1, &data);
        cells[3].payload.xor_bit(10, 7);
        let mut rx = Reassembler::new();
        let mut result = None;
        for c in &cells {
            if let Some(r) = rx.push(c) {
                result = Some(r);
            }
        }
        assert_eq!(result, Some(Err(ReassemblyError::CrcMismatch)));
    }

    #[test]
    fn rejected_pdus_recycle_their_gather_buffer() {
        let seg = Segmenter::standard();
        let data = vec![7u8; 500];
        let mut cells = seg.segment(1, &data);
        cells[0].payload.xor_bit(0, 0);
        let mut rx = Reassembler::new();
        for c in &cells {
            let _ = rx.push(c);
        }
        assert_eq!(rx.pooled(), 1, "CRC reject returns its buffer");
        // The next PDU reuses the pooled buffer rather than allocating.
        let clean = seg.segment(1, &data);
        for c in &clean {
            let _ = rx.push(c);
        }
        assert_eq!(rx.pooled(), 0, "reused for the next gather");
    }

    #[test]
    fn delivered_pdus_can_be_recycled_by_the_caller() {
        let seg = Segmenter::standard();
        let data = vec![3u8; 200];
        let cells = seg.segment(1, &data);
        let mut rx = Reassembler::new();
        let mut out = None;
        for c in &cells {
            if let Some(r) = rx.push(c) {
                out = Some(r);
            }
        }
        let pdu = out.expect("EOP").expect("valid");
        rx.recycle(pdu);
        assert_eq!(rx.pooled(), 1);
    }

    #[test]
    fn interleaved_vcis_reassemble_independently() {
        let seg = Segmenter::standard();
        let a: Vec<u8> = vec![0xAA; 300];
        let b: Vec<u8> = vec![0xBB; 200];
        let ca = seg.segment(1, &a);
        let cb = seg.segment(2, &b);
        let mut rx = Reassembler::new();
        let mut done = Vec::new();
        // Interleave the two cell streams.
        let mut ia = ca.iter();
        let mut ib = cb.iter();
        loop {
            let mut any = false;
            if let Some(c) = ia.next() {
                any = true;
                if let Some(r) = rx.push(c) {
                    done.push((1u16, r.unwrap()));
                }
            }
            if let Some(c) = ib.next() {
                any = true;
                if let Some(r) = rx.push(c) {
                    done.push((2u16, r.unwrap()));
                }
            }
            if !any {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        let got_a = done.iter().find(|(v, _)| *v == 1).unwrap();
        let got_b = done.iter().find(|(v, _)| *v == 2).unwrap();
        assert_eq!(&got_a.1[..], &a[..]);
        assert_eq!(&got_b.1[..], &b[..]);
    }

    #[test]
    fn lone_eop_cell_with_no_trailer_is_truncated() {
        // A single end-of-PDU cell whose accumulated bytes are fewer than
        // the trailer cannot be a valid AAL5 frame.
        let cell = Cell::new(5, true, PduBuf::from_vec(vec![0u8; 4]));
        let mut rx = Reassembler::new();
        assert_eq!(rx.push(&cell), Some(Err(ReassemblyError::Truncated)));
    }
}
