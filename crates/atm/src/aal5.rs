//! AAL5-style segmentation and reassembly (SAR).
//!
//! On transmit a PDU is padded to a whole number of cells and an 8-byte
//! trailer (UU, CPI, 16-bit length, CRC-32) is appended; the final cell is
//! marked end-of-PDU in the payload-type field. On receive, cells
//! accumulate per VCI until the end-of-PDU cell arrives, then length and
//! CRC are checked. This per-cell tax — the padding, the trailer, and the
//! 5-byte header per 48 payload bytes — is exactly the "small cell size"
//! overhead the paper's Table 5 quantifies; the [`Segmenter`] therefore also
//! supports an unrestricted (jumbo) mode that carries the whole PDU in one
//! cell.

use crate::cell::{Cell, ATM_PAYLOAD_BYTES};
use crate::crc::crc32;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Size of the AAL5 CPCS trailer.
pub const AAL5_TRAILER_BYTES: usize = 8;

/// Largest PDU a single AAL5 frame can carry (16-bit length field).
pub const AAL5_MAX_PDU: usize = u16::MAX as usize;

/// Errors detected while reassembling a PDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReassemblyError {
    /// The CRC-32 in the trailer does not match the received bytes.
    CrcMismatch,
    /// The length field disagrees with the number of received payload bytes.
    LengthMismatch,
    /// The end-of-PDU cell arrived but fewer than `AAL5_TRAILER_BYTES` were
    /// accumulated.
    Truncated,
}

/// Segments PDUs into ATM cells.
#[derive(Clone, Copy, Debug)]
pub struct Segmenter {
    /// Payload capacity per cell. [`ATM_PAYLOAD_BYTES`] for standard ATM;
    /// `None` selects unrestricted (jumbo) mode with one cell per PDU.
    cell_payload: Option<usize>,
}

impl Segmenter {
    /// A standard ATM segmenter (48-byte cell payloads).
    pub fn standard() -> Self {
        Segmenter {
            cell_payload: Some(ATM_PAYLOAD_BYTES),
        }
    }

    /// A segmenter with a custom cell payload size (model exploration).
    pub fn with_cell_payload(bytes: usize) -> Self {
        assert!(bytes > 0, "cell payload must be positive");
        Segmenter {
            cell_payload: Some(bytes),
        }
    }

    /// The paper's mythical unrestricted-cell-size network: one cell per
    /// PDU, no padding beyond the trailer.
    pub fn unrestricted() -> Self {
        Segmenter { cell_payload: None }
    }

    /// True when in unrestricted (jumbo) mode.
    pub fn is_unrestricted(&self) -> bool {
        self.cell_payload.is_none()
    }

    /// Number of cells `pdu_len` bytes of user data will occupy.
    pub fn cell_count(&self, pdu_len: usize) -> usize {
        match self.cell_payload {
            Some(cap) => (pdu_len + AAL5_TRAILER_BYTES).div_ceil(cap),
            None => 1,
        }
    }

    /// Total wire bytes (headers + payloads + pad + trailer) for a PDU.
    pub fn wire_bytes(&self, pdu_len: usize) -> usize {
        match self.cell_payload {
            Some(cap) => self.cell_count(pdu_len) * (cap + crate::cell::ATM_HEADER_BYTES),
            None => pdu_len + AAL5_TRAILER_BYTES + crate::cell::ATM_HEADER_BYTES,
        }
    }

    /// Segment `data` into cells on `vci`.
    ///
    /// # Panics
    /// Panics if `data` exceeds [`AAL5_MAX_PDU`].
    pub fn segment(&self, vci: u16, data: &[u8]) -> Vec<Cell> {
        assert!(
            data.len() <= AAL5_MAX_PDU,
            "PDU too large for AAL5: {} bytes",
            data.len()
        );
        let cap = self.cell_payload.unwrap_or(data.len() + AAL5_TRAILER_BYTES);
        let total = (data.len() + AAL5_TRAILER_BYTES).div_ceil(cap).max(1) * cap;
        let pad = total - data.len() - AAL5_TRAILER_BYTES;

        let mut pdu = BytesMut::with_capacity(total);
        pdu.put_slice(data);
        pdu.put_bytes(0, pad);
        pdu.put_u8(0); // CPCS-UU
        pdu.put_u8(0); // CPI
        pdu.put_u16(data.len() as u16);
        // CRC over everything up to (not including) the CRC field itself.
        let crc = crc32(&pdu);
        pdu.put_u32(crc);
        let pdu: Bytes = pdu.freeze();

        let n = pdu.len() / cap;
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            let chunk = pdu.slice(i * cap..(i + 1) * cap);
            cells.push(Cell::new(vci, i + 1 == n, chunk));
        }
        cells
    }
}

/// Per-VCI reassembly state.
#[derive(Default)]
pub struct Reassembler {
    partial: BTreeMap<u16, BytesMut>,
}

/// Big-endian integer from the first `N` bytes of `b`, or `None` when
/// `b` is shorter (panic-free trailer decoding: the receive path must
/// survive arbitrarily corrupt or truncated input).
fn be_uint<const N: usize>(b: &[u8]) -> Option<u64> {
    let field = b.get(..N)?;
    Some(field.iter().fold(0u64, |acc, &x| (acc << 8) | u64::from(x)))
}

impl Reassembler {
    /// Fresh reassembler with no partial PDUs.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Accept one cell. Returns `Some(..)` when this cell completes a PDU:
    /// the user payload on success, or the detected error.
    pub fn push(&mut self, cell: &Cell) -> Option<Result<Bytes, ReassemblyError>> {
        let buf = self.partial.entry(cell.header.vci).or_default();
        buf.extend_from_slice(&cell.payload);
        if !cell.header.end_of_pdu {
            return None;
        }
        let pdu = self.partial.remove(&cell.header.vci).unwrap_or_default();
        Some(Self::finish(pdu.freeze()))
    }

    fn finish(pdu: Bytes) -> Result<Bytes, ReassemblyError> {
        if pdu.len() < AAL5_TRAILER_BYTES {
            return Err(ReassemblyError::Truncated);
        }
        // Trailer layout: .. | UU | CPI | len (2) | CRC-32 (4).
        let body_end = pdu.len() - 4;
        let Some(rx_crc) = pdu.get(body_end..).and_then(be_uint::<4>) else {
            return Err(ReassemblyError::Truncated);
        };
        let Some(body) = pdu.get(..body_end) else {
            return Err(ReassemblyError::Truncated);
        };
        if u64::from(crc32(body)) != rx_crc {
            return Err(ReassemblyError::CrcMismatch);
        }
        let Some(len) = pdu.get(pdu.len() - 6..).and_then(be_uint::<2>) else {
            return Err(ReassemblyError::Truncated);
        };
        let len = len as usize;
        if len > pdu.len() - AAL5_TRAILER_BYTES {
            return Err(ReassemblyError::LengthMismatch);
        }
        Ok(pdu.slice(..len))
    }

    /// Number of VCIs with a partially reassembled PDU.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(seg: &Segmenter, data: &[u8]) {
        let cells = seg.segment(9, data);
        assert_eq!(cells.len(), seg.cell_count(data.len()));
        let mut rx = Reassembler::new();
        let mut out = None;
        for (i, c) in cells.iter().enumerate() {
            let done = rx.push(c);
            if i + 1 < cells.len() {
                assert!(done.is_none(), "completed early at cell {i}");
            } else {
                out = done;
            }
        }
        let pdu = out.expect("last cell completes").expect("valid PDU");
        assert_eq!(&pdu[..], data);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn roundtrip_various_sizes_standard() {
        let seg = Segmenter::standard();
        for len in [0usize, 1, 39, 40, 41, 47, 48, 49, 96, 1024, 4096, 8191] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            roundtrip(&seg, &data);
        }
    }

    #[test]
    fn roundtrip_unrestricted() {
        let seg = Segmenter::unrestricted();
        for len in [0usize, 1, 48, 4096] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let cells = seg.segment(3, &data);
            assert_eq!(cells.len(), 1);
            roundtrip(&seg, &data);
        }
    }

    #[test]
    fn cell_count_matches_formula() {
        let seg = Segmenter::standard();
        // 40 bytes + 8 trailer = 48 -> exactly one cell.
        assert_eq!(seg.cell_count(40), 1);
        // 41 bytes + 8 = 49 -> two cells.
        assert_eq!(seg.cell_count(41), 2);
        // A 4 KB page: (4096+8)/48 -> 86 cells.
        assert_eq!(seg.cell_count(4096), 86);
    }

    #[test]
    fn wire_bytes_overhead() {
        let seg = Segmenter::standard();
        assert_eq!(seg.wire_bytes(40), 53);
        assert_eq!(seg.wire_bytes(4096), 86 * 53);
        let jumbo = Segmenter::unrestricted();
        assert_eq!(jumbo.wire_bytes(4096), 4096 + 8 + 5);
    }

    #[test]
    fn corrupted_payload_detected() {
        let seg = Segmenter::standard();
        let data = vec![7u8; 500];
        let mut cells = seg.segment(1, &data);
        let mut corrupted: Vec<u8> = cells[3].payload.to_vec();
        corrupted[10] ^= 0x80;
        cells[3].payload = Bytes::from(corrupted);
        let mut rx = Reassembler::new();
        let mut result = None;
        for c in &cells {
            if let Some(r) = rx.push(c) {
                result = Some(r);
            }
        }
        assert_eq!(result, Some(Err(ReassemblyError::CrcMismatch)));
    }

    #[test]
    fn interleaved_vcis_reassemble_independently() {
        let seg = Segmenter::standard();
        let a: Vec<u8> = vec![0xAA; 300];
        let b: Vec<u8> = vec![0xBB; 200];
        let ca = seg.segment(1, &a);
        let cb = seg.segment(2, &b);
        let mut rx = Reassembler::new();
        let mut done = Vec::new();
        // Interleave the two cell streams.
        let mut ia = ca.iter();
        let mut ib = cb.iter();
        loop {
            let mut any = false;
            if let Some(c) = ia.next() {
                any = true;
                if let Some(r) = rx.push(c) {
                    done.push((1u16, r.unwrap()));
                }
            }
            if let Some(c) = ib.next() {
                any = true;
                if let Some(r) = rx.push(c) {
                    done.push((2u16, r.unwrap()));
                }
            }
            if !any {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        let got_a = done.iter().find(|(v, _)| *v == 1).unwrap();
        let got_b = done.iter().find(|(v, _)| *v == 2).unwrap();
        assert_eq!(&got_a.1[..], &a[..]);
        assert_eq!(&got_b.1[..], &b[..]);
    }

    #[test]
    fn lone_eop_cell_with_no_trailer_is_truncated() {
        // A single end-of-PDU cell whose accumulated bytes are fewer than
        // the trailer cannot be a valid AAL5 frame.
        let cell = Cell::new(5, true, Bytes::from(vec![0u8; 4]));
        let mut rx = Reassembler::new();
        assert_eq!(rx.push(&cell), Some(Err(ReassemblyError::Truncated)));
    }
}
