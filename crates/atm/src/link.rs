//! Serialising point-to-point links.
//!
//! A link has a bit rate and a propagation delay and can carry one cell at
//! a time; back-to-back cells queue behind a next-free-time register. This
//! is the standard analytic contention model: it yields cell-accurate
//! timing without simulating the wire bit by bit.

use cni_sim::SimTime;

/// A unidirectional serial link.
#[derive(Clone, Debug)]
pub struct Link {
    bits_per_sec: u64,
    prop_delay: SimTime,
    next_free: SimTime,
    bytes_carried: u64,
    busy: SimTime,
}

impl Link {
    /// A link of `mbps` megabits per second with propagation delay
    /// `prop_delay`.
    pub fn new(mbps: u64, prop_delay: SimTime) -> Self {
        assert!(mbps > 0, "link rate must be positive");
        Link {
            bits_per_sec: mbps * 1_000_000,
            prop_delay,
            next_free: SimTime::ZERO,
            bytes_carried: 0,
            busy: SimTime::ZERO,
        }
    }

    /// Time to clock `bytes` onto the wire at this link's rate.
    pub fn serialization(&self, bytes: usize) -> SimTime {
        // ps = bits * 1e12 / bps, computed in u128 to avoid overflow.
        let bits = bytes as u128 * 8;
        SimTime::from_ps((bits * 1_000_000_000_000 / self.bits_per_sec as u128) as u64)
    }

    /// Transmit `bytes` that become ready at `ready`; returns the time the
    /// last bit arrives at the far end (store-and-forward).
    pub fn transmit(&mut self, ready: SimTime, bytes: usize) -> SimTime {
        let start = ready.max(self.next_free);
        let ser = self.serialization(bytes);
        let end_tx = start + ser;
        self.next_free = end_tx;
        self.bytes_carried += bytes as u64;
        self.busy += ser;
        end_tx + self.prop_delay
    }

    /// Earliest time a new transmission could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total bytes carried since construction.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Cumulative serialisation (wire-occupancy) time since construction.
    /// The utilization profiler samples this as a virtual-time gauge:
    /// delta over interval = link occupancy fraction.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Propagation delay of this link.
    pub fn prop_delay(&self) -> SimTime {
        self.prop_delay
    }

    /// Restore mutable state captured with
    /// [`crate::state::LinkState`]-producing `snapshot_state`.
    pub fn restore_state(&mut self, s: &crate::state::LinkState) {
        self.next_free = s.next_free;
        self.bytes_carried = s.bytes_carried;
        self.busy = s.busy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_at_622mbps() {
        let link = Link::new(622, SimTime::ZERO);
        // One 53-byte cell: 424 bits / 622 Mb/s = 681.67 ns.
        let t = link.serialization(53);
        assert!(
            t >= SimTime::from_ns(681) && t <= SimTime::from_ns(682),
            "{t:?}"
        );
    }

    #[test]
    fn back_to_back_cells_queue() {
        let mut link = Link::new(622, SimTime::from_ns(150));
        let cell = 53;
        let a1 = link.transmit(SimTime::ZERO, cell);
        let a2 = link.transmit(SimTime::ZERO, cell);
        let ser = link.serialization(cell);
        assert_eq!(a1, ser + SimTime::from_ns(150));
        assert_eq!(a2, ser + ser + SimTime::from_ns(150));
        assert_eq!(link.bytes_carried(), 106);
        // Occupancy accumulates serialisation time only, not queueing or
        // propagation.
        assert_eq!(link.busy_time(), ser + ser);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = Link::new(1000, SimTime::ZERO);
        let later = SimTime::from_us(5);
        let arrival = link.transmit(later, 125); // 1000 bits at 1 Gb/s = 1 us
        assert_eq!(arrival, later + SimTime::from_us(1));
    }
}
