//! Banyan switch fabric model.
//!
//! The paper's switch latencies come from "a 32-port banyan-network based
//! ATM switch model". A banyan network for `N = 2^k` ports is `k` stages of
//! 2×2 crossbars routed by destination-tag bits; a cell from any input to a
//! given output traverses exactly one internal link per stage, and two cells
//! contend when their paths share such a link. We model each internal link
//! with a next-free-time register (one new cell per cell-time) and split the
//! quoted end-to-end switch latency evenly across the stages.

use cni_sim::SimTime;

/// A multistage banyan switch with virtual cut-through forwarding: a
/// cell's head advances as soon as each stage link is free, and the link
/// stays occupied for the cell's serialisation time behind it.
#[derive(Clone, Debug)]
pub struct BanyanSwitch {
    ports: usize,
    stages: usize,
    stage_latency: SimTime,
    /// `next_free[stage][link]`: earliest time the link after `stage` can
    /// accept a new cell.
    next_free: Vec<Vec<SimTime>>,
    cells_forwarded: u64,
    contention_waits: u64,
}

impl BanyanSwitch {
    /// A switch with `ports` ports (power of two) and a total fall-through
    /// latency of `switch_latency`.
    pub fn new(ports: usize, switch_latency: SimTime) -> Self {
        assert!(
            ports.is_power_of_two() && ports >= 2,
            "ports must be a power of two >= 2"
        );
        let stages = ports.trailing_zeros() as usize;
        BanyanSwitch {
            ports,
            stages,
            stage_latency: SimTime::from_ps(switch_latency.as_ps() / stages as u64),
            next_free: vec![vec![SimTime::ZERO; ports]; stages],
            cells_forwarded: 0,
            contention_waits: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of crossbar stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The internal link index a `src`→`dst` cell occupies after `stage`.
    ///
    /// Destination-tag routing: after stage `s` the cell's current address
    /// has its top `s+1` bits replaced by the destination's top `s+1` bits.
    fn stage_link(&self, stage: usize, src: usize, dst: usize) -> usize {
        let k = self.stages;
        let high_bits = stage + 1;
        let low_mask = (1usize << (k - high_bits)) - 1;
        let high = dst >> (k - high_bits) << (k - high_bits);
        high | (src & low_mask)
    }

    /// Forward one cell whose *head* arrives at the switch input at
    /// `arrival` and whose body occupies each traversed link for
    /// `occupancy` (its serialisation time). Returns the time the head
    /// leaves the last stage.
    pub fn forward(
        &mut self,
        arrival: SimTime,
        src: usize,
        dst: usize,
        occupancy: SimTime,
    ) -> SimTime {
        debug_assert!(src < self.ports && dst < self.ports, "port out of range");
        let mut t = arrival;
        for stage in 0..self.stages {
            let link = self.stage_link(stage, src, dst);
            let free = self.next_free[stage][link];
            if free > t {
                self.contention_waits += 1;
                t = free;
            }
            self.next_free[stage][link] = t + occupancy;
            t += self.stage_latency;
        }
        self.cells_forwarded += 1;
        t
    }

    /// Total cells forwarded.
    pub fn cells_forwarded(&self) -> u64 {
        self.cells_forwarded
    }

    /// How many stage traversals had to wait on a busy internal link.
    pub fn contention_waits(&self) -> u64 {
        self.contention_waits
    }

    /// Capture the switch's mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> crate::state::SwitchState {
        crate::state::SwitchState {
            next_free: self.next_free.clone(),
            cells_forwarded: self.cells_forwarded,
            contention_waits: self.contention_waits,
        }
    }

    /// Restore state captured with [`BanyanSwitch::snapshot_state`] into a
    /// switch of the same topology. Returns `Err` (never panics) when the
    /// snapshot's stage/link matrix does not match.
    pub fn restore_state(&mut self, s: &crate::state::SwitchState) -> Result<(), String> {
        if s.next_free.len() != self.stages || s.next_free.iter().any(|row| row.len() != self.ports)
        {
            return Err(format!(
                "switch snapshot shape {}x{:?} does not match {} stages of {} links",
                s.next_free.len(),
                s.next_free.first().map(Vec::len),
                self.stages,
                self.ports
            ));
        }
        self.next_free = s.next_free.clone();
        self.cells_forwarded = s.cells_forwarded;
        self.contention_waits = s.contention_waits;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELL: SimTime = SimTime(682_000); // 682 ns occupancy

    fn sw() -> BanyanSwitch {
        BanyanSwitch::new(32, SimTime::from_ns(500))
    }

    #[test]
    fn stage_count_and_latency_split() {
        let s = sw();
        assert_eq!(s.stages(), 5);
        assert_eq!(s.stage_latency, SimTime::from_ns(100));
    }

    #[test]
    fn uncontended_forward_takes_switch_latency() {
        let mut s = sw();
        let out = s.forward(SimTime::from_us(1), 3, 17, CELL);
        assert_eq!(out, SimTime::from_us(1) + SimTime::from_ns(500));
        assert_eq!(s.contention_waits(), 0);
        assert_eq!(s.cells_forwarded(), 1);
    }

    #[test]
    fn same_output_contends() {
        let mut s = sw();
        let a = s.forward(SimTime::ZERO, 0, 9, CELL);
        let b = s.forward(SimTime::ZERO, 1, 9, CELL);
        // Both cells need the final-stage link to port 9, so the second is
        // pushed back by at least one cell time somewhere along the path.
        assert!(b > a, "second cell must be delayed: {a:?} vs {b:?}");
        assert!(s.contention_waits() > 0);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut s = sw();
        // src/dst pairs chosen so every stage link differs (dst bits and
        // src low bits all distinct).
        let a = s.forward(SimTime::ZERO, 0, 0, CELL);
        let b = s.forward(SimTime::ZERO, 31, 31, CELL);
        assert_eq!(a, b);
        assert_eq!(s.contention_waits(), 0);
    }

    #[test]
    fn stage_link_converges_to_destination() {
        let s = sw();
        // After the final stage the link index must equal the destination.
        for src in 0..32 {
            for dst in [0usize, 7, 16, 31] {
                assert_eq!(s.stage_link(s.stages() - 1, src, dst), dst);
            }
        }
    }

    #[test]
    fn stage_link_first_stage_uses_top_dst_bit() {
        let s = sw();
        // After stage 0, the top bit is the destination's; the rest is src.
        assert_eq!(s.stage_link(0, 0b01010, 0b10000), 0b11010);
        assert_eq!(s.stage_link(0, 0b01010, 0b00000), 0b01010);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BanyanSwitch::new(12, SimTime::from_ns(500));
    }
}
