//! ATM cells.
//!
//! A standard ATM cell is 53 bytes: a 5-byte header and a 48-byte payload.
//! We model the header fields that matter to the CNI design — the VCI used
//! for connection demultiplexing, the AAL5 end-of-PDU indication carried in
//! the payload-type field, and the cell-loss-priority bit — and keep the
//! payload as a reference-counted [`PduBuf`] view, so a cell borrows its
//! slice of the segmented PDU image instead of owning a copy. The *unrestricted cell size* experiment of the
//! paper's Table 5 is supported by allowing payloads larger than 48 bytes;
//! [`Cell::is_jumbo`] reports when a cell exceeds the standard size.

use crate::buf::PduBuf;
use serde::{Deserialize, Serialize};

/// Bytes in a standard ATM cell header.
pub const ATM_HEADER_BYTES: usize = 5;
/// Bytes of payload in a standard ATM cell.
pub const ATM_PAYLOAD_BYTES: usize = 48;
/// Total bytes in a standard ATM cell.
pub const ATM_CELL_BYTES: usize = ATM_HEADER_BYTES + ATM_PAYLOAD_BYTES;

/// The modelled fields of an ATM cell header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellHeader {
    /// Virtual channel identifier: selects the connection (and, in the
    /// OSIRIS design, implicitly the application) this cell belongs to.
    pub vci: u16,
    /// AAL5 end-of-PDU marker (payload-type bit 0).
    pub end_of_pdu: bool,
    /// Cell loss priority: low-priority cells are dropped first under
    /// congestion.
    pub clp: bool,
}

impl CellHeader {
    /// Encode the modelled fields into the 5 header bytes.
    ///
    /// Layout (simplified UNI format): bytes 0–1 carry the VCI, byte 2
    /// carries PT/CLP flags, byte 3 is reserved, byte 4 is the HEC slot
    /// (computed as a simple XOR checksum of bytes 0–3 here; real ATM uses
    /// a CRC-8, but nothing in the simulation depends on its algebra).
    pub fn encode(&self) -> [u8; ATM_HEADER_BYTES] {
        let mut h = [0u8; ATM_HEADER_BYTES];
        h[0] = (self.vci >> 8) as u8;
        h[1] = self.vci as u8;
        h[2] = (self.end_of_pdu as u8) | ((self.clp as u8) << 1);
        h[3] = 0;
        h[4] = h[0] ^ h[1] ^ h[2] ^ h[3];
        h
    }

    /// Decode header bytes; returns `None` if the HEC check fails.
    pub fn decode(h: &[u8; ATM_HEADER_BYTES]) -> Option<CellHeader> {
        if h[4] != h[0] ^ h[1] ^ h[2] ^ h[3] {
            return None;
        }
        Some(CellHeader {
            vci: ((h[0] as u16) << 8) | h[1] as u16,
            end_of_pdu: h[2] & 1 != 0,
            clp: h[2] & 2 != 0,
        })
    }
}

/// An ATM cell: header plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Header fields.
    pub header: CellHeader,
    /// Payload bytes. Exactly [`ATM_PAYLOAD_BYTES`] for standard cells;
    /// longer for jumbo cells in the unrestricted-cell-size experiment.
    pub payload: PduBuf,
}

impl Cell {
    /// Build a cell on `vci` carrying `payload`.
    pub fn new(vci: u16, end_of_pdu: bool, payload: PduBuf) -> Self {
        Cell {
            header: CellHeader {
                vci,
                end_of_pdu,
                clp: false,
            },
            payload,
        }
    }

    /// Total on-the-wire size of this cell in bytes (header + payload).
    pub fn wire_bytes(&self) -> usize {
        ATM_HEADER_BYTES + self.payload.len()
    }

    /// True when the payload exceeds the standard 48 bytes (unrestricted
    /// cell-size mode).
    pub fn is_jumbo(&self) -> bool {
        self.payload.len() > ATM_PAYLOAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        for vci in [0u16, 1, 255, 256, 0xABCD, u16::MAX] {
            for eop in [false, true] {
                for clp in [false, true] {
                    let h = CellHeader {
                        vci,
                        end_of_pdu: eop,
                        clp,
                    };
                    let enc = h.encode();
                    assert_eq!(CellHeader::decode(&enc), Some(h));
                }
            }
        }
    }

    #[test]
    fn corrupted_header_fails_hec() {
        let h = CellHeader {
            vci: 42,
            end_of_pdu: true,
            clp: false,
        };
        let mut enc = h.encode();
        enc[1] ^= 0x10;
        assert_eq!(CellHeader::decode(&enc), None);
    }

    #[test]
    fn wire_size_and_jumbo() {
        let std_cell = Cell::new(7, false, PduBuf::from_vec(vec![0u8; ATM_PAYLOAD_BYTES]));
        assert_eq!(std_cell.wire_bytes(), ATM_CELL_BYTES);
        assert!(!std_cell.is_jumbo());
        let jumbo = Cell::new(7, true, PduBuf::from_vec(vec![0u8; 4096]));
        assert_eq!(jumbo.wire_bytes(), 4096 + ATM_HEADER_BYTES);
        assert!(jumbo.is_jumbo());
    }

    #[test]
    fn standard_constants() {
        assert_eq!(ATM_CELL_BYTES, 53);
        assert_eq!(ATM_PAYLOAD_BYTES, 48);
    }
}
