//! Reference-counted PDU buffers: the zero-copy spine of the cell path.
//!
//! A [`PduBuf`] is a cheaply cloneable view (offset + length) into shared,
//! immutable backing storage. Segmentation builds one PDU image and hands
//! each cell a *view* of it; reassembly accumulates into a buffer drawn
//! from a [`BufPool`] and freezes it into a `PduBuf` without copying. The
//! only byte copies left on the data path are the two that are inherent to
//! the model — gathering scattered cell payloads on receive, and building
//! the padded PDU image on transmit.
//!
//! Fault injection keeps its copy-on-write discipline through
//! [`PduBuf::xor_bit`]: flipping a bit in one cell's payload materialises a
//! private copy of *that view only*; every other cell keeps sharing the
//! original storage.
//!
//! The view/split methods (`view`, `chunks`, `xor_bit`) are on the
//! protocol receive path and therefore inside cni-lint rule P1's scope: no
//! panicking slice indexing — out-of-range requests return `None` or
//! saturate, they never bring the simulation down.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, reference-counted byte buffer view.
///
/// Cloning shares the backing storage and costs one atomic increment;
/// [`PduBuf::view`] produces sub-views without copying. Equality and
/// hashing follow the viewed bytes, not the storage identity.
#[derive(Clone, Default)]
pub struct PduBuf {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl PduBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        PduBuf::default()
    }

    /// Take ownership of `v` as backing storage. No bytes are copied: the
    /// vector moves behind the reference count as-is.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        PduBuf {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Copy `data` into fresh backing storage.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        PduBuf::from_vec(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        // The constructors uphold start <= end <= data.len(); `get` keeps
        // this panic-free even if that invariant were ever broken.
        self.data.get(self.start..self.end).unwrap_or(&[])
    }

    /// A sub-view of `len` bytes starting at `offset` (relative to this
    /// view). Shares storage — no copy. Returns `None` when the requested
    /// range does not fit inside this view.
    pub fn view(&self, offset: usize, len: usize) -> Option<PduBuf> {
        let start = self.start.checked_add(offset)?;
        let end = start.checked_add(len)?;
        if end > self.end {
            return None;
        }
        Some(PduBuf {
            data: Arc::clone(&self.data),
            start,
            end,
        })
    }

    /// Split the view into consecutive chunks of `chunk` bytes (the last
    /// chunk may be shorter). Each chunk shares storage with `self`.
    /// An empty iterator when `chunk` is zero.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = PduBuf> + '_ {
        let n = if chunk == 0 {
            0
        } else {
            self.len().div_ceil(chunk)
        };
        (0..n).filter_map(move |i| {
            let off = i * chunk;
            self.view(off, chunk.min(self.len() - off))
        })
    }

    /// Flip bit `bit & 7` of the byte at `byte` (clamped to the last byte
    /// of the view; a no-op on an empty view), copying this view's bytes
    /// into private storage first if the backing is shared.
    ///
    /// This is the fault injector's corruption primitive: only the cell
    /// views a `FaultPlan` actually corrupts pay for a copy.
    pub fn xor_bit(&mut self, byte: usize, bit: u8) {
        if self.is_empty() {
            return;
        }
        let idx = byte.min(self.len() - 1);
        let mut v = self.as_slice().to_vec();
        if let Some(b) = v.get_mut(idx) {
            *b ^= 1 << (bit & 7);
        }
        *self = PduBuf::from_vec(v);
    }

    /// Recover the backing vector when this handle is the storage's sole
    /// owner (even a partial view — the storage is unreachable by anyone
    /// else, and the pool clears it before reuse). A shared buffer is
    /// returned unchanged. Used by [`BufPool::recycle`] to reclaim storage
    /// without copying.
    fn into_storage(self) -> Result<Vec<u8>, PduBuf> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(v),
            Err(data) => Err(PduBuf {
                data,
                start: self.start,
                end: self.end,
            }),
        }
    }
}

impl Deref for PduBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PduBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for PduBuf {
    fn from(v: Vec<u8>) -> Self {
        PduBuf::from_vec(v)
    }
}

impl PartialEq for PduBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for PduBuf {}

impl PartialEq<[u8]> for PduBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for PduBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for PduBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PduBuf({} bytes @ {}..{})",
            self.len(),
            self.start,
            self.end
        )
    }
}

/// A freelist of reusable byte buffers for the reassembly path.
///
/// Reassembly needs one growable buffer per in-flight PDU; without a pool
/// every frame pays a heap allocation (and, under retransmission storms,
/// one per attempt). The pool retains up to a configurable number of
/// vectors — the *buffer-pool knob*, see DESIGN.md §4.1 — and hands them
/// back cleared but with their capacity intact.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    retain: usize,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

impl BufPool {
    /// Default maximum number of retained buffers.
    pub const DEFAULT_RETAIN: usize = 32;

    /// A pool retaining up to [`BufPool::DEFAULT_RETAIN`] buffers.
    pub fn new() -> Self {
        BufPool::with_retain(Self::DEFAULT_RETAIN)
    }

    /// A pool retaining up to `retain` buffers (0 disables pooling).
    pub fn with_retain(retain: usize) -> Self {
        BufPool {
            free: Vec::new(),
            retain,
        }
    }

    /// An empty buffer with at least `capacity` bytes reserved, reusing
    /// retained storage when available.
    pub fn acquire(&mut self, capacity: usize) -> Vec<u8> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        v.reserve(capacity.saturating_sub(v.capacity()));
        v
    }

    /// Return a vector's storage to the pool.
    pub fn recycle_vec(&mut self, v: Vec<u8>) {
        if self.free.len() < self.retain && v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Reclaim a [`PduBuf`]'s storage if `buf` is its sole owner (a shared
    /// or partial view is simply dropped).
    pub fn recycle(&mut self, buf: PduBuf) {
        if let Ok(v) = buf.into_storage() {
            self.recycle_vec(v);
        }
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_does_not_copy_and_views_share() {
        let buf = PduBuf::from_vec((0..100u8).collect());
        assert_eq!(buf.len(), 100);
        let v = buf.view(10, 20).expect("in range");
        assert_eq!(&v[..], &(10..30).collect::<Vec<u8>>()[..]);
        // A view of a view composes offsets.
        let vv = v.view(5, 5).expect("in range");
        assert_eq!(&vv[..], &[15, 16, 17, 18, 19]);
    }

    #[test]
    fn out_of_range_views_are_none_not_panics() {
        let buf = PduBuf::from_vec(vec![0u8; 8]);
        assert!(buf.view(0, 9).is_none());
        assert!(buf.view(9, 0).is_none());
        assert!(buf.view(usize::MAX, 1).is_none());
        assert!(buf.view(1, usize::MAX).is_none());
        assert_eq!(buf.view(8, 0).expect("empty tail view").len(), 0);
    }

    #[test]
    fn chunks_cover_exactly_once() {
        let buf = PduBuf::from_vec((0..100u8).collect());
        let chunks: Vec<PduBuf> = buf.chunks(48).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 48);
        assert_eq!(chunks[1].len(), 48);
        assert_eq!(chunks[2].len(), 4);
        let glued: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(glued, (0..100u8).collect::<Vec<u8>>());
        assert_eq!(buf.chunks(0).count(), 0);
    }

    #[test]
    fn xor_bit_is_cow() {
        let buf = PduBuf::from_vec(vec![0u8; 48]);
        let mut corrupted = buf.view(0, 48).expect("full view");
        corrupted.xor_bit(3, 10); // bit 10 & 7 == 2
        assert_eq!(corrupted[3], 1 << 2);
        // Original storage untouched.
        assert_eq!(buf[3], 0);
        // Clamping: byte index past the end hits the last byte.
        let mut tail = PduBuf::from_vec(vec![0u8; 4]);
        tail.xor_bit(999, 0);
        assert_eq!(tail[3], 1);
        // Empty views ignore corruption.
        let mut empty = PduBuf::new();
        empty.xor_bit(0, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn pool_reuses_storage() {
        let mut pool = BufPool::with_retain(2);
        let mut v = pool.acquire(1024);
        assert!(v.capacity() >= 1024);
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        pool.recycle_vec(v);
        assert_eq!(pool.retained(), 1);
        let v2 = pool.acquire(16);
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn pool_recycles_sole_owner_pdubufs_only() {
        let mut pool = BufPool::with_retain(4);
        let buf = PduBuf::from_vec(vec![0u8; 64]);
        let clone = buf.clone();
        pool.recycle(buf); // shared: dropped, not retained
        assert_eq!(pool.retained(), 0);
        pool.recycle(clone); // now sole owner
        assert_eq!(pool.retained(), 1);
        // A partial view that is the last owner still donates its storage:
        // nothing else can reach the buffer once the Arc count hits one.
        let buf = PduBuf::from_vec(vec![0u8; 64]);
        let part = buf.view(0, 10).expect("in range");
        drop(buf);
        pool.recycle(part);
        assert_eq!(pool.retained(), 2);
    }

    #[test]
    fn retain_limit_is_enforced() {
        let mut pool = BufPool::with_retain(1);
        pool.recycle_vec(Vec::with_capacity(8));
        pool.recycle_vec(Vec::with_capacity(8));
        assert_eq!(pool.retained(), 1);
        let mut off = BufPool::with_retain(0);
        off.recycle_vec(Vec::with_capacity(8));
        assert_eq!(off.retained(), 0);
    }
}
