//! A fault-injecting cell pipe: the AAL5 data path end to end.
//!
//! [`CellPipe`] pushes PDUs through segmentation, a lossy/corrupting
//! channel, and reassembly. Its contract is the one real AAL5 gives
//! transport protocols: a delivered PDU is *exactly* the transmitted one —
//! cell loss and corruption surface as detected errors (CRC-32 / length
//! check), never as silently wrong data. The property tests in this module
//! drive that contract with arbitrary payloads and fault patterns.

use crate::aal5::{Reassembler, ReassemblyError, Segmenter};
use crate::buf::PduBuf;
use cni_sim::SplitMix64;

/// Channel fault model: per-cell corruption and drop probabilities, in
/// 1/65536 units, driven by a seeded deterministic generator.
#[derive(Clone, Copy, Debug)]
pub struct FaultModel {
    /// Probability (×2⁻¹⁶) that a cell has one payload bit flipped.
    pub corrupt_per_64k: u32,
    /// Probability (×2⁻¹⁶) that a cell is lost entirely.
    pub drop_per_64k: u32,
}

impl FaultModel {
    /// A perfect channel.
    pub fn none() -> Self {
        FaultModel {
            corrupt_per_64k: 0,
            drop_per_64k: 0,
        }
    }
}

/// What came out of the pipe for one transmitted PDU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeOutcome {
    /// The PDU was delivered intact.
    Delivered(PduBuf),
    /// The reassembler rejected the PDU (integrity failure detected).
    Rejected(ReassemblyError),
    /// The end-of-PDU cell was lost; nothing was delivered (the PDU is
    /// pending until a later PDU on the same VCI flushes it as a reject).
    Pending,
}

/// Statistics of one pipe.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipeStats {
    /// PDUs delivered intact.
    pub delivered: u64,
    /// PDUs rejected by integrity checks.
    pub rejected: u64,
    /// PDUs still pending (EOP lost).
    pub pending: u64,
    /// Cells corrupted by the channel.
    pub cells_corrupted: u64,
    /// Cells dropped by the channel.
    pub cells_dropped: u64,
}

/// Segmentation → faulty channel → reassembly.
///
/// ```
/// use cni_atm::{CellPipe, FaultModel, PipeOutcome};
///
/// let mut pipe = CellPipe::new(FaultModel::none(), 7);
/// match pipe.transfer(3, b"hello cluster") {
///     PipeOutcome::Delivered(pdu) => assert_eq!(&pdu[..], b"hello cluster"),
///     other => panic!("{other:?}"),
/// }
/// ```
pub struct CellPipe {
    segmenter: Segmenter,
    reassembler: Reassembler,
    faults: FaultModel,
    rng: SplitMix64,
    stats: PipeStats,
}

impl CellPipe {
    /// A pipe with standard 48-byte cells and the given fault model.
    pub fn new(faults: FaultModel, seed: u64) -> Self {
        CellPipe {
            segmenter: Segmenter::standard(),
            reassembler: Reassembler::new(),
            faults,
            rng: SplitMix64::new(seed),
            stats: PipeStats::default(),
        }
    }

    /// Transfer one PDU over `vci`.
    pub fn transfer(&mut self, vci: u16, data: &[u8]) -> PipeOutcome {
        let cells = self.segmenter.segment(vci, data);
        let mut outcome = PipeOutcome::Pending;
        for mut cell in cells {
            if (self.rng.next_u64() & 0xFFFF) < self.faults.drop_per_64k as u64 {
                self.stats.cells_dropped += 1;
                continue;
            }
            if (self.rng.next_u64() & 0xFFFF) < self.faults.corrupt_per_64k as u64 {
                self.stats.cells_corrupted += 1;
                let byte = (self.rng.next_below(cell.payload.len() as u64)) as usize;
                let bit = (self.rng.next_below(8)) as u8;
                // Copy-on-write: only this corrupted cell materialises a
                // private copy; the rest of the train keeps sharing the
                // segmented image.
                cell.payload.xor_bit(byte, bit);
            }
            if let Some(done) = self.reassembler.push(&cell) {
                outcome = match done {
                    Ok(pdu) => PipeOutcome::Delivered(pdu),
                    Err(e) => PipeOutcome::Rejected(e),
                };
            }
        }
        match &outcome {
            PipeOutcome::Delivered(_) => self.stats.delivered += 1,
            PipeOutcome::Rejected(_) => self.stats.rejected += 1,
            PipeOutcome::Pending => self.stats.pending += 1,
        }
        outcome
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PipeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_delivers_everything() {
        let mut pipe = CellPipe::new(FaultModel::none(), 1);
        for len in [0usize, 1, 48, 100, 2048, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            match pipe.transfer(7, &data) {
                PipeOutcome::Delivered(pdu) => assert_eq!(&pdu[..], &data[..]),
                other => panic!("clean channel produced {other:?}"),
            }
        }
        assert_eq!(pipe.stats().delivered, 6);
        assert_eq!(pipe.stats().rejected, 0);
    }

    #[test]
    fn always_corrupting_channel_is_always_detected() {
        let mut pipe = CellPipe::new(
            FaultModel {
                corrupt_per_64k: 0x10000,
                drop_per_64k: 0,
            },
            2,
        );
        for _ in 0..50 {
            match pipe.transfer(3, &[0xAB; 500]) {
                PipeOutcome::Rejected(ReassemblyError::CrcMismatch) => {}
                other => panic!("corruption escaped detection: {other:?}"),
            }
        }
        assert_eq!(pipe.stats().rejected, 50);
        assert!(pipe.stats().cells_corrupted >= 50);
    }

    #[test]
    fn dropping_everything_delivers_nothing() {
        let mut pipe = CellPipe::new(
            FaultModel {
                corrupt_per_64k: 0,
                drop_per_64k: 0x10000,
            },
            3,
        );
        assert_eq!(pipe.transfer(1, &[1; 300]), PipeOutcome::Pending);
        assert_eq!(pipe.stats().pending, 1);
    }

    #[test]
    fn lost_eop_surfaces_on_the_next_pdu() {
        // Drop exactly the final cell of the first PDU by hand: send a
        // second PDU on the same VCI and watch the merged mess get
        // rejected, never delivered as wrong data.
        let seg = Segmenter::standard();
        let mut rx = Reassembler::new();
        let first = seg.segment(5, &[1u8; 200]);
        for cell in &first[..first.len() - 1] {
            assert!(rx.push(cell).is_none());
        }
        let second = seg.segment(5, &[2u8; 200]);
        let mut outcome = None;
        for cell in &second {
            if let Some(r) = rx.push(cell) {
                outcome = Some(r);
            }
        }
        match outcome {
            Some(Err(_)) => {}
            Some(Ok(pdu)) => panic!("merged PDUs delivered as data: {} bytes", pdu.len()),
            None => panic!("second PDU never completed"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The AAL5 contract under arbitrary faults: whatever comes out
        /// `Delivered` equals what went in — loss and corruption may cost
        /// delivery, never integrity.
        #[test]
        fn no_silent_corruption(
            seed in any::<u64>(),
            corrupt in 0u32..0x8000,
            drop in 0u32..0x8000,
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 1..20),
        ) {
            let mut pipe = CellPipe::new(
                FaultModel { corrupt_per_64k: corrupt, drop_per_64k: drop },
                seed,
            );
            for (i, data) in payloads.iter().enumerate() {
                // A fresh VCI per PDU isolates pending fragments.
                if let PipeOutcome::Delivered(pdu) = pipe.transfer(i as u16, data) {
                    prop_assert_eq!(&pdu[..], &data[..]);
                }
            }
        }

        /// A clean channel is lossless for every size.
        #[test]
        fn clean_channel_is_identity(
            data in proptest::collection::vec(any::<u8>(), 0..5000),
        ) {
            let mut pipe = CellPipe::new(FaultModel::none(), 0);
            match pipe.transfer(9, &data) {
                PipeOutcome::Delivered(pdu) => prop_assert_eq!(&pdu[..], &data[..]),
                other => prop_assert!(false, "clean channel produced {:?}", other),
            }
        }
    }
}
