//! The full interconnect seen by a NIC: access links + banyan switch +
//! AAL5 segmentation, with cell-accurate pipelined timing.
//!
//! [`Fabric::send_pdu`] answers the question the NIC model asks: "if node
//! `src` starts handing cells of an `n`-byte PDU to the wire at time `t`
//! (one cell every `cell_gap` of NIC processing), when does each cell — and
//! the whole PDU — arrive at node `dst`?" The computation walks the cells
//! through source link, switch stages and destination link, honouring every
//! next-free-time register, so cross-traffic contention is captured without
//! a per-cell event storm in the simulation kernel.

use crate::aal5::Segmenter;
use crate::link::Link;
use crate::switch::BanyanSwitch;
use crate::topology::Topology;
use cni_faults::{CellFate, FaultInjector};
use cni_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Interconnect parameters (the network rows of the paper's Table 1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AtmConfig {
    /// Switch port count when [`AtmConfig::topology`] is
    /// [`Topology::Single`]; must be a power of two. The paper models a
    /// 32-port banyan switch. Ignored for fat-trees, whose host count
    /// comes from their own shape.
    pub ports: usize,
    /// Link rate in Mb/s (622 = STS-12); access and inter-switch trunk
    /// links run at the same rate.
    pub link_mbps: u64,
    /// End-to-end fall-through latency of each switch (500 ns).
    pub switch_latency: SimTime,
    /// Propagation delay of each access and trunk link ("network
    /// latency", 150 ns).
    pub prop_delay: SimTime,
    /// Cell payload bytes; `None` = unrestricted cell size (Table 5 mode).
    pub cell_payload: Option<usize>,
    /// Arrangement of switches between the hosts (single switch or
    /// 2-level fat-tree); see [`crate::topology`].
    pub topology: Topology,
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig {
            ports: 32,
            link_mbps: 622,
            switch_latency: SimTime::from_ns(500),
            prop_delay: SimTime::from_ns(150),
            cell_payload: Some(crate::cell::ATM_PAYLOAD_BYTES),
            topology: Topology::Single,
        }
    }
}

impl AtmConfig {
    /// The segmenter implied by this configuration.
    pub fn segmenter(&self) -> Segmenter {
        match self.cell_payload {
            Some(p) => Segmenter::with_cell_payload(p),
            None => Segmenter::unrestricted(),
        }
    }

    /// Number of hosts this fabric serves: the switch port count for a
    /// single switch, `leaves * down` for a fat-tree.
    pub fn hosts(&self) -> usize {
        self.topology.hosts(self.ports)
    }

    /// Minimum latency of any cross-host path: two link propagations plus
    /// one switch fall-through. This is the binding minimum for every
    /// topology — a single switch by construction, and a fat-tree on its
    /// same-leaf pairs (longer paths only add trunk hops and switches).
    /// The parallel engine uses it as its conservative lookahead: no cell
    /// handed to the wire at `t` can arrive anywhere before
    /// `t + min_remote_latency()`.
    pub fn min_remote_latency(&self) -> SimTime {
        self.prop_delay + self.prop_delay + self.switch_latency
    }
}

/// Timing of one PDU through the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PduTiming {
    /// Arrival of the first cell at the destination NIC.
    pub first_cell_arrival: SimTime,
    /// Arrival of the last cell (the PDU is deliverable from this moment).
    pub last_cell_arrival: SimTime,
    /// Number of cells the PDU occupied.
    pub cells: usize,
    /// Total bytes placed on the wire (headers + pad + trailer included).
    pub wire_bytes: usize,
}

/// Timing of one PDU through a fabric with fault injection enabled: the
/// per-cell verdicts plus the arrival window of the cells that survived.
#[derive(Clone, Debug)]
pub struct FaultyPduTiming {
    /// Arrival of the earliest surviving cell, if any survived.
    pub first_delivered: Option<SimTime>,
    /// Arrival of the latest surviving cell (reassembly can complete no
    /// earlier than this), if any survived.
    pub last_delivered: Option<SimTime>,
    /// Number of cells the PDU occupied on the wire.
    pub cells: usize,
    /// Total bytes placed on the wire (headers + pad + trailer included).
    pub wire_bytes: usize,
    /// The injector's verdict for each cell, in transmission order.
    pub fates: Vec<CellFate>,
}

impl FaultyPduTiming {
    /// True when the final cell — the one carrying the AAL5 end-of-PDU
    /// marker — reached the destination, so reassembly completes there.
    pub fn eop_delivered(&self) -> bool {
        matches!(self.fates.last(), Some(f) if !f.is_drop())
    }
}

/// The switching core between the access links: the paper's lone banyan,
/// or a fat-tree of leaf/spine banyans joined by trunk links.
pub(crate) enum Interconnect {
    /// Every host port on one banyan switch.
    Single(BanyanSwitch),
    /// 2-level folded Clos (see [`crate::topology`]). Trunk links are
    /// indexed `[leaf * up + spine]` in both directions.
    FatTree {
        down: usize,
        up: usize,
        leaves: Vec<BanyanSwitch>,
        spines: Vec<BanyanSwitch>,
        up_links: Vec<Link>,
        down_links: Vec<Link>,
    },
}

impl Interconnect {
    fn new(cfg: &AtmConfig) -> Self {
        match cfg.topology {
            Topology::Single => {
                Interconnect::Single(BanyanSwitch::new(cfg.ports, cfg.switch_latency))
            }
            Topology::FatTree { leaves, down, up } => Interconnect::FatTree {
                down,
                up,
                leaves: (0..leaves)
                    .map(|_| BanyanSwitch::new(down + up, cfg.switch_latency))
                    .collect(),
                spines: (0..up)
                    .map(|_| BanyanSwitch::new(leaves, cfg.switch_latency))
                    .collect(),
                up_links: (0..leaves * up)
                    .map(|_| Link::new(cfg.link_mbps, cfg.prop_delay))
                    .collect(),
                down_links: (0..leaves * up)
                    .map(|_| Link::new(cfg.link_mbps, cfg.prop_delay))
                    .collect(),
            },
        }
    }

    /// Walk one cell's head through the switching core. The head enters
    /// at `head_at_switch`; each traversed switch stage and trunk link
    /// stays occupied for `occupancy`/its serialisation time behind it.
    /// Returns the time the head exits the last switch. The single-switch
    /// arm is exactly the pre-topology recurrence, so existing timing is
    /// bit-identical.
    fn forward_head(
        &mut self,
        head_at_switch: SimTime,
        src: usize,
        dst: usize,
        occupancy: SimTime,
        per_cell_bytes: usize,
    ) -> SimTime {
        match self {
            Interconnect::Single(sw) => sw.forward(head_at_switch, src, dst, occupancy),
            Interconnect::FatTree {
                down,
                up,
                leaves,
                spines,
                up_links,
                down_links,
            } => {
                let (down, up) = (*down, *up);
                let src_leaf = src / down;
                let dst_leaf = dst / down;
                if src_leaf == dst_leaf {
                    // Same-leaf traffic never leaves the leaf banyan.
                    return leaves[src_leaf].forward(
                        head_at_switch,
                        src % down,
                        dst % down,
                        occupancy,
                    );
                }
                // D-mod-k: the spine is a pure function of the destination,
                // so the route is unique and deterministic.
                let spine = dst % up;
                let t_leaf =
                    leaves[src_leaf].forward(head_at_switch, src % down, down + spine, occupancy);
                let ul = &mut up_links[src_leaf * up + spine];
                let head_up = t_leaf.max(ul.next_free()) + ul.prop_delay();
                ul.transmit(t_leaf, per_cell_bytes);
                let t_spine = spines[spine].forward(head_up, src_leaf, dst_leaf, occupancy);
                let dl = &mut down_links[dst_leaf * up + spine];
                let head_down = t_spine.max(dl.next_free()) + dl.prop_delay();
                dl.transmit(t_spine, per_cell_bytes);
                leaves[dst_leaf].forward(head_down, down + spine, dst % down, occupancy)
            }
        }
    }

    fn cells_forwarded(&self) -> u64 {
        match self {
            Interconnect::Single(sw) => sw.cells_forwarded(),
            Interconnect::FatTree { leaves, spines, .. } => leaves
                .iter()
                .chain(spines.iter())
                .map(BanyanSwitch::cells_forwarded)
                .sum(),
        }
    }

    fn contention_waits(&self) -> u64 {
        match self {
            Interconnect::Single(sw) => sw.contention_waits(),
            Interconnect::FatTree { leaves, spines, .. } => leaves
                .iter()
                .chain(spines.iter())
                .map(BanyanSwitch::contention_waits)
                .sum(),
        }
    }
}

/// The interconnect: one ingress and one egress access link per host plus
/// the switching core — a single banyan switch or a fat-tree of them,
/// per [`Topology`] — between them.
pub struct Fabric {
    cfg: AtmConfig,
    segmenter: Segmenter,
    ingress: Vec<Link>,
    egress: Vec<Link>,
    interconnect: Interconnect,
    pdus_sent: u64,
}

impl Fabric {
    /// Build a fabric from configuration. Panics when the topology shape
    /// violates the banyan building block's constraints (construction
    /// time only; see [`Topology::validate`]).
    pub fn new(cfg: AtmConfig) -> Self {
        if let Err(e) = cfg.topology.validate(cfg.ports) {
            panic!("invalid fabric topology: {e}");
        }
        let hosts = cfg.hosts();
        Fabric {
            segmenter: cfg.segmenter(),
            ingress: (0..hosts)
                .map(|_| Link::new(cfg.link_mbps, cfg.prop_delay))
                .collect(),
            egress: (0..hosts)
                .map(|_| Link::new(cfg.link_mbps, cfg.prop_delay))
                .collect(),
            interconnect: Interconnect::new(&cfg),
            pdus_sent: 0,
            cfg,
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &AtmConfig {
        &self.cfg
    }

    /// The segmenter used for PDUs on this fabric.
    pub fn segmenter(&self) -> Segmenter {
        self.segmenter
    }

    /// Send a `pdu_len`-byte PDU from `src` to `dst`. The sending NIC makes
    /// cell `i` available at `start + i * cell_gap` (`cell_gap` models
    /// per-cell segmentation work on the NIC processor).
    pub fn send_pdu(
        &mut self,
        start: SimTime,
        src: usize,
        dst: usize,
        pdu_len: usize,
        cell_gap: SimTime,
    ) -> PduTiming {
        debug_assert!(
            src < self.cfg.hosts() && dst < self.cfg.hosts(),
            "host out of range"
        );
        debug_assert_ne!(src, dst, "PDU to self does not traverse the fabric");
        let cells = self.segmenter.cell_count(pdu_len);
        let wire_bytes = self.segmenter.wire_bytes(pdu_len);
        // Cell size on the wire: equal split of the PDU across cells.
        let per_cell_bytes = wire_bytes / cells;
        let ser = self.ingress[src].serialization(per_cell_bytes);
        // Internal-link occupancy: a standard cell blocks a banyan link for
        // its serialisation time. The paper's unrestricted-cell-size mode
        // is a *mythical* network with "the same characteristics as ATM but
        // with unlimited cell size" — it removes the fragmentation tax, not
        // interleaving, so a jumbo cell is not allowed to monopolise the
        // switch for its whole (multi-microsecond) length.
        let std_cell = self.ingress[src].serialization(crate::cell::ATM_CELL_BYTES);
        let occupancy = ser.min(std_cell);
        let prop = self.cfg.prop_delay;
        let mut first = SimTime::MAX;
        let mut last = SimTime::ZERO;
        for i in 0..cells {
            let ready = start + SimTime::from_ps(cell_gap.as_ps() * i as u64);
            // Virtual cut-through: the cell's head advances through
            // ingress link → switch stages → egress link as soon as each is
            // free; each hop stays occupied for one serialisation time
            // behind the head, and the last bit trails the head by `ser`.
            let head_start = ready.max(self.ingress[src].next_free());
            self.ingress[src].transmit(ready, per_cell_bytes);
            let head_at_switch = head_start + prop;
            let head_exit =
                self.interconnect
                    .forward_head(head_at_switch, src, dst, occupancy, per_cell_bytes);
            let head_egress = head_exit.max(self.egress[dst].next_free());
            self.egress[dst].transmit(head_egress, per_cell_bytes);
            let arrival = head_egress + ser + prop;
            first = first.min(arrival);
            last = last.max(arrival);
        }
        self.pdus_sent += 1;
        PduTiming {
            first_cell_arrival: first,
            last_cell_arrival: last,
            cells,
            wire_bytes,
        }
    }

    /// [`Fabric::send_pdu`] with fault injection: each cell asks the
    /// injector for its fate as it enters the fabric. A dropped cell still
    /// occupies the ingress link (the NIC did transmit it) but is discarded
    /// at the switch input and never touches the switch stages or the
    /// egress link; a corrupted cell travels the full path with normal
    /// timing; a delivered cell may additionally be delayed by the plan's
    /// latency jitter. With a zero plan this walks the exact same timing
    /// recurrence as `send_pdu` and consumes no RNG draws.
    pub fn send_pdu_faulty(
        &mut self,
        start: SimTime,
        src: usize,
        dst: usize,
        pdu_len: usize,
        cell_gap: SimTime,
        inj: &mut FaultInjector,
    ) -> FaultyPduTiming {
        debug_assert!(
            src < self.cfg.hosts() && dst < self.cfg.hosts(),
            "host out of range"
        );
        debug_assert_ne!(src, dst, "PDU to self does not traverse the fabric");
        let cells = self.segmenter.cell_count(pdu_len);
        let wire_bytes = self.segmenter.wire_bytes(pdu_len);
        let per_cell_bytes = wire_bytes / cells;
        let per_cell_payload = per_cell_bytes - crate::cell::ATM_HEADER_BYTES;
        let ser = self.ingress[src].serialization(per_cell_bytes);
        let std_cell = self.ingress[src].serialization(crate::cell::ATM_CELL_BYTES);
        let occupancy = ser.min(std_cell);
        let prop = self.cfg.prop_delay;
        let mut first: Option<SimTime> = None;
        let mut last: Option<SimTime> = None;
        let mut fates = Vec::with_capacity(cells);
        for i in 0..cells {
            let ready = start + SimTime::from_ps(cell_gap.as_ps() * i as u64);
            let head_start = ready.max(self.ingress[src].next_free());
            self.ingress[src].transmit(ready, per_cell_bytes);
            let fate = inj.cell_fate(head_start.as_ps(), src, per_cell_payload);
            fates.push(fate);
            if fate.is_drop() {
                continue;
            }
            let head_at_switch = head_start + prop;
            let head_exit =
                self.interconnect
                    .forward_head(head_at_switch, src, dst, occupancy, per_cell_bytes);
            let head_egress = head_exit.max(self.egress[dst].next_free());
            self.egress[dst].transmit(head_egress, per_cell_bytes);
            let arrival = head_egress + ser + prop + SimTime::from_ps(inj.jitter_ps());
            first = Some(first.map_or(arrival, |f| f.min(arrival)));
            last = Some(last.map_or(arrival, |l| l.max(arrival)));
        }
        self.pdus_sent += 1;
        FaultyPduTiming {
            first_delivered: first,
            last_delivered: last,
            cells,
            wire_bytes,
            fates,
        }
    }

    /// Total PDUs sent through the fabric.
    pub fn pdus_sent(&self) -> u64 {
        self.pdus_sent
    }

    /// Cumulative wire-occupancy time of `port`'s access links since
    /// construction: `(ingress, egress)` serialisation totals. Sampled by
    /// the utilization profiler; deltas over an interval give the link
    /// occupancy fraction.
    pub fn link_busy(&self, port: usize) -> (SimTime, SimTime) {
        (
            self.ingress[port].busy_time(),
            self.egress[port].busy_time(),
        )
    }

    /// Total cell-forwarding operations across all switches. On a
    /// fat-tree a cross-leaf cell is counted once per switch it falls
    /// through (leaf, spine, leaf), so this measures switching work, not
    /// delivered cells.
    pub fn cells_forwarded(&self) -> u64 {
        self.interconnect.cells_forwarded()
    }

    /// Stage-link contention events observed across all switches.
    pub fn contention_waits(&self) -> u64 {
        self.interconnect.contention_waits()
    }

    /// The per-port ingress links (checkpoint surface).
    pub fn ingress(&self) -> &[Link] {
        &self.ingress
    }

    /// Mutable per-port ingress links (checkpoint restore).
    pub fn ingress_mut(&mut self) -> &mut [Link] {
        &mut self.ingress
    }

    /// The per-port egress links (checkpoint surface).
    pub fn egress(&self) -> &[Link] {
        &self.egress
    }

    /// Mutable per-port egress links (checkpoint restore).
    pub fn egress_mut(&mut self) -> &mut [Link] {
        &mut self.egress
    }

    /// The switching core (checkpoint surface).
    pub(crate) fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Mutable switching core (checkpoint restore).
    pub(crate) fn interconnect_mut(&mut self) -> &mut Interconnect {
        &mut self.interconnect
    }

    /// Overwrite the PDU counter (checkpoint restore).
    pub fn set_pdus_sent(&mut self, n: u64) {
        self.pdus_sent = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ATM_HEADER_BYTES;

    fn fabric() -> Fabric {
        Fabric::new(AtmConfig::default())
    }

    #[test]
    fn single_cell_pdu_latency_decomposes() {
        let mut f = fabric();
        // 40-byte PDU -> exactly one 53-byte cell.
        let t = f.send_pdu(SimTime::ZERO, 0, 1, 40, SimTime::ZERO);
        assert_eq!(t.cells, 1);
        let ser = Link::new(622, SimTime::ZERO).serialization(53);
        // Cut-through: propagation + switch fall-through + one
        // serialisation + propagation.
        let expect = SimTime::from_ns(150) + SimTime::from_ns(500) + ser + SimTime::from_ns(150);
        assert_eq!(t.last_cell_arrival, expect);
        assert_eq!(t.first_cell_arrival, t.last_cell_arrival);
    }

    #[test]
    fn multi_cell_pdu_pipelines() {
        let mut f = fabric();
        let t = f.send_pdu(SimTime::ZERO, 2, 9, 4096, SimTime::ZERO);
        assert_eq!(t.cells, 86);
        // Pipelined: total ≈ per-cell path latency + 85 cell serialisations,
        // far less than 86 × full path latency.
        let ser = Link::new(622, SimTime::ZERO).serialization(53);
        let path = SimTime::from_ns(150) + SimTime::from_ns(500) + ser + SimTime::from_ns(150);
        let serialized_tail = SimTime::from_ps(ser.as_ps() * 85);
        assert!(t.last_cell_arrival >= path + serialized_tail.saturating_sub(SimTime::from_ns(1)));
        assert!(t.last_cell_arrival < SimTime::from_ps(2 * (path + serialized_tail).as_ps()));
        assert!(t.first_cell_arrival < t.last_cell_arrival);
    }

    #[test]
    fn jumbo_mode_sends_one_cell() {
        let mut f = Fabric::new(AtmConfig {
            cell_payload: None,
            ..AtmConfig::default()
        });
        let t = f.send_pdu(SimTime::ZERO, 0, 1, 4096, SimTime::ZERO);
        assert_eq!(t.cells, 1);
        assert_eq!(t.wire_bytes, 4096 + 8 + ATM_HEADER_BYTES);
    }

    #[test]
    fn jumbo_beats_standard_for_page_transfer() {
        let mut std_f = fabric();
        let mut jumbo = Fabric::new(AtmConfig {
            cell_payload: None,
            ..AtmConfig::default()
        });
        let a = std_f.send_pdu(SimTime::ZERO, 0, 1, 4096, SimTime::from_ns(300));
        let b = jumbo.send_pdu(SimTime::ZERO, 0, 1, 4096, SimTime::from_ns(300));
        assert!(
            b.last_cell_arrival < a.last_cell_arrival,
            "jumbo {b:?} should beat standard {a:?}"
        );
    }

    #[test]
    fn cross_traffic_to_same_port_serialises() {
        let mut f = fabric();
        let solo = {
            let mut g = fabric();
            g.send_pdu(SimTime::ZERO, 0, 5, 4096, SimTime::ZERO)
        };
        f.send_pdu(SimTime::ZERO, 1, 5, 4096, SimTime::ZERO);
        let contended = f.send_pdu(SimTime::ZERO, 0, 5, 4096, SimTime::ZERO);
        assert!(contended.last_cell_arrival > solo.last_cell_arrival);
        assert!(f.contention_waits() > 0);
    }

    #[test]
    #[should_panic(expected = "to self")]
    fn self_send_rejected() {
        let mut f = fabric();
        let _ = f.send_pdu(SimTime::ZERO, 3, 3, 100, SimTime::ZERO);
    }

    #[test]
    fn faulty_path_with_zero_plan_matches_lossless_timing() {
        use cni_faults::{FaultInjector, FaultPlan};
        let mut a = fabric();
        let mut b = fabric();
        let mut inj = FaultInjector::new(FaultPlan::none());
        for i in 0..10u64 {
            let t = a.send_pdu(SimTime::from_ns(i * 400), 1, 6, 2048, SimTime::from_ns(300));
            let ft = b.send_pdu_faulty(
                SimTime::from_ns(i * 400),
                1,
                6,
                2048,
                SimTime::from_ns(300),
                &mut inj,
            );
            assert!(ft.eop_delivered());
            assert_eq!(ft.first_delivered, Some(t.first_cell_arrival));
            assert_eq!(ft.last_delivered, Some(t.last_cell_arrival));
            assert_eq!(ft.cells, t.cells);
            assert_eq!(ft.wire_bytes, t.wire_bytes);
        }
        assert_eq!(inj.stats().cells_dropped, 0);
    }

    #[test]
    fn faulty_path_drops_and_reproduces_by_seed() {
        use cni_faults::{CellFate, FaultInjector, FaultPlan};
        let plan = FaultPlan {
            drop_prob: 0.3,
            corrupt_prob: 0.1,
            jitter_ps: 10_000,
            seed: 0xF00D,
            ..FaultPlan::none()
        };
        let run = || {
            let mut f = fabric();
            let mut inj = FaultInjector::new(plan);
            let mut fates = Vec::new();
            let mut lasts = Vec::new();
            for i in 0..20u64 {
                let ft = f.send_pdu_faulty(
                    SimTime::from_ns(i * 500),
                    (i % 4) as usize,
                    4 + (i % 4) as usize,
                    2048,
                    SimTime::from_ns(300),
                    &mut inj,
                );
                fates.extend(ft.fates.iter().copied());
                lasts.push(ft.last_delivered);
            }
            (fates, lasts, inj.stats())
        };
        let (fates, lasts, stats) = run();
        assert_eq!((fates.clone(), lasts.clone(), stats), run());
        assert!(stats.cells_dropped > 0);
        assert!(stats.cells_corrupted > 0);
        assert!(fates.iter().any(|f| matches!(f, CellFate::Drop)));
    }

    #[test]
    fn brownout_window_silences_one_ingress_port() {
        use cni_faults::{BrownoutWindow, FaultInjector, FaultPlan};
        let plan = FaultPlan {
            brownouts: [
                Some(BrownoutWindow {
                    link: 0,
                    start_ps: 0,
                    end_ps: u64::MAX,
                }),
                None,
                None,
                None,
            ],
            ..FaultPlan::none()
        };
        let mut f = fabric();
        let mut inj = FaultInjector::new(plan);
        let dead = f.send_pdu_faulty(SimTime::ZERO, 0, 1, 1024, SimTime::ZERO, &mut inj);
        assert!(dead.last_delivered.is_none());
        assert!(!dead.eop_delivered());
        let alive = f.send_pdu_faulty(SimTime::ZERO, 2, 1, 1024, SimTime::ZERO, &mut inj);
        assert!(alive.eop_delivered());
        assert_eq!(inj.stats().brownout_cells, dead.cells as u64);
    }

    fn ft_fabric() -> Fabric {
        Fabric::new(AtmConfig {
            topology: Topology::FatTree {
                leaves: 4,
                down: 16,
                up: 16,
            },
            ..AtmConfig::default()
        })
    }

    #[test]
    fn fat_tree_serves_leaves_times_down_hosts() {
        let f = ft_fabric();
        assert_eq!(f.config().hosts(), 64);
        let t = f.config().topology;
        assert_eq!(t.oversubscription(), 1.0);
        assert_eq!(t.leaf_of(17), 1);
    }

    #[test]
    fn fat_tree_same_leaf_matches_single_switch_timing() {
        // A 32-port leaf banyan (down=16 + up=16) has the same stage
        // structure as the paper's 32-port switch, so same-leaf traffic
        // must time out identically to the single-switch fabric.
        let mut single = fabric();
        let mut ft = ft_fabric();
        for i in 0..8u64 {
            let a = single.send_pdu(
                SimTime::from_ns(i * 300),
                (i % 4) as usize,
                8 + (i % 4) as usize,
                2048,
                SimTime::from_ns(300),
            );
            let b = ft.send_pdu(
                SimTime::from_ns(i * 300),
                (i % 4) as usize,
                8 + (i % 4) as usize,
                2048,
                SimTime::from_ns(300),
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fat_tree_cross_leaf_adds_two_switches_and_two_trunks() {
        let mut ft = ft_fabric();
        // Single cell, idle fabric: cross-leaf latency exceeds same-leaf
        // by exactly two extra switch fall-throughs + two trunk
        // propagation delays (cut-through hides trunk serialisation).
        let local = ft.send_pdu(SimTime::ZERO, 0, 1, 40, SimTime::ZERO);
        let mut ft2 = ft_fabric();
        let remote = ft2.send_pdu(SimTime::ZERO, 0, 33, 40, SimTime::ZERO);
        let extra = SimTime::from_ps(2 * (SimTime::from_ns(500) + SimTime::from_ns(150)).as_ps());
        assert_eq!(remote.last_cell_arrival, local.last_cell_arrival + extra);
    }

    #[test]
    fn fat_tree_shared_uplink_contends() {
        let mut ft = ft_fabric();
        // dst 16 and dst 32 both hash to spine 0; both flows leave leaf 0,
        // so they serialise on the same uplink.
        let solo = {
            let mut g = ft_fabric();
            g.send_pdu(SimTime::ZERO, 0, 16, 4096, SimTime::ZERO)
        };
        ft.send_pdu(SimTime::ZERO, 1, 32, 4096, SimTime::ZERO);
        let contended = ft.send_pdu(SimTime::ZERO, 0, 16, 4096, SimTime::ZERO);
        assert!(
            contended.last_cell_arrival > solo.last_cell_arrival,
            "shared uplink must delay: {solo:?} vs {contended:?}"
        );
    }

    #[test]
    fn fat_tree_deterministic_across_runs() {
        let run = || {
            let mut f = ft_fabric();
            let mut acc = Vec::new();
            for i in 0..40 {
                let t = f.send_pdu(
                    SimTime::from_ns(i * 100),
                    (i as usize) % 64,
                    (i as usize + 23) % 64,
                    1024,
                    SimTime::from_ns(200),
                );
                acc.push((t.first_cell_arrival, t.last_cell_arrival));
            }
            acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "invalid fabric topology")]
    fn bad_fat_tree_shape_rejected() {
        let _ = Fabric::new(AtmConfig {
            topology: Topology::FatTree {
                leaves: 3,
                down: 16,
                up: 16,
            },
            ..AtmConfig::default()
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut f = fabric();
            let mut acc = Vec::new();
            for i in 0..20 {
                let t = f.send_pdu(
                    SimTime::from_ns(i * 100),
                    (i as usize) % 32,
                    (i as usize + 7) % 32,
                    1024,
                    SimTime::from_ns(200),
                );
                acc.push(t.last_cell_arrival);
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
