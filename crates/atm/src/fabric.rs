//! The full interconnect seen by a NIC: access links + banyan switch +
//! AAL5 segmentation, with cell-accurate pipelined timing.
//!
//! [`Fabric::send_pdu`] answers the question the NIC model asks: "if node
//! `src` starts handing cells of an `n`-byte PDU to the wire at time `t`
//! (one cell every `cell_gap` of NIC processing), when does each cell — and
//! the whole PDU — arrive at node `dst`?" The computation walks the cells
//! through source link, switch stages and destination link, honouring every
//! next-free-time register, so cross-traffic contention is captured without
//! a per-cell event storm in the simulation kernel.

use crate::aal5::Segmenter;
use crate::link::Link;
use crate::switch::BanyanSwitch;
use cni_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Interconnect parameters (the network rows of the paper's Table 1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AtmConfig {
    /// Switch port count; must be a power of two. The paper models a
    /// 32-port banyan switch.
    pub ports: usize,
    /// Link rate in Mb/s (622 = STS-12).
    pub link_mbps: u64,
    /// End-to-end fall-through latency of the switch (500 ns).
    pub switch_latency: SimTime,
    /// Propagation delay of each access link ("network latency", 150 ns).
    pub prop_delay: SimTime,
    /// Cell payload bytes; `None` = unrestricted cell size (Table 5 mode).
    pub cell_payload: Option<usize>,
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig {
            ports: 32,
            link_mbps: 622,
            switch_latency: SimTime::from_ns(500),
            prop_delay: SimTime::from_ns(150),
            cell_payload: Some(crate::cell::ATM_PAYLOAD_BYTES),
        }
    }
}

impl AtmConfig {
    /// The segmenter implied by this configuration.
    pub fn segmenter(&self) -> Segmenter {
        match self.cell_payload {
            Some(p) => Segmenter::with_cell_payload(p),
            None => Segmenter::unrestricted(),
        }
    }
}

/// Timing of one PDU through the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PduTiming {
    /// Arrival of the first cell at the destination NIC.
    pub first_cell_arrival: SimTime,
    /// Arrival of the last cell (the PDU is deliverable from this moment).
    pub last_cell_arrival: SimTime,
    /// Number of cells the PDU occupied.
    pub cells: usize,
    /// Total bytes placed on the wire (headers + pad + trailer included).
    pub wire_bytes: usize,
}

/// The interconnect: one ingress and one egress link per port plus the
/// banyan switch between them.
pub struct Fabric {
    cfg: AtmConfig,
    segmenter: Segmenter,
    ingress: Vec<Link>,
    egress: Vec<Link>,
    switch: BanyanSwitch,
    pdus_sent: u64,
}

impl Fabric {
    /// Build a fabric from configuration.
    pub fn new(cfg: AtmConfig) -> Self {
        Fabric {
            segmenter: cfg.segmenter(),
            ingress: (0..cfg.ports)
                .map(|_| Link::new(cfg.link_mbps, cfg.prop_delay))
                .collect(),
            egress: (0..cfg.ports)
                .map(|_| Link::new(cfg.link_mbps, cfg.prop_delay))
                .collect(),
            switch: BanyanSwitch::new(cfg.ports, cfg.switch_latency),
            pdus_sent: 0,
            cfg,
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &AtmConfig {
        &self.cfg
    }

    /// The segmenter used for PDUs on this fabric.
    pub fn segmenter(&self) -> Segmenter {
        self.segmenter
    }

    /// Send a `pdu_len`-byte PDU from `src` to `dst`. The sending NIC makes
    /// cell `i` available at `start + i * cell_gap` (`cell_gap` models
    /// per-cell segmentation work on the NIC processor).
    pub fn send_pdu(
        &mut self,
        start: SimTime,
        src: usize,
        dst: usize,
        pdu_len: usize,
        cell_gap: SimTime,
    ) -> PduTiming {
        assert!(
            src < self.cfg.ports && dst < self.cfg.ports,
            "port out of range"
        );
        assert_ne!(src, dst, "PDU to self does not traverse the fabric");
        let cells = self.segmenter.cell_count(pdu_len);
        let wire_bytes = self.segmenter.wire_bytes(pdu_len);
        // Cell size on the wire: equal split of the PDU across cells.
        let per_cell_bytes = wire_bytes / cells;
        let ser = self.ingress[src].serialization(per_cell_bytes);
        // Internal-link occupancy: a standard cell blocks a banyan link for
        // its serialisation time. The paper's unrestricted-cell-size mode
        // is a *mythical* network with "the same characteristics as ATM but
        // with unlimited cell size" — it removes the fragmentation tax, not
        // interleaving, so a jumbo cell is not allowed to monopolise the
        // switch for its whole (multi-microsecond) length.
        let std_cell = self.ingress[src].serialization(crate::cell::ATM_CELL_BYTES);
        let occupancy = ser.min(std_cell);
        let prop = self.cfg.prop_delay;
        let mut first = SimTime::MAX;
        let mut last = SimTime::ZERO;
        for i in 0..cells {
            let ready = start + SimTime::from_ps(cell_gap.as_ps() * i as u64);
            // Virtual cut-through: the cell's head advances through
            // ingress link → switch stages → egress link as soon as each is
            // free; each hop stays occupied for one serialisation time
            // behind the head, and the last bit trails the head by `ser`.
            let head_start = ready.max(self.ingress[src].next_free());
            self.ingress[src].transmit(ready, per_cell_bytes);
            let head_at_switch = head_start + prop;
            let head_exit = self.switch.forward(head_at_switch, src, dst, occupancy);
            let head_egress = head_exit.max(self.egress[dst].next_free());
            self.egress[dst].transmit(head_egress, per_cell_bytes);
            let arrival = head_egress + ser + prop;
            first = first.min(arrival);
            last = last.max(arrival);
        }
        self.pdus_sent += 1;
        PduTiming {
            first_cell_arrival: first,
            last_cell_arrival: last,
            cells,
            wire_bytes,
        }
    }

    /// Total PDUs sent through the fabric.
    pub fn pdus_sent(&self) -> u64 {
        self.pdus_sent
    }

    /// Total cells the switch has forwarded.
    pub fn cells_forwarded(&self) -> u64 {
        self.switch.cells_forwarded()
    }

    /// Stage-link contention events observed in the switch.
    pub fn contention_waits(&self) -> u64 {
        self.switch.contention_waits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ATM_HEADER_BYTES;

    fn fabric() -> Fabric {
        Fabric::new(AtmConfig::default())
    }

    #[test]
    fn single_cell_pdu_latency_decomposes() {
        let mut f = fabric();
        // 40-byte PDU -> exactly one 53-byte cell.
        let t = f.send_pdu(SimTime::ZERO, 0, 1, 40, SimTime::ZERO);
        assert_eq!(t.cells, 1);
        let ser = Link::new(622, SimTime::ZERO).serialization(53);
        // Cut-through: propagation + switch fall-through + one
        // serialisation + propagation.
        let expect = SimTime::from_ns(150) + SimTime::from_ns(500) + ser + SimTime::from_ns(150);
        assert_eq!(t.last_cell_arrival, expect);
        assert_eq!(t.first_cell_arrival, t.last_cell_arrival);
    }

    #[test]
    fn multi_cell_pdu_pipelines() {
        let mut f = fabric();
        let t = f.send_pdu(SimTime::ZERO, 2, 9, 4096, SimTime::ZERO);
        assert_eq!(t.cells, 86);
        // Pipelined: total ≈ per-cell path latency + 85 cell serialisations,
        // far less than 86 × full path latency.
        let ser = Link::new(622, SimTime::ZERO).serialization(53);
        let path = SimTime::from_ns(150) + SimTime::from_ns(500) + ser + SimTime::from_ns(150);
        let serialized_tail = SimTime::from_ps(ser.as_ps() * 85);
        assert!(t.last_cell_arrival >= path + serialized_tail.saturating_sub(SimTime::from_ns(1)));
        assert!(t.last_cell_arrival < SimTime::from_ps(2 * (path + serialized_tail).as_ps()));
        assert!(t.first_cell_arrival < t.last_cell_arrival);
    }

    #[test]
    fn jumbo_mode_sends_one_cell() {
        let mut f = Fabric::new(AtmConfig {
            cell_payload: None,
            ..AtmConfig::default()
        });
        let t = f.send_pdu(SimTime::ZERO, 0, 1, 4096, SimTime::ZERO);
        assert_eq!(t.cells, 1);
        assert_eq!(t.wire_bytes, 4096 + 8 + ATM_HEADER_BYTES);
    }

    #[test]
    fn jumbo_beats_standard_for_page_transfer() {
        let mut std_f = fabric();
        let mut jumbo = Fabric::new(AtmConfig {
            cell_payload: None,
            ..AtmConfig::default()
        });
        let a = std_f.send_pdu(SimTime::ZERO, 0, 1, 4096, SimTime::from_ns(300));
        let b = jumbo.send_pdu(SimTime::ZERO, 0, 1, 4096, SimTime::from_ns(300));
        assert!(
            b.last_cell_arrival < a.last_cell_arrival,
            "jumbo {b:?} should beat standard {a:?}"
        );
    }

    #[test]
    fn cross_traffic_to_same_port_serialises() {
        let mut f = fabric();
        let solo = {
            let mut g = fabric();
            g.send_pdu(SimTime::ZERO, 0, 5, 4096, SimTime::ZERO)
        };
        f.send_pdu(SimTime::ZERO, 1, 5, 4096, SimTime::ZERO);
        let contended = f.send_pdu(SimTime::ZERO, 0, 5, 4096, SimTime::ZERO);
        assert!(contended.last_cell_arrival > solo.last_cell_arrival);
        assert!(f.contention_waits() > 0);
    }

    #[test]
    #[should_panic(expected = "to self")]
    fn self_send_rejected() {
        let mut f = fabric();
        let _ = f.send_pdu(SimTime::ZERO, 3, 3, 100, SimTime::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut f = fabric();
            let mut acc = Vec::new();
            for i in 0..20 {
                let t = f.send_pdu(
                    SimTime::from_ns(i * 100),
                    (i as usize) % 32,
                    (i as usize + 7) % 32,
                    1024,
                    SimTime::from_ns(200),
                );
                acc.push(t.last_cell_arrival);
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
