//! Plain-data snapshot records for the fabric's mutable timing state.
//!
//! These structs are the checkpoint surface of `cni-atm`: each mirrors
//! exactly the fields a [`crate::Fabric`] mutates at run time (next-free
//! registers, byte/occupancy accumulators, forwarding counters). Everything
//! derivable from [`crate::AtmConfig`] — rates, latencies, the segmenter,
//! the topology shape — is deliberately absent: it is rebuilt from the
//! configuration on restore, which keeps the snapshot schema small and the
//! restore path unable to smuggle in an inconsistent topology.

use crate::fabric::Interconnect;
use crate::link::Link;
use crate::switch::BanyanSwitch;
use crate::Fabric;
use cni_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Mutable state of one [`Link`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Earliest time a new transmission could start.
    pub next_free: SimTime,
    /// Total bytes carried since construction.
    pub bytes_carried: u64,
    /// Cumulative wire-occupancy time.
    pub busy: SimTime,
}

/// Mutable state of one [`crate::BanyanSwitch`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchState {
    /// `next_free[stage][link]` registers, stage-major.
    pub next_free: Vec<Vec<SimTime>>,
    /// Total cells forwarded.
    pub cells_forwarded: u64,
    /// Stage traversals that waited on a busy internal link.
    pub contention_waits: u64,
}

/// Mutable state of a whole [`Fabric`].
///
/// The single-switch topology populates `switch` and leaves the fat-tree
/// vectors empty; a fat-tree does the reverse. Restore validates the
/// shape against the fabric's configured topology either way.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricState {
    /// Per-host ingress access-link state.
    pub ingress: Vec<LinkState>,
    /// Per-host egress access-link state.
    pub egress: Vec<LinkState>,
    /// Switch state ([`crate::topology::Topology::Single`] only).
    pub switch: SwitchState,
    /// Total PDUs sent through the fabric.
    pub pdus_sent: u64,
    /// Per-leaf switch state (fat-tree only).
    pub leaf_switches: Vec<SwitchState>,
    /// Per-spine switch state (fat-tree only).
    pub spine_switches: Vec<SwitchState>,
    /// Leaf→spine trunk-link state, indexed `[leaf * up + spine]`
    /// (fat-tree only).
    pub up_links: Vec<LinkState>,
    /// Spine→leaf trunk-link state, same indexing (fat-tree only).
    pub down_links: Vec<LinkState>,
}

impl Link {
    /// Capture the link's mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> LinkState {
        LinkState {
            next_free: self.next_free(),
            bytes_carried: self.bytes_carried(),
            busy: self.busy_time(),
        }
    }
}

fn restore_links(links: &mut [Link], states: &[LinkState], what: &str) -> Result<(), String> {
    if links.len() != states.len() {
        return Err(format!(
            "fabric snapshot has {} {what} links, fabric has {}",
            states.len(),
            links.len()
        ));
    }
    for (link, ls) in links.iter_mut().zip(states) {
        link.restore_state(ls);
    }
    Ok(())
}

fn restore_switches(
    switches: &mut [BanyanSwitch],
    states: &[SwitchState],
    what: &str,
) -> Result<(), String> {
    if switches.len() != states.len() {
        return Err(format!(
            "fabric snapshot has {} {what} switches, fabric has {}",
            states.len(),
            switches.len()
        ));
    }
    for (sw, ss) in switches.iter_mut().zip(states) {
        sw.restore_state(ss)?;
    }
    Ok(())
}

impl Fabric {
    /// Capture the fabric's complete mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> FabricState {
        let mut state = FabricState {
            ingress: self.ingress().iter().map(Link::snapshot_state).collect(),
            egress: self.egress().iter().map(Link::snapshot_state).collect(),
            switch: SwitchState::default(),
            pdus_sent: self.pdus_sent(),
            leaf_switches: Vec::new(),
            spine_switches: Vec::new(),
            up_links: Vec::new(),
            down_links: Vec::new(),
        };
        match self.interconnect() {
            Interconnect::Single(sw) => state.switch = sw.snapshot_state(),
            Interconnect::FatTree {
                leaves,
                spines,
                up_links,
                down_links,
                ..
            } => {
                state.leaf_switches = leaves.iter().map(BanyanSwitch::snapshot_state).collect();
                state.spine_switches = spines.iter().map(BanyanSwitch::snapshot_state).collect();
                state.up_links = up_links.iter().map(Link::snapshot_state).collect();
                state.down_links = down_links.iter().map(Link::snapshot_state).collect();
            }
        }
        state
    }

    /// Restore state captured with [`Fabric::snapshot_state`] into a fabric
    /// freshly built from the same configuration. Returns `Err` (never
    /// panics) when the snapshot's shape does not match this fabric's
    /// topology.
    pub fn restore_state(&mut self, s: &FabricState) -> Result<(), String> {
        let hosts = self.config().hosts();
        if s.ingress.len() != hosts || s.egress.len() != hosts {
            return Err(format!(
                "fabric snapshot has {}/{} access links for a {hosts}-host fabric",
                s.ingress.len(),
                s.egress.len()
            ));
        }
        restore_links(self.ingress_mut(), &s.ingress, "ingress")?;
        restore_links(self.egress_mut(), &s.egress, "egress")?;
        match self.interconnect_mut() {
            Interconnect::Single(sw) => {
                if !s.leaf_switches.is_empty() || !s.spine_switches.is_empty() {
                    return Err(
                        "fabric snapshot is for a fat-tree, fabric is single-switch".to_string()
                    );
                }
                sw.restore_state(&s.switch)?;
            }
            Interconnect::FatTree {
                leaves,
                spines,
                up_links,
                down_links,
                ..
            } => {
                if s.switch != SwitchState::default() {
                    return Err(
                        "fabric snapshot is for a single switch, fabric is a fat-tree".to_string(),
                    );
                }
                restore_switches(leaves, &s.leaf_switches, "leaf")?;
                restore_switches(spines, &s.spine_switches, "spine")?;
                restore_links(up_links, &s.up_links, "uplink trunk")?;
                restore_links(down_links, &s.down_links, "downlink trunk")?;
            }
        }
        self.set_pdus_sent(s.pdus_sent);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtmConfig, Topology};

    #[test]
    fn fabric_round_trip_reproduces_timing() {
        let cfg = AtmConfig::default();
        let mut a = Fabric::new(cfg);
        // Warm the fabric up with contended traffic.
        for i in 0..12u64 {
            a.send_pdu(
                SimTime::from_ns(i * 200),
                (i % 4) as usize,
                8 + (i % 3) as usize,
                2048,
                SimTime::from_ns(300),
            );
        }
        let snap = a.snapshot_state();
        let mut b = Fabric::new(cfg);
        b.restore_state(&snap).unwrap();
        assert_eq!(b.snapshot_state(), snap);
        // Identical future: the next contended send times out of both
        // fabrics must agree exactly.
        let ta = a.send_pdu(SimTime::from_us(3), 1, 9, 4096, SimTime::from_ns(300));
        let tb = b.send_pdu(SimTime::from_us(3), 1, 9, 4096, SimTime::from_ns(300));
        assert_eq!(ta, tb);
        assert_eq!(a.pdus_sent(), b.pdus_sent());
    }

    #[test]
    fn fat_tree_round_trip_reproduces_timing() {
        let cfg = AtmConfig {
            topology: Topology::FatTree {
                leaves: 4,
                down: 16,
                up: 16,
            },
            ..AtmConfig::default()
        };
        let mut a = Fabric::new(cfg);
        // Cross-leaf traffic warms trunk links and all three switch tiers.
        for i in 0..24u64 {
            a.send_pdu(
                SimTime::from_ns(i * 200),
                (i % 16) as usize,
                (16 + 3 * i % 48) as usize,
                2048,
                SimTime::from_ns(300),
            );
        }
        let snap = a.snapshot_state();
        assert_eq!(snap.leaf_switches.len(), 4);
        assert_eq!(snap.spine_switches.len(), 16);
        assert_eq!(snap.up_links.len(), 64);
        let mut b = Fabric::new(cfg);
        b.restore_state(&snap).unwrap();
        assert_eq!(b.snapshot_state(), snap);
        let ta = a.send_pdu(SimTime::from_us(3), 1, 49, 4096, SimTime::from_ns(300));
        let tb = b.send_pdu(SimTime::from_us(3), 1, 49, 4096, SimTime::from_ns(300));
        assert_eq!(ta, tb);
    }

    #[test]
    fn restore_rejects_mismatched_topology() {
        let mut small = Fabric::new(AtmConfig {
            ports: 8,
            ..AtmConfig::default()
        });
        let snap = Fabric::new(AtmConfig::default()).snapshot_state();
        assert!(small.restore_state(&snap).is_err());
        // Single-switch snapshot into a fat-tree of the same host count.
        let ft_cfg = AtmConfig {
            topology: Topology::FatTree {
                leaves: 2,
                down: 16,
                up: 16,
            },
            ..AtmConfig::default()
        };
        let mut warmed = Fabric::new(AtmConfig::default());
        warmed.send_pdu(SimTime::ZERO, 0, 1, 2048, SimTime::ZERO);
        let mut ft = Fabric::new(ft_cfg);
        assert!(ft.restore_state(&warmed.snapshot_state()).is_err());
        // And the reverse.
        let mut ft_warm = Fabric::new(ft_cfg);
        ft_warm.send_pdu(SimTime::ZERO, 0, 17, 2048, SimTime::ZERO);
        let mut single = Fabric::new(AtmConfig::default());
        assert!(single.restore_state(&ft_warm.snapshot_state()).is_err());
    }
}
