//! Plain-data snapshot records for the fabric's mutable timing state.
//!
//! These structs are the checkpoint surface of `cni-atm`: each mirrors
//! exactly the fields a [`crate::Fabric`] mutates at run time (next-free
//! registers, byte/occupancy accumulators, forwarding counters). Everything
//! derivable from [`crate::AtmConfig`] — rates, latencies, the segmenter —
//! is deliberately absent: it is rebuilt from the configuration on restore,
//! which keeps the snapshot schema small and the restore path unable to
//! smuggle in an inconsistent topology.

use crate::link::Link;
use crate::Fabric;
use cni_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Mutable state of one [`Link`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Earliest time a new transmission could start.
    pub next_free: SimTime,
    /// Total bytes carried since construction.
    pub bytes_carried: u64,
    /// Cumulative wire-occupancy time.
    pub busy: SimTime,
}

/// Mutable state of one [`crate::BanyanSwitch`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchState {
    /// `next_free[stage][link]` registers, stage-major.
    pub next_free: Vec<Vec<SimTime>>,
    /// Total cells forwarded.
    pub cells_forwarded: u64,
    /// Stage traversals that waited on a busy internal link.
    pub contention_waits: u64,
}

/// Mutable state of a whole [`Fabric`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricState {
    /// Per-port ingress link state.
    pub ingress: Vec<LinkState>,
    /// Per-port egress link state.
    pub egress: Vec<LinkState>,
    /// Switch state.
    pub switch: SwitchState,
    /// Total PDUs sent through the fabric.
    pub pdus_sent: u64,
}

impl Link {
    /// Capture the link's mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> LinkState {
        LinkState {
            next_free: self.next_free(),
            bytes_carried: self.bytes_carried(),
            busy: self.busy_time(),
        }
    }
}

impl Fabric {
    /// Capture the fabric's complete mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> FabricState {
        FabricState {
            ingress: self.ingress().iter().map(Link::snapshot_state).collect(),
            egress: self.egress().iter().map(Link::snapshot_state).collect(),
            switch: self.switch().snapshot_state(),
            pdus_sent: self.pdus_sent(),
        }
    }

    /// Restore state captured with [`Fabric::snapshot_state`] into a fabric
    /// freshly built from the same configuration. Returns `Err` (never
    /// panics) when the snapshot's shape does not match this fabric's
    /// topology.
    pub fn restore_state(&mut self, s: &FabricState) -> Result<(), String> {
        let ports = self.config().ports;
        if s.ingress.len() != ports || s.egress.len() != ports {
            return Err(format!(
                "fabric snapshot has {}/{} links for a {ports}-port fabric",
                s.ingress.len(),
                s.egress.len()
            ));
        }
        for (link, ls) in self.ingress_mut().iter_mut().zip(&s.ingress) {
            link.restore_state(ls);
        }
        for (link, ls) in self.egress_mut().iter_mut().zip(&s.egress) {
            link.restore_state(ls);
        }
        self.switch_mut().restore_state(&s.switch)?;
        self.set_pdus_sent(s.pdus_sent);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtmConfig;

    #[test]
    fn fabric_round_trip_reproduces_timing() {
        let cfg = AtmConfig::default();
        let mut a = Fabric::new(cfg);
        // Warm the fabric up with contended traffic.
        for i in 0..12u64 {
            a.send_pdu(
                SimTime::from_ns(i * 200),
                (i % 4) as usize,
                8 + (i % 3) as usize,
                2048,
                SimTime::from_ns(300),
            );
        }
        let snap = a.snapshot_state();
        let mut b = Fabric::new(cfg);
        b.restore_state(&snap).unwrap();
        assert_eq!(b.snapshot_state(), snap);
        // Identical future: the next contended send times out of both
        // fabrics must agree exactly.
        let ta = a.send_pdu(SimTime::from_us(3), 1, 9, 4096, SimTime::from_ns(300));
        let tb = b.send_pdu(SimTime::from_us(3), 1, 9, 4096, SimTime::from_ns(300));
        assert_eq!(ta, tb);
        assert_eq!(a.pdus_sent(), b.pdus_sent());
    }

    #[test]
    fn restore_rejects_mismatched_topology() {
        let mut small = Fabric::new(AtmConfig {
            ports: 8,
            ..AtmConfig::default()
        });
        let snap = Fabric::new(AtmConfig::default()).snapshot_state();
        assert!(small.restore_state(&snap).is_err());
    }
}
