//! NIC and host-boundary cost-model parameters.
//!
//! Everything the `cni-nic` timing model charges is a named field here, so
//! the paper's Table 1 maps onto one struct and sensitivity experiments are
//! parameter sweeps rather than code edits. Cycle counts are in the cycles
//! of the component that executes them (host CPU at 166 MHz, NIC processor
//! at 33 MHz, bus at 25 MHz).

use cni_sim::{Clock, SimTime};
use serde::{Deserialize, Serialize};

/// Which network-interface personality a node uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NicKind {
    /// The paper's baseline: a conventional interface with no Application
    /// Device Channels, no Message Cache and no Application Interrupt
    /// Handlers — every send crosses the kernel, every message is DMAed
    /// both ways, and every arrival interrupts the host.
    Standard,
    /// The CNI: ADC user-level queues, Message Cache with snooping,
    /// PATHFINDER demultiplexing, and protocol handlers on the NIC.
    Cni,
}

/// Feature toggles for the CNI personality — each of the paper's three
/// mechanisms can be disabled independently for ablation studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CniFeatures {
    /// The Message Cache (transmit/receive caching + snooping).
    pub msg_cache: bool,
    /// Application Interrupt Handlers (protocol on the NIC processor).
    pub aih: bool,
    /// The poll/interrupt hybrid on receive (off = interrupt always).
    pub polling: bool,
}

impl Default for CniFeatures {
    fn default() -> Self {
        CniFeatures {
            msg_cache: true,
            aih: true,
            polling: true,
        }
    }
}

/// The full cost model of one node's host/NIC boundary.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NicConfig {
    /// Host CPU clock (166 MHz in Table 1).
    pub host_clock: Clock,
    /// NIC processor clock (33 MHz).
    pub nic_clock: Clock,
    /// Memory bus clock (25 MHz).
    pub bus_clock: Clock,

    /// Bytes per bus word (Alpha: 8).
    pub word_bytes: usize,
    /// Bus acquisition cost in bus cycles (4).
    pub bus_acquire_cycles: u64,
    /// Bus transfer cost per word in bus cycles (2).
    pub bus_cycles_per_word: u64,

    /// Host cache line size in bytes.
    pub cache_line_bytes: usize,
    /// Host page size in bytes; Message Cache buffers are page sized.
    pub page_bytes: usize,

    /// Full cost of taking a host interrupt (save/dispatch/restore plus
    /// the cache and pipeline damage inflicted on the interrupted
    /// computation), in host CPU cycles. The paper's premise is that this
    /// is *expensive* on superscalar, superpipelined CPUs.
    pub interrupt_cycles: u64,
    /// The part of an interrupt during which the CPU is actually inside
    /// the handler and cannot take another interrupt (serialising
    /// occupancy); the remainder of [`Self::interrupt_cycles`] is
    /// disruption charged to the interrupted computation.
    pub interrupt_occupancy_cycles: u64,
    /// Kernel entry + protocol-stack work on the host send path of the
    /// standard NIC, host cycles.
    pub kernel_send_cycles: u64,
    /// Kernel dispatch on the host receive path of the standard NIC
    /// (charged on top of the interrupt), host cycles.
    pub kernel_recv_cycles: u64,

    /// Cost for the application to enqueue a descriptor on an ADC transmit
    /// queue (a handful of user-level stores), host cycles.
    pub adc_enqueue_cycles: u64,
    /// Cost of one poll of the ADC receive/free queues, host cycles.
    pub poll_cycles: u64,

    /// NIC-processor cycles to fetch and decode one transmit descriptor.
    pub descriptor_cycles: u64,
    /// NIC-processor cycles of segmentation work per transmitted cell.
    pub sar_tx_cycles_per_cell: u64,
    /// NIC-processor cycles of reassembly work per received cell.
    pub sar_rx_cycles_per_cell: u64,
    /// NIC-processor cycles per PATHFINDER comparison cell visited.
    pub classify_cycles_per_cell: u64,
    /// NIC-processor cycles to look a page up in the buffer map.
    pub buffer_map_cycles: u64,
    /// NIC-processor cycles to copy one word board-to-board (receive
    /// caching copies the arriving page into a cached buffer).
    pub board_copy_cycles_per_word: u64,
    /// NIC-processor cycles for an RTLB refill after a snoop miss.
    pub rtlb_miss_cycles: u64,

    /// NIC-processor cycles for one collective combine step: folding a
    /// child's barrier-arrival (vector clock + notice set) into the
    /// NIC-resident combining state. Dedicated microcode, far cheaper
    /// than a general AIH protocol dispatch (cs/0402027-style NIC
    /// collectives). Used only when the cluster enables NIC collectives.
    pub coll_combine_cycles: u64,
    /// NIC-processor cycles to forward one collective message down the
    /// tree (release broadcast, lock-chain forward): a descriptor
    /// rewrite and retransmit without host involvement.
    pub coll_forward_cycles: u64,

    /// CNI mechanism toggles (ablations); ignored by the standard
    /// personality, which never has any of them.
    pub cni_features: CniFeatures,
    /// Message Cache capacity in bytes (32 KB in Table 1; Figure 13 sweeps
    /// it). Ignored by the standard personality.
    pub msg_cache_bytes: usize,
    /// RTLB entries for snoop-side reverse translation.
    pub rtlb_entries: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            host_clock: Clock::from_mhz(166),
            nic_clock: Clock::from_mhz(33),
            bus_clock: Clock::from_mhz(25),
            word_bytes: 8,
            bus_acquire_cycles: 4,
            bus_cycles_per_word: 2,
            cache_line_bytes: 32,
            page_bytes: 2048,
            // 40 µs at 166 MHz ≈ 6640 cycles: the "expensive interrupt" of
            // the paper's premise (state save, dispatch, cache/TLB damage).
            interrupt_cycles: 6640,
            interrupt_occupancy_cycles: 1660,
            kernel_send_cycles: 2000,
            kernel_recv_cycles: 1000,
            adc_enqueue_cycles: 40,
            poll_cycles: 20,
            descriptor_cycles: 10,
            // ~760 ns of NIC-processor work per cell (segmentation state,
            // DMA descriptor per cell, CRC accumulation): the
            // fragmentation/reassembly tax the paper's Table 5 blames for
            // limiting its gains.
            sar_tx_cycles_per_cell: 25,
            sar_rx_cycles_per_cell: 25,
            classify_cycles_per_cell: 1,
            buffer_map_cycles: 4,
            board_copy_cycles_per_word: 2,
            rtlb_miss_cycles: 20,
            // ~1.8 µs / ~1.2 µs at 33 MHz: the NIC executes collectives
            // as dedicated combine/forward steps, not a general handler.
            coll_combine_cycles: 60,
            coll_forward_cycles: 40,
            cni_features: CniFeatures::default(),
            msg_cache_bytes: 32 * 1024,
            rtlb_entries: 256,
        }
    }
}

impl NicConfig {
    /// Number of page buffers the Message Cache holds.
    pub fn msg_cache_buffers(&self) -> usize {
        (self.msg_cache_bytes / self.page_bytes).max(1)
    }

    /// Duration of `cycles` host-CPU cycles.
    pub fn host(&self, cycles: u64) -> SimTime {
        self.host_clock.cycles(cycles)
    }

    /// Duration of `cycles` NIC-processor cycles.
    pub fn nic(&self, cycles: u64) -> SimTime {
        self.nic_clock.cycles(cycles)
    }

    /// Duration of `cycles` bus cycles.
    pub fn bus(&self, cycles: u64) -> SimTime {
        self.bus_clock.cycles(cycles)
    }

    /// Words needed to carry `bytes` (rounded up).
    pub fn words(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.word_bytes as u64)
    }

    /// Per-cell segmentation gap on the transmit side: how often the NIC
    /// processor can hand the wire a new cell.
    pub fn tx_cell_gap(&self) -> SimTime {
        self.nic(self.sar_tx_cycles_per_cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = NicConfig::default();
        assert_eq!(c.host_clock, Clock::from_mhz(166));
        assert_eq!(c.nic_clock, Clock::from_mhz(33));
        assert_eq!(c.bus_clock, Clock::from_mhz(25));
        assert_eq!(c.msg_cache_bytes, 32 * 1024);
        assert_eq!(c.msg_cache_buffers(), 16);
    }

    #[test]
    fn interrupt_is_tens_of_microseconds() {
        let c = NicConfig::default();
        let t = c.host(c.interrupt_cycles);
        assert!(
            t >= SimTime::from_us(30) && t <= SimTime::from_us(50),
            "{t}"
        );
    }

    #[test]
    fn word_rounding() {
        let c = NicConfig::default();
        assert_eq!(c.words(0), 0);
        assert_eq!(c.words(1), 1);
        assert_eq!(c.words(8), 1);
        assert_eq!(c.words(9), 2);
        assert_eq!(c.words(4096), 512);
    }
}
