//! The Message Cache: the CNI's central mechanism.
//!
//! The board keeps a set of page-sized buffers mirroring host
//! virtual-memory pages. The **buffer map** associates a host virtual page
//! with a board buffer; a **TLB/RTLB** pair translates between host
//! virtual and physical addresses so snooped (physical) bus writes can be
//! applied to the right (virtually indexed) buffer. The three fundamental
//! operations from §2.2 of the paper map onto this type as:
//!
//! * **transmit caching** — [`MessageCache::lookup_tx`] before DMA: a hit
//!   means the board already holds a consistent copy and the host→board
//!   DMA is skipped entirely; on a cacheable miss the page is
//!   [`MessageCache::insert`]ed after the DMA.
//! * **receive caching** — an arriving page marked cacheable is inserted
//!   so a future migration transmits straight from the board.
//! * **consistency snooping** — every CPU write that reaches the bus is
//!   offered via [`MessageCache::snoop_write`]; if the page is resident the
//!   board copy is updated in place (that is what keeps transmit hits
//!   *correct*).
//!
//! Replacement is CLOCK — the canonical *approximate LRU* the paper
//! specifies — over a fixed number of page buffers
//! ([`crate::NicConfig::msg_cache_buffers`]).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics of one Message Cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgCacheStats {
    /// Transmit-path lookups.
    pub tx_lookups: u64,
    /// Transmit-path hits (no DMA needed).
    pub tx_hits: u64,
    /// Buffers bound (transmit-miss caching + receive caching).
    pub inserts: u64,
    /// Buffers evicted by CLOCK to make room.
    pub evictions: u64,
    /// Snooped writes that found their page resident (board copy updated).
    pub snoop_updates: u64,
    /// Snooped writes to non-resident pages (ignored).
    pub snoop_misses: u64,
    /// RTLB misses during snooping (cost charged by the caller).
    pub rtlb_misses: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
}

impl MsgCacheStats {
    /// The paper's *network cache hit ratio*: transmit hits over transmit
    /// lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.tx_lookups == 0 {
            0.0
        } else {
            self.tx_hits as f64 / self.tx_lookups as f64
        }
    }

    /// Merge another cache's counters (cluster-wide aggregation).
    pub fn merge(&mut self, o: &MsgCacheStats) {
        self.tx_lookups += o.tx_lookups;
        self.tx_hits += o.tx_hits;
        self.inserts += o.inserts;
        self.evictions += o.evictions;
        self.snoop_updates += o.snoop_updates;
        self.snoop_misses += o.snoop_misses;
        self.rtlb_misses += o.rtlb_misses;
        self.invalidations += o.invalidations;
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    page: Option<u64>,
    referenced: bool,
}

/// A small reverse TLB: tracks which page translations are resident so
/// snoop-side misses can be charged their refill cost.
struct Rtlb {
    entries: Vec<u64>,
    capacity: usize,
    hand: usize,
}

impl Rtlb {
    fn new(capacity: usize) -> Self {
        Rtlb {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            hand: 0,
        }
    }

    /// Translate `page`; returns true on a resident translation, false on
    /// a miss (the translation is then refilled).
    fn translate(&mut self, page: u64) -> bool {
        if self.entries.contains(&page) {
            return true;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(page);
        } else {
            self.entries[self.hand] = page;
            self.hand = (self.hand + 1) % self.capacity;
        }
        false
    }
}

/// The Message Cache (buffer map + cached buffers + RTLB).
///
/// ```
/// use cni_nic::MessageCache;
///
/// let mut mc = MessageCache::new(16, 256);
/// assert!(!mc.lookup_tx(7));     // cold: the DMA happens, then we bind
/// mc.insert(7);
/// assert!(mc.lookup_tx(7));      // re-send: no DMA
/// mc.snoop_write(7);             // CPU writes keep the copy consistent
/// assert!(mc.lookup_tx(7));      // still a hit
/// assert!((mc.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub struct MessageCache {
    slots: Vec<Slot>,
    map: HashMap<u64, usize>,
    hand: usize,
    rtlb: Rtlb,
    stats: MsgCacheStats,
}

impl MessageCache {
    /// A cache of `buffers` page buffers and an RTLB of `rtlb_entries`.
    pub fn new(buffers: usize, rtlb_entries: usize) -> Self {
        assert!(buffers > 0, "message cache needs at least one buffer");
        MessageCache {
            slots: vec![
                Slot {
                    page: None,
                    referenced: false
                };
                buffers
            ],
            map: HashMap::with_capacity(buffers * 2),
            hand: 0,
            rtlb: Rtlb::new(rtlb_entries),
            stats: MsgCacheStats::default(),
        }
    }

    /// Capacity in page buffers.
    pub fn buffers(&self) -> usize {
        self.slots.len()
    }

    /// Transmit-path lookup: is a consistent copy of `page` on the board?
    /// Counts toward the network cache hit ratio and refreshes the CLOCK
    /// reference bit on a hit.
    pub fn lookup_tx(&mut self, page: u64) -> bool {
        self.stats.tx_lookups += 1;
        if let Some(&slot) = self.map.get(&page) {
            self.slots[slot].referenced = true;
            self.stats.tx_hits += 1;
            true
        } else {
            false
        }
    }

    /// Is `page` resident? (No statistics side effects.)
    pub fn contains(&self, page: u64) -> bool {
        self.map.contains_key(&page)
    }

    /// Bind `page` to a board buffer (after a transmit-miss DMA of a
    /// cacheable buffer, or on receive caching). Returns the evicted page
    /// if CLOCK had to free a buffer. Inserting a resident page just
    /// refreshes it.
    pub fn insert(&mut self, page: u64) -> Option<u64> {
        if let Some(&slot) = self.map.get(&page) {
            self.slots[slot].referenced = true;
            return None;
        }
        self.stats.inserts += 1;
        // CLOCK: advance the hand, granting second chances, until a victim
        // with a clear reference bit (or an empty slot) is found.
        let victim = loop {
            let s = &mut self.slots[self.hand];
            match s.page {
                None => break self.hand,
                Some(_) if !s.referenced => break self.hand,
                _ => {
                    s.referenced = false;
                    self.hand = (self.hand + 1) % self.slots.len();
                }
            }
        };
        let evicted = self.slots[victim].page.take();
        if let Some(old) = evicted {
            self.map.remove(&old);
            self.stats.evictions += 1;
        }
        self.slots[victim] = Slot {
            page: Some(page),
            referenced: true,
        };
        self.map.insert(page, victim);
        self.hand = (victim + 1) % self.slots.len();
        evicted
    }

    /// Offer a snooped bus write to `page`. Returns `(resident, rtlb_miss)`
    /// — resident means the board copy was updated in place; an RTLB miss
    /// costs the caller a refill.
    pub fn snoop_write(&mut self, page: u64) -> (bool, bool) {
        let rtlb_hit = self.rtlb.translate(page);
        if !rtlb_hit {
            self.stats.rtlb_misses += 1;
        }
        if self.map.contains_key(&page) {
            self.stats.snoop_updates += 1;
            (true, !rtlb_hit)
        } else {
            self.stats.snoop_misses += 1;
            (false, !rtlb_hit)
        }
    }

    /// Drop `page`'s binding (e.g. the host's copy diverged in a way
    /// snooping cannot see). Returns whether it was resident.
    pub fn invalidate(&mut self, page: u64) -> bool {
        if let Some(slot) = self.map.remove(&page) {
            self.slots[slot].page = None;
            self.slots[slot].referenced = false;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MsgCacheStats {
        self.stats
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// Capture the cache's complete mutable state for a checkpoint. The
    /// page→slot map is *not* captured: it is a pure index over the slot
    /// array (whose order, with both CLOCK hands, is the real state) and is
    /// rebuilt verbatim on restore — so no `HashMap` iteration order can
    /// ever leak into snapshot bytes.
    pub fn snapshot_state(&self) -> MsgCacheState {
        MsgCacheState {
            slots: self.slots.iter().map(|s| (s.page, s.referenced)).collect(),
            hand: self.hand,
            rtlb_entries: self.rtlb.entries.clone(),
            rtlb_hand: self.rtlb.hand,
            stats: self.stats,
        }
    }

    /// Restore state captured with [`MessageCache::snapshot_state`] into a
    /// cache freshly built with the same capacities. Returns `Err` (never
    /// panics) when the snapshot's shape does not fit this cache.
    pub fn restore_state(&mut self, s: &MsgCacheState) -> Result<(), String> {
        if s.slots.len() != self.slots.len() {
            return Err(format!(
                "message-cache snapshot has {} slots, cache has {}",
                s.slots.len(),
                self.slots.len()
            ));
        }
        if s.hand >= self.slots.len() {
            return Err(format!("CLOCK hand {} out of range", s.hand));
        }
        if s.rtlb_entries.len() > self.rtlb.capacity || s.rtlb_hand >= self.rtlb.capacity {
            return Err(format!(
                "RTLB snapshot ({} entries, hand {}) exceeds capacity {}",
                s.rtlb_entries.len(),
                s.rtlb_hand,
                self.rtlb.capacity
            ));
        }
        self.map.clear();
        for (i, &(page, referenced)) in s.slots.iter().enumerate() {
            self.slots[i] = Slot { page, referenced };
            if let Some(p) = page {
                if self.map.insert(p, i).is_some() {
                    return Err(format!("page {p} bound to two slots in snapshot"));
                }
            }
        }
        self.hand = s.hand;
        self.rtlb.entries = s.rtlb_entries.clone();
        self.rtlb.hand = s.rtlb_hand;
        self.stats = s.stats;
        Ok(())
    }
}

/// Serializable mid-run state of a [`MessageCache`]: the slot array in
/// CLOCK order (with reference bits), both CLOCK hands, the RTLB contents
/// and the counters.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MsgCacheState {
    /// `(resident page, referenced bit)` per slot, in slot order.
    pub slots: Vec<(Option<u64>, bool)>,
    /// The CLOCK eviction hand.
    pub hand: usize,
    /// RTLB-resident page translations, in insertion order.
    pub rtlb_entries: Vec<u64>,
    /// The RTLB replacement hand.
    pub rtlb_hand: usize,
    /// Counter snapshot.
    pub stats: MsgCacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(buffers: usize) -> MessageCache {
        MessageCache::new(buffers, 64)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = cache(4);
        assert!(!c.lookup_tx(7));
        assert_eq!(c.insert(7), None);
        assert!(c.lookup_tx(7));
        assert_eq!(c.stats().tx_lookups, 2);
        assert_eq!(c.stats().tx_hits, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let mut c = cache(2);
        c.insert(1);
        c.insert(2);
        // Touch page 1 so its reference bit is set; page 2's was set at
        // insert, so the hand must sweep both once, clearing bits, and then
        // evict the first unreferenced slot.
        assert!(c.lookup_tx(1));
        let evicted = c.insert(3);
        assert!(evicted.is_some());
        assert_eq!(c.resident(), 2);
        assert!(c.contains(3));
    }

    #[test]
    fn reinsert_resident_does_not_evict() {
        let mut c = cache(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.stats().evictions, 0);
        assert!(c.contains(1) && c.contains(2));
    }

    #[test]
    fn eviction_unbinds_old_page() {
        let mut c = cache(1);
        c.insert(10);
        let evicted = c.insert(11);
        assert_eq!(evicted, Some(10));
        assert!(!c.contains(10));
        assert!(c.contains(11));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn snoop_updates_resident_pages_only() {
        let mut c = cache(2);
        c.insert(5);
        let (resident, _) = c.snoop_write(5);
        assert!(resident);
        let (resident, _) = c.snoop_write(6);
        assert!(!resident);
        assert_eq!(c.stats().snoop_updates, 1);
        assert_eq!(c.stats().snoop_misses, 1);
    }

    #[test]
    fn rtlb_misses_then_hits() {
        let mut c = cache(2);
        c.insert(5);
        let (_, miss1) = c.snoop_write(5);
        assert!(miss1, "first translation must miss");
        let (_, miss2) = c.snoop_write(5);
        assert!(!miss2, "second translation must hit");
        assert_eq!(c.stats().rtlb_misses, 1);
    }

    #[test]
    fn invalidate_removes_binding() {
        let mut c = cache(2);
        c.insert(9);
        assert!(c.invalidate(9));
        assert!(!c.contains(9));
        assert!(!c.invalidate(9));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn working_set_within_capacity_reaches_full_hit_ratio() {
        // The Jacobi observation: when the transmitted working set fits,
        // the steady-state hit ratio approaches 1.
        let mut c = cache(8);
        let pages = [1u64, 2, 3, 4];
        for round in 0..100 {
            for &p in &pages {
                if !c.lookup_tx(p) {
                    c.insert(p);
                }
                let _ = round;
            }
        }
        // 4 cold misses out of 400 lookups.
        assert!(c.stats().hit_ratio() > 0.98);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // The Cholesky observation: a migrating working set larger than
        // the cache keeps the hit ratio low until the cache grows.
        let mut c = cache(4);
        let mut hits = 0;
        let mut lookups = 0;
        for _round in 0..50 {
            for p in 0..16u64 {
                lookups += 1;
                if c.lookup_tx(p) {
                    hits += 1;
                } else {
                    c.insert(p);
                }
            }
        }
        assert!(
            (hits as f64 / lookups as f64) < 0.5,
            "sequential sweep larger than CLOCK capacity must mostly miss"
        );
    }
}
