//! `cni-nic` — models of the host/NIC boundary: the memory bus, the host
//! cache, DMA, and the two network-interface personalities the paper
//! compares.
//!
//! * [`bus`] — the workstation memory bus (4-cycle acquisition, 2 cycles
//!   per 64-bit word at 25 MHz), a shared, contended resource used by CPU
//!   write-backs and NIC DMA alike.
//! * [`hostcache`] — a direct-mapped write-back cache model (32 KB unified
//!   L1, 1 MB L2) used to cost memory accesses and the pre-transmit flush
//!   the Message Cache's snooping discipline requires.
//! * [`msgcache`] — the **Message Cache**: board-resident page buffers kept
//!   consistent by bus snooping, with a CLOCK approximate-LRU buffer map
//!   and an RTLB for physical→virtual translation of snooped writes.
//! * [`queues`] — **Application Device Channels**: the lock-free transmit/
//!   receive/free queue triplet mapped into the application, with
//!   protection checked at buffer registration rather than per operation.
//! * [`device`] — the [`device::Nic`] itself: the OSIRIS-style *standard*
//!   personality (kernel send path, DMA both ways, interrupt per arrival)
//!   and the *CNI* personality (ADC enqueue, Message Cache, PATHFINDER
//!   dispatch to Application Interrupt Handlers, hybrid poll/interrupt
//!   receive), with every cost taken from [`config::NicConfig`].
//! * [`config`] / [`stats`] — the tunable cost model and the counters the
//!   evaluation reads (network-cache hit ratio, DMA bytes, interrupts…).

#![deny(missing_docs)]

pub mod bus;
pub mod config;
pub mod device;
pub mod hostcache;
pub mod msgcache;
pub mod queues;
pub mod stats;

pub use bus::MemoryBus;
pub use config::{NicConfig, NicKind};
pub use device::{Nic, NicState, RxDisposition, RxPath, TxPath, TxRequest};
pub use hostcache::HostCache;
pub use msgcache::{MessageCache, MsgCacheState};
pub use queues::{ChannelQueues, Descriptor};
pub use stats::NicStats;
