//! Direct-mapped write-back host cache model.
//!
//! Table 1's memory hierarchy: a 32 KB unified, direct-mapped, write-back
//! primary cache with 1-cycle access; a 1 MB secondary cache with 10-cycle
//! access; 20-cycle memory latency. The Message Cache design interacts with
//! this hierarchy in one crucial way: the board snoops the *bus*, so dirty
//! lines hiding in the write-back cache must be flushed before a buffer is
//! transmitted (§2.2 of the paper). [`HostCache::flush_range`] reports how
//! many lines that flush writes back, which the caller turns into bus time.

use serde::{Deserialize, Serialize};

/// Host cache-hierarchy parameters (Table 1 defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Primary cache size in bytes.
    pub l1_bytes: usize,
    /// Secondary cache size in bytes.
    pub l2_bytes: usize,
    /// Line size in bytes (both levels).
    pub line_bytes: usize,
    /// Primary hit cost, CPU cycles.
    pub l1_hit_cycles: u64,
    /// Secondary access cost, CPU cycles.
    pub l2_hit_cycles: u64,
    /// Memory latency, CPU cycles.
    pub mem_cycles: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
            line_bytes: 32,
            l1_hit_cycles: 1,
            l2_hit_cycles: 10,
            mem_cycles: 20,
        }
    }
}

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Satisfied by the primary cache.
    L1Hit,
    /// Satisfied by the secondary cache.
    L2Hit,
    /// Went to memory.
    MemMiss,
}

#[derive(Clone)]
struct Level {
    line_shift: u32,
    set_mask: u64,
    tags: Vec<Option<u64>>,
    dirty: Vec<bool>,
}

impl Level {
    fn new(size: usize, line: usize) -> Self {
        let lines = size / line;
        assert!(
            lines.is_power_of_two(),
            "cache must be a power of two of lines"
        );
        Level {
            line_shift: line.trailing_zeros(),
            set_mask: lines as u64 - 1,
            tags: vec![None; lines],
            dirty: vec![false; lines],
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        ((line_addr & self.set_mask) as usize, line_addr)
    }

    /// Probe for `addr`; on hit, optionally set dirty. Returns hit.
    fn probe(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.index(addr);
        if self.tags[set] == Some(tag) {
            if write {
                self.dirty[set] = true;
            }
            true
        } else {
            false
        }
    }

    /// Install `addr`'s line; returns the evicted (line_addr, dirty) if the
    /// slot was occupied by a different line.
    fn fill(&mut self, addr: u64, write: bool) -> Option<(u64, bool)> {
        let (set, tag) = self.index(addr);
        let evicted = match self.tags[set] {
            Some(old) if old != tag => Some((old, self.dirty[set])),
            _ => None,
        };
        self.tags[set] = Some(tag);
        self.dirty[set] = write;
        evicted
    }

    /// If `addr`'s line is present and dirty, clean it and return true.
    fn clean(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        if self.tags[set] == Some(tag) && self.dirty[set] {
            self.dirty[set] = false;
            true
        } else {
            false
        }
    }

    fn present(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.tags[set] == Some(tag)
    }

    fn dirty_at(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.tags[set] == Some(tag) && self.dirty[set]
    }
}

/// The two-level write-back cache.
pub struct HostCache {
    cfg: CacheConfig,
    l1: Level,
    l2: Level,
    accesses: u64,
    l1_hits: u64,
    l2_hits: u64,
    mem_misses: u64,
    writebacks: u64,
}

impl HostCache {
    /// A cache hierarchy with `cfg`'s geometry and costs.
    pub fn new(cfg: CacheConfig) -> Self {
        HostCache {
            l1: Level::new(cfg.l1_bytes, cfg.line_bytes),
            l2: Level::new(cfg.l2_bytes, cfg.line_bytes),
            cfg,
            accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
            mem_misses: 0,
            writebacks: 0,
        }
    }

    /// Table 1 geometry.
    pub fn paper_default() -> Self {
        Self::new(CacheConfig::default())
    }

    /// Simulate one access. Returns where it hit and its cost in CPU
    /// cycles. Dirty evictions are counted as write-backs (bus traffic the
    /// caller may charge).
    pub fn access(&mut self, addr: u64, write: bool) -> (AccessOutcome, u64) {
        self.accesses += 1;
        if self.l1.probe(addr, write) {
            self.l1_hits += 1;
            return (AccessOutcome::L1Hit, self.cfg.l1_hit_cycles);
        }
        if self.l2.probe(addr, false) {
            self.l2_hits += 1;
            // Fill L1; a dirty L1 victim retires into L2 if its line is
            // still there, otherwise it goes to memory.
            if let Some((victim, dirty)) = self.l1.fill(addr, write) {
                if dirty && !self.l2.probe(victim << self.l1.line_shift, true) {
                    self.writebacks += 1;
                }
            }
            return (
                AccessOutcome::L2Hit,
                self.cfg.l1_hit_cycles + self.cfg.l2_hit_cycles,
            );
        }
        self.mem_misses += 1;
        if let Some((_, dirty)) = self.l2.fill(addr, false) {
            if dirty {
                self.writebacks += 1;
            }
        }
        if let Some((victim, dirty)) = self.l1.fill(addr, write) {
            if dirty && !self.l2.probe(victim << self.l1.line_shift, true) {
                self.writebacks += 1;
            }
        }
        (
            AccessOutcome::MemMiss,
            self.cfg.l1_hit_cycles + self.cfg.l2_hit_cycles + self.cfg.mem_cycles,
        )
    }

    /// Write back every dirty line of `[start, start+len)`; returns how
    /// many lines went to the bus. This is the pre-transmit flush required
    /// by the Message Cache's snooping discipline.
    pub fn flush_range(&mut self, start: u64, len: usize) -> u64 {
        let line = self.cfg.line_bytes as u64;
        let first = start / line * line;
        let mut flushed = 0;
        let mut addr = first;
        while addr < start + len as u64 {
            let mut dirty = false;
            if self.l1.clean(addr) {
                dirty = true;
            }
            if self.l2.clean(addr) {
                dirty = true;
            }
            if dirty {
                flushed += 1;
            }
            addr += line;
        }
        self.writebacks += flushed;
        flushed
    }

    /// Dirty lines currently held for `[start, start+len)` (either level).
    pub fn dirty_lines_in(&self, start: u64, len: usize) -> u64 {
        let line = self.cfg.line_bytes as u64;
        let first = start / line * line;
        let mut n = 0;
        let mut addr = first;
        while addr < start + len as u64 {
            if self.l1.dirty_at(addr) || self.l2.dirty_at(addr) {
                n += 1;
            }
            addr += line;
        }
        n
    }

    /// Is the line containing `addr` present in either level?
    pub fn present(&self, addr: u64) -> bool {
        self.l1.present(addr) || self.l2.present(addr)
    }

    /// (accesses, l1 hits, l2 hits, memory misses, write-backs).
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.accesses,
            self.l1_hits,
            self.l2_hits,
            self.mem_misses,
            self.writebacks,
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = HostCache::paper_default();
        let (o1, cost1) = c.access(0x1000, false);
        assert_eq!(o1, AccessOutcome::MemMiss);
        assert_eq!(cost1, 31); // 1 + 10 + 20
        let (o2, cost2) = c.access(0x1000, false);
        assert_eq!(o2, AccessOutcome::L1Hit);
        assert_eq!(cost2, 1);
        // Same line, different word.
        let (o3, _) = c.access(0x1008, true);
        assert_eq!(o3, AccessOutcome::L1Hit);
    }

    #[test]
    fn l1_conflict_falls_to_l2() {
        let mut c = HostCache::paper_default();
        let a = 0x0u64;
        let b = a + 32 * 1024; // same L1 set, different tag; different L2 set? 1MB l2 -> different index, ok
        c.access(a, false);
        c.access(b, false); // evicts a from L1 (clean)
        let (o, _) = c.access(a, false);
        assert_eq!(o, AccessOutcome::L2Hit, "a must still be in L2");
    }

    #[test]
    fn writes_leave_dirty_lines_and_flush_finds_them() {
        let mut c = HostCache::paper_default();
        let page = 0x4000u64;
        // Dirty 5 distinct lines of the page.
        for i in 0..5u64 {
            c.access(page + i * 32, true);
        }
        assert_eq!(c.dirty_lines_in(page, 2048), 5);
        let flushed = c.flush_range(page, 2048);
        assert_eq!(flushed, 5);
        assert_eq!(c.dirty_lines_in(page, 2048), 0);
        // Lines remain present (flush cleans, does not invalidate).
        assert!(c.present(page));
    }

    #[test]
    fn flush_of_clean_range_is_zero() {
        let mut c = HostCache::paper_default();
        c.access(0x8000, false);
        assert_eq!(c.flush_range(0x8000, 2048), 0);
    }

    #[test]
    fn repeated_writes_to_one_line_flush_once() {
        let mut c = HostCache::paper_default();
        for _ in 0..100 {
            c.access(0x2000, true);
        }
        assert_eq!(c.flush_range(0x2000, 32), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = HostCache::paper_default();
        c.access(0, false);
        c.access(0, false);
        let (acc, l1, _, miss, _) = c.stats();
        assert_eq!(acc, 2);
        assert_eq!(l1, 1);
        assert_eq!(miss, 1);
    }
}
