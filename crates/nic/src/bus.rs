//! The workstation memory bus.
//!
//! One shared, serially granted resource per node: CPU write-backs
//! (cache-line flushes) and NIC DMA bursts both acquire the bus (4 bus
//! cycles) and then move data at 2 bus cycles per 64-bit word at 25 MHz.
//! Contention is modelled with a next-free-time register, the same analytic
//! device used for network links. This path is the one the Message Cache
//! exists to avoid: a 4 KB page costs ~41 µs to DMA across this bus.

use crate::config::NicConfig;
use cni_sim::SimTime;

/// A completed bus transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusXfer {
    /// When the transaction was granted the bus.
    pub start: SimTime,
    /// When the last word finished transferring.
    pub end: SimTime,
}

/// The node's memory bus.
#[derive(Clone, Debug)]
pub struct MemoryBus {
    acquire: SimTime,
    per_word: SimTime,
    word_bytes: usize,
    next_free: SimTime,
    bytes_moved: u64,
    transactions: u64,
}

impl MemoryBus {
    /// A bus with the cost model of `cfg`.
    pub fn new(cfg: &NicConfig) -> Self {
        MemoryBus {
            acquire: cfg.bus(cfg.bus_acquire_cycles),
            per_word: cfg.bus(cfg.bus_cycles_per_word),
            word_bytes: cfg.word_bytes,
            next_free: SimTime::ZERO,
            bytes_moved: 0,
            transactions: 0,
        }
    }

    /// Pure timing: how long a burst of `bytes` occupies the bus
    /// (acquisition + transfer), ignoring queueing.
    pub fn burst_time(&self, bytes: usize) -> SimTime {
        let words = (bytes as u64).div_ceil(self.word_bytes as u64);
        self.acquire + SimTime::from_ps(self.per_word.as_ps() * words)
    }

    /// Execute a burst of `bytes` requested at `ready`; queues behind any
    /// transaction already holding the bus.
    pub fn transfer(&mut self, ready: SimTime, bytes: usize) -> BusXfer {
        let start = ready.max(self.next_free);
        let end = start + self.burst_time(bytes);
        self.next_free = end;
        self.bytes_moved += bytes as u64;
        self.transactions += 1;
        BusXfer { start, end }
    }

    /// Execute `lines` cache-line write-backs requested at `ready`, each a
    /// separate acquisition+burst (write-back buffers drain line by line).
    pub fn flush_lines(&mut self, ready: SimTime, lines: u64, line_bytes: usize) -> BusXfer {
        if lines == 0 {
            return BusXfer {
                start: ready,
                end: ready,
            };
        }
        let mut first = None;
        let mut t = ready;
        for _ in 0..lines {
            let x = self.transfer(t, line_bytes);
            first.get_or_insert(x.start);
            t = x.end;
        }
        BusXfer {
            start: first.expect("lines > 0"),
            end: t,
        }
    }

    /// Earliest time a new transaction could be granted.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total bytes moved over this bus.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total transactions granted.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Restore the bus's mutable state from a checkpoint (the rate
    /// parameters stay as configured).
    pub fn restore_state(&mut self, next_free: SimTime, bytes_moved: u64, transactions: u64) {
        self.next_free = next_free;
        self.bytes_moved = bytes_moved;
        self.transactions = transactions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> MemoryBus {
        MemoryBus::new(&NicConfig::default())
    }

    #[test]
    fn burst_time_formula() {
        let b = bus();
        // 4 KB = 512 words: 4 + 512*2 = 1028 bus cycles at 40 ns = 41.12 µs.
        assert_eq!(b.burst_time(4096), SimTime::from_ns(1028 * 40));
        // Single word: 4 + 2 = 6 cycles.
        assert_eq!(b.burst_time(8), SimTime::from_ns(6 * 40));
    }

    #[test]
    fn transfers_queue() {
        let mut b = bus();
        let a = b.transfer(SimTime::ZERO, 4096);
        let c = b.transfer(SimTime::ZERO, 8);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(c.start, a.end);
        assert_eq!(b.transactions(), 2);
        assert_eq!(b.bytes_moved(), 4104);
    }

    #[test]
    fn flush_lines_serialises_per_line() {
        let mut b = bus();
        // 32-byte line = 4 words: 4 + 8 = 12 cycles per line.
        let x = b.flush_lines(SimTime::ZERO, 3, 32);
        assert_eq!(x.start, SimTime::ZERO);
        assert_eq!(x.end, SimTime::from_ns(3 * 12 * 40));
        assert_eq!(b.transactions(), 3);
    }

    #[test]
    fn zero_line_flush_is_free() {
        let mut b = bus();
        let x = b.flush_lines(SimTime::from_ns(100), 0, 32);
        assert_eq!(x.start, x.end);
        assert_eq!(x.end, SimTime::from_ns(100));
        assert_eq!(b.transactions(), 0);
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = bus();
        let later = SimTime::from_us(9);
        let x = b.transfer(later, 8);
        assert_eq!(x.start, later);
    }
}
