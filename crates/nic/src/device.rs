//! The network interface device: timing composition of the send and
//! receive paths for both personalities.
//!
//! The device exposes the three path segments the cluster simulation
//! composes with the ATM fabric:
//!
//! * [`Nic::transmit`] — from "the application decides to send" to "the
//!   first cell can enter the fabric", charging kernel/ADC work to the
//!   host, flushes and DMA to the bus, and descriptor/segmentation work to
//!   the NIC processor. This is where **transmit caching** happens.
//! * [`Nic::receive`] — from "last cell arrived" to "the PDU is assembled
//!   on the board and classified": reassembly residual plus PATHFINDER
//!   classification (CNI) deciding whether an **Application Interrupt
//!   Handler** takes it or it is host-bound.
//! * [`Nic::deliver_to_host`] — from "PDU on board" to "application can
//!   see it": **receive caching**, board→host DMA, and the poll-versus-
//!   interrupt notification hybrid.
//!
//! All state mutations are deterministic; the device never consults a
//! clock of its own — callers thread simulated time through explicitly.

use crate::bus::MemoryBus;
use crate::config::{NicConfig, NicKind};
use crate::msgcache::{MessageCache, MsgCacheStats};
use crate::queues::ChannelQueues;
use crate::stats::NicStats;
use cni_atm::PduBuf;
use cni_atm::{Cell, Reassembler, ReassemblyError};
use cni_pathfinder::{Classifier, Pattern};
use cni_sim::SimTime;
use cni_trace::{TraceEvent, TraceSink};

/// Who initiates a transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOrigin {
    /// The host application/protocol stack.
    Host,
    /// Code already running on the board (an AIH reply); no host work and
    /// no host flush are charged.
    Board,
}

/// A transmission request.
#[derive(Clone, Copy, Debug)]
pub struct TxRequest {
    /// Message length in bytes.
    pub len: usize,
    /// How many cells the fabric will use (from the segmenter).
    pub cells: usize,
    /// Backing host page for page-sized payloads — the unit of Message
    /// Cache residency. `None` for small control messages.
    pub page: Option<u64>,
    /// The header's cache bit: bind this buffer on a miss?
    pub cacheable: bool,
    /// Dirty host-cache lines that must be flushed before the board can
    /// see a consistent copy.
    pub dirty_lines: u64,
    /// Host- or board-initiated.
    pub origin: TxOrigin,
}

/// Resolved transmit timing.
#[derive(Clone, Copy, Debug)]
pub struct TxPath {
    /// When the host CPU is free again (equals the request time for
    /// board-origin sends).
    pub host_done: SimTime,
    /// When the first cell may enter the fabric.
    pub wire_start: SimTime,
    /// Per-cell gap for the fabric (NIC segmentation rate).
    pub cell_gap: SimTime,
    /// When the NIC processor is free again.
    pub nic_done: SimTime,
    /// Whether the Message Cache satisfied the payload (no host→board DMA).
    pub cache_hit: bool,
}

/// Where a received PDU was routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxDisposition {
    /// Matched an installed Application Interrupt Handler pattern; the
    /// protocol engine on the board takes it.
    Handler(u32),
    /// Host-bound: deliver through [`Nic::deliver_to_host`].
    HostBound,
}

/// Resolved receive-side timing.
#[derive(Clone, Copy, Debug)]
pub struct RxPath {
    /// When the NIC processor actually started on this PDU (the arrival
    /// time, or later if the processor was busy with earlier work).
    pub rx_start: SimTime,
    /// When AAL5 reassembly (SAR residual) finished, before any
    /// PATHFINDER classification work.
    pub sar_done: SimTime,
    /// When the PDU is assembled and classified on the board.
    pub ready_at: SimTime,
    /// Routing verdict.
    pub disposition: RxDisposition,
}

/// A completed host delivery.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// When the data is in host memory and the application has been told.
    pub at: SimTime,
    /// Host CPU cycles consumed by the notification (interrupt/kernel or
    /// poll).
    pub host_cycles: u64,
    /// True if an interrupt was used, false if the application's poll
    /// picked it up.
    pub via_interrupt: bool,
}

/// One node's network interface.
pub struct Nic {
    kind: NicKind,
    cfg: NicConfig,
    /// The node's memory bus (shared by flushes and DMA).
    pub bus: MemoryBus,
    msg_cache: Option<MessageCache>,
    classifier: Classifier<u32>,
    channels: Vec<ChannelQueues>,
    reassembler: Reassembler,
    nic_busy: SimTime,
    busy_accum: SimTime,
    stats: NicStats,
    trace: TraceSink,
    node: u32,
}

impl Nic {
    /// Build a NIC of `kind` with cost model `cfg`.
    pub fn new(kind: NicKind, cfg: NicConfig) -> Self {
        let msg_cache = match kind {
            NicKind::Cni if cfg.cni_features.msg_cache => {
                Some(MessageCache::new(cfg.msg_cache_buffers(), cfg.rtlb_entries))
            }
            _ => None,
        };
        Nic {
            kind,
            bus: MemoryBus::new(&cfg),
            msg_cache,
            classifier: Classifier::new(),
            channels: Vec::new(),
            reassembler: Reassembler::new(),
            nic_busy: SimTime::ZERO,
            busy_accum: SimTime::ZERO,
            stats: NicStats::default(),
            trace: TraceSink::Disabled,
            node: 0,
            cfg,
        }
    }

    /// Attach a trace sink, tagging this device's events with `node`.
    /// Propagates to already-open device channels.
    pub fn set_trace(&mut self, trace: TraceSink, node: u32) {
        for (id, ch) in self.channels.iter_mut().enumerate() {
            ch.set_trace(trace.clone(), node, id as u32);
        }
        self.trace = trace;
        self.node = node;
    }

    /// Open an Application Device Channel: the kernel carves a queue
    /// triplet out of the board's dual-ported memory, validates the
    /// application's buffer region once, and maps the queues into user
    /// space (CNI only — the standard interface keeps the kernel on the
    /// data path). Returns the channel id.
    ///
    /// # Panics
    /// Panics on a standard NIC.
    pub fn open_channel(&mut self, capacity: usize, region_base: u64, region_len: u64) -> usize {
        assert_eq!(
            self.kind,
            NicKind::Cni,
            "standard NICs have no user-mapped device channels"
        );
        let mut q = ChannelQueues::new(capacity);
        q.register_region(region_base, region_len);
        q.set_trace(self.trace.clone(), self.node, self.channels.len() as u32);
        self.channels.push(q);
        self.channels.len() - 1
    }

    /// The queue triplet of an open channel (application side).
    pub fn channel_mut(&mut self, id: usize) -> &mut ChannelQueues {
        &mut self.channels[id]
    }

    /// Number of open channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// This NIC's personality.
    pub fn kind(&self) -> NicKind {
        self.kind
    }

    /// The cost model in use.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Install an AIH dispatch pattern (CNI only): packets matching
    /// `pattern` transfer control to handler `handler`.
    ///
    /// # Panics
    /// Panics on a standard NIC, which has no classifier hardware.
    pub fn install_handler_pattern(&mut self, pattern: Pattern, handler: u32) {
        assert_eq!(
            self.kind,
            NicKind::Cni,
            "standard NICs cannot host application handlers"
        );
        self.classifier.install(pattern, handler);
    }

    /// Resolve the transmit path for `req` issued at `now`.
    pub fn transmit(&mut self, now: SimTime, req: &TxRequest) -> TxPath {
        self.stats.tx_messages += 1;
        self.stats.tx_cells += req.cells as u64;

        // --- Host segment -------------------------------------------------
        let (host_free, host_origin) = match req.origin {
            TxOrigin::Board => (now, false),
            TxOrigin::Host => {
                let cpu = match self.kind {
                    NicKind::Standard => self.cfg.kernel_send_cycles,
                    NicKind::Cni => self.cfg.adc_enqueue_cycles,
                };
                let mut t = now + self.cfg.host(cpu);
                if req.dirty_lines > 0 {
                    // Write-back discipline: dirty lines must reach memory
                    // (and the snooper) before the board reads or sends.
                    let x = self
                        .bus
                        .flush_lines(t, req.dirty_lines, self.cfg.cache_line_bytes);
                    t = x.end;
                }
                (t, true)
            }
        };

        // --- NIC segment ---------------------------------------------------
        let work_start = host_free.max(self.nic_busy);
        let mut t = work_start + self.cfg.nic(self.cfg.descriptor_cycles);
        let mut hit = false;
        if let Some(page) = req.page {
            self.stats.tx_page_lookups += 1;
            if let Some(mc) = self.msg_cache.as_mut() {
                t += self.cfg.nic(self.cfg.buffer_map_cycles);
                if mc.lookup_tx(page) {
                    hit = true;
                    self.stats.tx_cache_hits += 1;
                    self.trace.emit(self.node, TraceEvent::MsgCacheHit { page });
                } else {
                    self.trace
                        .emit(self.node, TraceEvent::MsgCacheMiss { page });
                }
            }
        }
        if !hit && req.len > 0 {
            // DMA the payload host → board.
            let x = self.bus.transfer(t, req.len);
            self.trace.emit_at(
                x.end.as_ps(),
                self.node,
                TraceEvent::DmaToBoard {
                    bytes: req.len as u64,
                    dur_ps: (x.end - t).as_ps(),
                },
            );
            t = x.end;
            self.stats.dma_bytes_to_board += req.len as u64;
            if let (Some(page), Some(mc), true) = (req.page, self.msg_cache.as_mut(), req.cacheable)
            {
                let evicted = mc.insert(page);
                self.trace
                    .emit(self.node, TraceEvent::MsgCacheInsert { page, evicted });
            }
        }
        // Segment the first cell; the fabric spaces the rest by cell_gap.
        let cell_gap = self.cfg.tx_cell_gap();
        let wire_start = t + cell_gap;
        let nic_done = t + SimTime::from_ps(cell_gap.as_ps() * req.cells as u64);
        self.busy_accum += nic_done - work_start;
        self.nic_busy = nic_done;

        TxPath {
            host_done: if host_origin { host_free } else { now },
            wire_start,
            cell_gap,
            nic_done,
            cache_hit: hit,
        }
    }

    /// Resolve the receive path for a PDU whose last cell arrived at
    /// `arrival`; `header` is the PDU's leading bytes (what PATHFINDER
    /// examines).
    pub fn receive(&mut self, arrival: SimTime, cells: usize, header: &[u8]) -> RxPath {
        self.stats.rx_messages += 1;
        self.stats.rx_cells += cells as u64;
        // Per-cell reassembly overlaps arrival; the residual after the last
        // cell is one cell's worth of SAR work.
        let rx_start = arrival.max(self.nic_busy);
        let sar_done = rx_start + self.cfg.nic(self.cfg.sar_rx_cycles_per_cell);
        let mut t = sar_done;
        let disposition = match self.kind {
            NicKind::Standard => RxDisposition::HostBound,
            NicKind::Cni => match self
                .classifier
                .classify_traced(header, &self.trace, self.node)
            {
                Some(outcome) => {
                    self.stats.classify_cells += outcome.cells_visited as u64;
                    t += self
                        .cfg
                        .nic(self.cfg.classify_cycles_per_cell * outcome.cells_visited as u64);
                    self.stats.aih_dispatches += 1;
                    self.trace.emit_at(
                        t.as_ps(),
                        self.node,
                        TraceEvent::AihDispatch {
                            handler: outcome.target,
                        },
                    );
                    RxDisposition::Handler(outcome.target)
                }
                None => {
                    // One root comparison told us nothing matched.
                    self.stats.classify_cells += 1;
                    t += self.cfg.nic(self.cfg.classify_cycles_per_cell);
                    RxDisposition::HostBound
                }
            },
        };
        self.busy_accum += t - rx_start;
        self.nic_busy = t;
        RxPath {
            rx_start,
            sar_done,
            ready_at: t,
            disposition,
        }
    }

    /// Run the cells that actually reached this NIC through AAL5
    /// reassembly, verifying the trailer CRC-32 and length field on the
    /// wire bytes themselves. Cells accumulate per VCI across calls (a
    /// frame whose end-of-PDU cell was lost leaves a partial that merges
    /// with the retransmission and is then rejected by the CRC, exactly as
    /// real AAL5 behaves), so `Some(..)` is returned only when a cell in
    /// `cells` carries the end-of-PDU mark. Rejected PDUs are counted into
    /// [`NicStats::rx_crc_failures`] / [`NicStats::rx_frames_discarded`]
    /// and emit a `CrcFail` trace event.
    pub fn ingest_frame(&mut self, cells: &[Cell]) -> Option<Result<PduBuf, ReassemblyError>> {
        let mut out = None;
        for cell in cells {
            if let Some(done) = self.reassembler.push(cell) {
                if let Err(e) = &done {
                    self.stats.rx_frames_discarded += 1;
                    if *e == ReassemblyError::CrcMismatch {
                        self.stats.rx_crc_failures += 1;
                    }
                    self.trace.emit(
                        self.node,
                        TraceEvent::CrcFail {
                            vci: cell.header.vci as u32,
                        },
                    );
                }
                out = Some(done);
            }
        }
        out
    }

    /// Hand a PDU delivered by [`Nic::ingest_frame`] back to the board:
    /// its gather buffer returns to the reassembler's pool (when the
    /// handle is the storage's sole owner) instead of hitting the
    /// allocator on every frame. Buffers move through the receive path by
    /// reference-counted handle; this is the release half of that
    /// life cycle.
    pub fn recycle_pdu(&mut self, pdu: PduBuf) {
        self.reassembler.recycle(pdu);
    }

    /// Move a board-resident PDU into host memory and notify the
    /// application. `host_waiting` selects the CNI's poll/interrupt hybrid:
    /// a blocked application is spinning on its receive queue (poll), an
    /// otherwise-busy host takes an interrupt. The standard NIC always
    /// interrupts.
    pub fn deliver_to_host(
        &mut self,
        now: SimTime,
        len: usize,
        dest_page: Option<u64>,
        cacheable: bool,
        host_waiting: bool,
    ) -> Delivery {
        let work_start = now.max(self.nic_busy);
        let mut t = work_start;
        // Receive caching: bind the arriving page to a board buffer so a
        // future migration transmits without a host DMA. The bind costs a
        // board-to-board copy of the payload.
        if let (NicKind::Cni, Some(page), true) = (self.kind, dest_page, cacheable) {
            let words = self.cfg.words(len);
            t += self.cfg.nic(self.cfg.board_copy_cycles_per_word * words);
            if let Some(mc) = self.msg_cache.as_mut() {
                let evicted = mc.insert(page);
                self.trace
                    .emit(self.node, TraceEvent::MsgCacheInsert { page, evicted });
            }
        }
        if len > 0 {
            let x = self.bus.transfer(t, len);
            self.trace.emit_at(
                x.end.as_ps(),
                self.node,
                TraceEvent::DmaToHost {
                    bytes: len as u64,
                    dur_ps: (x.end - t).as_ps(),
                },
            );
            t = x.end;
            self.stats.dma_bytes_to_host += len as u64;
        }
        self.busy_accum += t - work_start;
        self.nic_busy = t;
        let (host_cycles, via_interrupt) = match self.kind {
            NicKind::Standard => {
                self.stats.interrupts += 1;
                (
                    self.cfg.interrupt_cycles + self.cfg.kernel_recv_cycles,
                    true,
                )
            }
            NicKind::Cni => {
                if host_waiting && self.cfg.cni_features.polling {
                    self.stats.polls += 1;
                    (self.cfg.poll_cycles, false)
                } else {
                    self.stats.interrupts += 1;
                    (self.cfg.interrupt_cycles, true)
                }
            }
        };
        self.trace.emit_at(
            t.as_ps(),
            self.node,
            if via_interrupt {
                TraceEvent::Interrupt
            } else {
                TraceEvent::Poll
            },
        );
        Delivery {
            at: t,
            host_cycles,
            via_interrupt,
        }
    }

    /// Run `nic_cycles` of Application Interrupt Handler work starting no
    /// earlier than `now`; returns when the handler completes. The NIC
    /// processor is serialised.
    pub fn run_handler(&mut self, now: SimTime, nic_cycles: u64) -> SimTime {
        let t = now.max(self.nic_busy) + self.cfg.nic(nic_cycles);
        self.busy_accum += self.cfg.nic(nic_cycles);
        self.nic_busy = t;
        t
    }

    /// Offer a snooped host write on `page` to the Message Cache.
    /// No-op (false) on a standard NIC.
    pub fn snoop_write(&mut self, page: u64) -> bool {
        match self.msg_cache.as_mut() {
            Some(mc) => {
                let resident = mc.snoop_write(page).0;
                self.trace
                    .emit(self.node, TraceEvent::MsgCacheSnoop { page, resident });
                resident
            }
            None => false,
        }
    }

    /// Drop any board binding of `page` (host copy diverged invisibly).
    pub fn invalidate_page(&mut self, page: u64) {
        if let Some(mc) = self.msg_cache.as_mut() {
            if mc.invalidate(page) {
                self.trace
                    .emit(self.node, TraceEvent::MsgCacheInvalidate { page });
            }
        }
    }

    /// Is `page` currently board-resident?
    pub fn page_resident(&self, page: u64) -> bool {
        self.msg_cache
            .as_ref()
            .map(|mc| mc.contains(page))
            .unwrap_or(false)
    }

    /// Device counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Count NIC-resident collective steps: `combines` barrier arrivals
    /// folded into combining state, `forwards` collective messages sent
    /// down a tree or lock chain by the NIC processor.
    pub fn record_collective(&mut self, combines: u64, forwards: u64) {
        self.stats.coll_combines += combines;
        self.stats.coll_forwards += forwards;
    }

    /// Message Cache counters (zeroes for a standard NIC).
    pub fn msg_cache_stats(&self) -> MsgCacheStats {
        self.msg_cache
            .as_ref()
            .map(|mc| mc.stats())
            .unwrap_or_default()
    }

    /// When the NIC processor is next free.
    pub fn nic_busy_until(&self) -> SimTime {
        self.nic_busy
    }

    /// Cumulative NIC-processor busy time since construction (transmit
    /// segmentation, SAR/classify, handler execution and host-delivery
    /// work, including the bus time of DMAs the engine waits on). The
    /// utilization profiler samples this as a virtual-time gauge; it is
    /// deliberately not part of the serialized [`NicStats`].
    pub fn busy_time(&self) -> SimTime {
        self.busy_accum
    }

    /// Capture this NIC's complete mutable state for a checkpoint: bus
    /// timing, Message Cache (slots, CLOCK hands, RTLB), in-flight AAL5
    /// reassembly partials, classifier counters, processor busy state and
    /// the device counters. The classifier's decision DAG and any cost
    /// parameters are rebuilt from configuration on restore.
    ///
    /// # Panics
    /// Panics if device channels are open — the engine drives NICs without
    /// per-device channel queues, so checkpointable worlds never open any.
    pub fn snapshot_state(&self) -> NicState {
        assert!(
            self.channels.is_empty(),
            "NICs with open device channels are not checkpointable"
        );
        NicState {
            bus_next_free: self.bus.next_free(),
            bus_bytes_moved: self.bus.bytes_moved(),
            bus_transactions: self.bus.transactions(),
            msg_cache: self.msg_cache.as_ref().map(MessageCache::snapshot_state),
            partials: self.reassembler.snapshot_partials(),
            classifications: self.classifier.snapshot_counters().0,
            classify_cells_total: self.classifier.snapshot_counters().1,
            nic_busy: self.nic_busy,
            busy_accum: self.busy_accum,
            stats: self.stats,
        }
    }

    /// Restore state captured with [`Nic::snapshot_state`] into a NIC
    /// freshly built with the same kind and configuration (handler
    /// patterns must already be reinstalled). Returns `Err` (never panics)
    /// when the snapshot does not fit this device.
    pub fn restore_state(&mut self, s: &NicState) -> Result<(), String> {
        match (&mut self.msg_cache, &s.msg_cache) {
            (Some(mc), Some(ms)) => mc.restore_state(ms)?,
            (None, None) => {}
            (have, want) => {
                return Err(format!(
                    "message-cache presence mismatch: device {}, snapshot {}",
                    if have.is_some() {
                        "has one"
                    } else {
                        "has none"
                    },
                    if want.is_some() {
                        "has one"
                    } else {
                        "has none"
                    },
                ));
            }
        }
        self.bus
            .restore_state(s.bus_next_free, s.bus_bytes_moved, s.bus_transactions);
        self.reassembler.restore_partials(s.partials.clone());
        self.classifier
            .restore_counters(s.classifications, s.classify_cells_total);
        self.nic_busy = s.nic_busy;
        self.busy_accum = s.busy_accum;
        self.stats = s.stats;
        Ok(())
    }
}

/// Serializable mid-run state of one [`Nic`].
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NicState {
    /// Memory-bus next-free register.
    pub bus_next_free: SimTime,
    /// Memory-bus bytes moved.
    pub bus_bytes_moved: u64,
    /// Memory-bus transactions granted.
    pub bus_transactions: u64,
    /// Message Cache state (CNI with the cache enabled only).
    pub msg_cache: Option<crate::msgcache::MsgCacheState>,
    /// In-flight AAL5 reassembly partials, ascending VCI order.
    pub partials: Vec<(u16, Vec<u8>)>,
    /// PATHFINDER classification count.
    pub classifications: u64,
    /// PATHFINDER cumulative comparison cells.
    pub classify_cells_total: u64,
    /// When the NIC processor is next free.
    pub nic_busy: SimTime,
    /// Cumulative NIC-processor busy time.
    pub busy_accum: SimTime,
    /// Device counters.
    pub stats: NicStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_pathfinder::FieldTest;

    fn page_req(page: u64, dirty: u64) -> TxRequest {
        TxRequest {
            len: 2048,
            cells: 43,
            page: Some(page),
            cacheable: true,
            dirty_lines: dirty,
            origin: TxOrigin::Host,
        }
    }

    #[test]
    fn cni_second_send_of_same_page_hits() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        let t1 = nic.transmit(SimTime::ZERO, &page_req(7, 8));
        assert!(!t1.cache_hit);
        let t2 = nic.transmit(t1.nic_done, &page_req(7, 0));
        assert!(t2.cache_hit);
        assert_eq!(nic.stats().tx_cache_hits, 1);
        assert_eq!(nic.stats().dma_bytes_to_board, 2048);
        assert!((nic.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn standard_never_hits() {
        let mut nic = Nic::new(NicKind::Standard, NicConfig::default());
        let t1 = nic.transmit(SimTime::ZERO, &page_req(7, 8));
        let t2 = nic.transmit(t1.nic_done, &page_req(7, 0));
        assert!(!t1.cache_hit && !t2.cache_hit);
        assert_eq!(nic.stats().dma_bytes_to_board, 4096);
    }

    #[test]
    fn cache_hit_is_faster_than_miss() {
        let cfg = NicConfig::default();
        let mut nic = Nic::new(NicKind::Cni, cfg);
        let miss = nic.transmit(SimTime::ZERO, &page_req(1, 0));
        let start = miss.nic_done;
        let hit = nic.transmit(start, &page_req(1, 0));
        let miss_latency = miss.wire_start;
        let hit_latency = hit.wire_start - start;
        assert!(
            hit_latency < miss_latency,
            "hit {hit_latency:?} !< miss {miss_latency:?}"
        );
        // The difference is roughly one 2 KB DMA: 4 + 256*2 bus cycles.
        let dma = cfg.bus(4 + 256 * 2);
        assert!(miss_latency - hit_latency >= SimTime::from_ps(dma.as_ps() * 9 / 10));
    }

    #[test]
    fn cni_send_charges_less_host_time_than_standard() {
        let cfg = NicConfig::default();
        let mut cni = Nic::new(NicKind::Cni, cfg);
        let mut std_ = Nic::new(NicKind::Standard, cfg);
        let a = cni.transmit(SimTime::ZERO, &page_req(1, 4));
        let b = std_.transmit(SimTime::ZERO, &page_req(1, 4));
        assert!(
            a.host_done < b.host_done,
            "{:?} vs {:?}",
            a.host_done,
            b.host_done
        );
    }

    #[test]
    fn board_origin_charges_no_host_time() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        let req = TxRequest {
            origin: TxOrigin::Board,
            ..page_req(3, 99)
        };
        let t = nic.transmit(SimTime::from_us(10), &req);
        assert_eq!(t.host_done, SimTime::from_us(10));
    }

    #[test]
    fn classifier_routes_to_handler() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        nic.install_handler_pattern(Pattern::new(vec![FieldTest::byte(0, 0xD5)]), 3);
        let rx = nic.receive(SimTime::from_us(1), 2, &[0xD5, 0, 0, 1]);
        assert_eq!(rx.disposition, RxDisposition::Handler(3));
        assert_eq!(nic.stats().aih_dispatches, 1);
        let rx2 = nic.receive(rx.ready_at, 2, &[0x11, 0, 0, 1]);
        assert_eq!(rx2.disposition, RxDisposition::HostBound);
    }

    #[test]
    fn standard_receive_is_always_host_bound() {
        let mut nic = Nic::new(NicKind::Standard, NicConfig::default());
        let rx = nic.receive(SimTime::from_us(1), 2, &[0xD5]);
        assert_eq!(rx.disposition, RxDisposition::HostBound);
    }

    #[test]
    #[should_panic(expected = "cannot host application handlers")]
    fn standard_rejects_handler_install() {
        let mut nic = Nic::new(NicKind::Standard, NicConfig::default());
        nic.install_handler_pattern(Pattern::new(vec![FieldTest::byte(0, 1)]), 0);
    }

    #[test]
    fn delivery_notification_hybrid() {
        let cfg = NicConfig::default();
        let mut nic = Nic::new(NicKind::Cni, cfg);
        let polled = nic.deliver_to_host(SimTime::ZERO, 512, None, false, true);
        assert!(!polled.via_interrupt);
        assert_eq!(polled.host_cycles, cfg.poll_cycles);
        let interrupted = nic.deliver_to_host(polled.at, 512, None, false, false);
        assert!(interrupted.via_interrupt);
        assert_eq!(interrupted.host_cycles, cfg.interrupt_cycles);
        assert_eq!(nic.stats().polls, 1);
        assert_eq!(nic.stats().interrupts, 1);
    }

    #[test]
    fn standard_delivery_always_interrupts() {
        let cfg = NicConfig::default();
        let mut nic = Nic::new(NicKind::Standard, cfg);
        let d = nic.deliver_to_host(SimTime::ZERO, 512, None, false, true);
        assert!(d.via_interrupt);
        assert_eq!(d.host_cycles, cfg.interrupt_cycles + cfg.kernel_recv_cycles);
    }

    #[test]
    fn receive_caching_enables_future_tx_hit() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        let d = nic.deliver_to_host(SimTime::ZERO, 2048, Some(42), true, true);
        assert!(nic.page_resident(42));
        // Page migrates onward: the transmit hits without ever having been
        // DMAed host→board.
        let t = nic.transmit(d.at, &page_req(42, 0));
        assert!(t.cache_hit);
        assert_eq!(nic.stats().dma_bytes_to_board, 0);
    }

    #[test]
    fn snoop_keeps_board_copy_live_and_invalidations_kill_it() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        nic.transmit(SimTime::ZERO, &page_req(5, 0));
        assert!(nic.page_resident(5));
        assert!(nic.snoop_write(5));
        nic.invalidate_page(5);
        assert!(!nic.page_resident(5));
        assert!(!nic.snoop_write(5));
    }

    #[test]
    fn channels_open_and_enforce_protection() {
        use crate::queues::Descriptor;
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        let ch = nic.open_channel(8, 0x10_000, 0x8000);
        assert_eq!(nic.channels(), 1);
        let q = nic.channel_mut(ch);
        assert!(q
            .enqueue_transmit(Descriptor {
                vaddr: 0x10_800,
                len: 2048,
                cacheable: true
            })
            .is_ok());
        assert!(q
            .enqueue_transmit(Descriptor {
                vaddr: 0x9_000,
                len: 64,
                cacheable: false
            })
            .is_err());
        assert_eq!(q.dequeue_transmit().unwrap().vaddr, 0x10_800);
    }

    #[test]
    #[should_panic(expected = "no user-mapped device channels")]
    fn standard_nic_has_no_channels() {
        let mut nic = Nic::new(NicKind::Standard, NicConfig::default());
        let _ = nic.open_channel(8, 0, 0x1000);
    }

    #[test]
    fn reassembly_verifies_crc_and_catches_a_single_flipped_bit() {
        use cni_atm::Segmenter;
        let seg = Segmenter::standard();
        let data: Vec<u8> = (0..300).map(|i| (i * 17 % 256) as u8).collect();
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());

        // Intact frame: reassembles to the original bytes.
        let cells = seg.segment(4, &data);
        let ok = nic.ingest_frame(&cells).expect("EOP present");
        assert_eq!(&ok.expect("valid frame")[..], &data[..]);
        assert_eq!(nic.stats().rx_crc_failures, 0);

        // Same frame with exactly one payload bit flipped: the trailer
        // CRC-32 must catch it on receive.
        let mut cells = seg.segment(4, &data);
        cells[2].payload.xor_bit(11, 5);
        let bad = nic.ingest_frame(&cells).expect("EOP present");
        assert_eq!(bad, Err(ReassemblyError::CrcMismatch));
        assert_eq!(nic.stats().rx_crc_failures, 1);
        assert_eq!(nic.stats().rx_frames_discarded, 1);

        // A fresh, clean retransmission then gets through.
        let cells = seg.segment(4, &data);
        let again = nic.ingest_frame(&cells).expect("EOP present");
        assert_eq!(&again.expect("valid frame")[..], &data[..]);
    }

    #[test]
    fn lost_eop_partial_merges_with_retransmission_and_is_rejected() {
        use cni_atm::Segmenter;
        let seg = Segmenter::standard();
        let data = vec![0x3Cu8; 200];
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        let cells = seg.segment(9, &data);
        assert!(cells.len() > 1);
        // First attempt loses the end-of-PDU cell: no completion, a
        // partial stays buffered on the VCI.
        assert!(nic.ingest_frame(&cells[..cells.len() - 1]).is_none());
        // The retransmission appends to that partial; the combined PDU
        // completes at its EOP and fails the CRC — faithful AAL5.
        let merged = nic.ingest_frame(&cells).expect("EOP present now");
        assert!(merged.is_err());
        // The VCI buffer is cleared by the rejection, so the next
        // retransmission reassembles cleanly.
        let clean = nic.ingest_frame(&cells).expect("EOP present");
        assert_eq!(&clean.expect("valid frame")[..], &data[..]);
    }

    #[test]
    fn nic_processor_serialises_work() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        let t1 = nic.transmit(SimTime::ZERO, &page_req(1, 0));
        // A receive arriving while transmit segmentation is ongoing waits
        // for the NIC processor.
        let rx = nic.receive(SimTime::from_ns(1), 1, &[0]);
        assert!(rx.ready_at >= t1.nic_done);
    }

    #[test]
    fn receive_stage_boundaries_are_monotone() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        nic.transmit(SimTime::ZERO, &page_req(1, 0));
        let arrival = SimTime::from_ns(1);
        let rx = nic.receive(arrival, 2, &[0xD5, 0, 0, 1]);
        // arrival ≤ rx_start ≤ sar_done ≤ ready_at: the span-stage tiling
        // the observability layer relies on.
        assert!(rx.rx_start >= arrival);
        assert!(rx.sar_done >= rx.rx_start);
        assert!(rx.ready_at >= rx.sar_done);
        // Busy with earlier transmit work: the wait shows up before SAR.
        assert!(rx.rx_start > arrival);
    }

    #[test]
    fn busy_time_accumulates_work_not_idle() {
        let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
        assert_eq!(nic.busy_time(), SimTime::ZERO);
        let t1 = nic.transmit(SimTime::ZERO, &page_req(1, 0));
        let after_tx = nic.busy_time();
        // The NIC worked from when the host handed it the request until
        // nic_done — a nonzero span bounded by the whole transmit.
        assert!(after_tx > SimTime::ZERO && after_tx <= t1.nic_done);
        // A long idle gap then a receive: busy time grows by the work,
        // not by the gap.
        let arrival = t1.nic_done + SimTime::from_us(100);
        let rx = nic.receive(arrival, 1, &[0]);
        assert_eq!(nic.busy_time(), after_tx + (rx.ready_at - arrival));
    }
}
