//! Aggregated per-NIC statistics.

use serde::{Deserialize, Serialize};

/// Counters one NIC accumulates over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Messages transmitted.
    pub tx_messages: u64,
    /// Messages received.
    pub rx_messages: u64,
    /// Cells transmitted.
    pub tx_cells: u64,
    /// Cells received.
    pub rx_cells: u64,
    /// Bytes DMAed host → board.
    pub dma_bytes_to_board: u64,
    /// Bytes DMAed board → host.
    pub dma_bytes_to_host: u64,
    /// Transmissions satisfied from the Message Cache (no host DMA).
    pub tx_cache_hits: u64,
    /// Transmissions of page-backed buffers (hit-ratio denominator).
    pub tx_page_lookups: u64,
    /// Host interrupts raised.
    pub interrupts: u64,
    /// Host polls that found work.
    pub polls: u64,
    /// Messages handled by Application Interrupt Handlers on the board.
    pub aih_dispatches: u64,
    /// PATHFINDER comparison cells evaluated.
    pub classify_cells: u64,
    /// Received PDUs rejected because the AAL5 trailer CRC-32 did not
    /// match the reassembled bytes.
    pub rx_crc_failures: u64,
    /// Received PDUs discarded for any reassembly failure (CRC, length
    /// mismatch, truncation). Superset of `rx_crc_failures`.
    pub rx_frames_discarded: u64,
    /// Collective combine steps executed on the NIC processor (barrier
    /// arrivals folded into NIC-resident combining state).
    pub coll_combines: u64,
    /// Collective messages forwarded down a tree by the NIC processor
    /// (release broadcasts, lock-chain forwards).
    pub coll_forwards: u64,
}

impl NicStats {
    /// The paper's network cache hit ratio for this NIC.
    pub fn hit_ratio(&self) -> f64 {
        if self.tx_page_lookups == 0 {
            0.0
        } else {
            self.tx_cache_hits as f64 / self.tx_page_lookups as f64
        }
    }

    /// Merge another NIC's counters (cluster-wide aggregation).
    pub fn merge(&mut self, o: &NicStats) {
        self.tx_messages += o.tx_messages;
        self.rx_messages += o.rx_messages;
        self.tx_cells += o.tx_cells;
        self.rx_cells += o.rx_cells;
        self.dma_bytes_to_board += o.dma_bytes_to_board;
        self.dma_bytes_to_host += o.dma_bytes_to_host;
        self.tx_cache_hits += o.tx_cache_hits;
        self.tx_page_lookups += o.tx_page_lookups;
        self.interrupts += o.interrupts;
        self.polls += o.polls;
        self.aih_dispatches += o.aih_dispatches;
        self.classify_cells += o.classify_cells;
        self.rx_crc_failures += o.rx_crc_failures;
        self.rx_frames_discarded += o.rx_frames_discarded;
        self.coll_combines += o.coll_combines;
        self.coll_forwards += o.coll_forwards;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_guarded_against_zero() {
        let s = NicStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NicStats {
            tx_messages: 2,
            tx_cache_hits: 1,
            tx_page_lookups: 2,
            ..NicStats::default()
        };
        let b = NicStats {
            tx_messages: 3,
            tx_cache_hits: 2,
            tx_page_lookups: 2,
            ..NicStats::default()
        };
        a.merge(&b);
        assert_eq!(a.tx_messages, 5);
        assert!((a.hit_ratio() - 0.75).abs() < 1e-12);
    }
}
