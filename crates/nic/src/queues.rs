//! Application Device Channels: the user-mapped queue triplet.
//!
//! When an application opens a connection, the kernel maps one triplet of
//! transmit / receive / free queues (carved out of the board's dual-ported
//! memory) into the application's address space and gets out of the way:
//! sends and receives are descriptor enqueues/dequeues on these lock-free
//! rings. Protection comes from registration — the kernel validates the
//! buffer region at channel-open time, and the board bounds-checks each
//! descriptor against the registered region (a cheap hardware compare,
//! which is how "verification overhead is eliminated from the send and
//! receive paths").

use cni_trace::{TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A buffer descriptor the application and the board exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    /// Virtual address of the buffer.
    pub vaddr: u64,
    /// Length in bytes.
    pub len: u32,
    /// The Message-Cache hint bit from the message header: should the
    /// board keep a bound copy of this buffer?
    pub cacheable: bool,
}

/// Why an enqueue was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueError {
    /// The ring is full; the application must retry (or back off).
    Full,
    /// The descriptor points outside the channel's registered region —
    /// a protection violation.
    Protection,
}

/// One device channel's queue triplet plus its registered buffer region.
pub struct ChannelQueues {
    region: Option<(u64, u64)>,
    capacity: usize,
    transmit: VecDeque<Descriptor>,
    receive: VecDeque<Descriptor>,
    free: VecDeque<Descriptor>,
    enqueues: u64,
    dequeues: u64,
    protection_faults: u64,
    overflow_drops: u64,
    trace: TraceSink,
    node: u32,
    channel: u32,
}

impl ChannelQueues {
    /// A channel whose three rings each hold `capacity` descriptors.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queues need capacity");
        ChannelQueues {
            region: None,
            capacity,
            transmit: VecDeque::with_capacity(capacity),
            receive: VecDeque::with_capacity(capacity),
            free: VecDeque::with_capacity(capacity),
            enqueues: 0,
            dequeues: 0,
            protection_faults: 0,
            overflow_drops: 0,
            trace: TraceSink::Disabled,
            node: 0,
            channel: 0,
        }
    }

    /// Attach a trace sink; ring operations record `AdcEnqueue`/`AdcDequeue`
    /// events tagged with `node` (and carrying `channel` as payload).
    pub fn set_trace(&mut self, trace: TraceSink, node: u32, channel: u32) {
        self.trace = trace;
        self.node = node;
        self.channel = channel;
    }

    fn trace_enqueue(&self, len: u32) {
        self.trace.emit(
            self.node,
            TraceEvent::AdcEnqueue {
                channel: self.channel,
                len,
            },
        );
    }

    fn trace_dequeue(&self, len: u32) {
        self.trace.emit(
            self.node,
            TraceEvent::AdcDequeue {
                channel: self.channel,
                len,
            },
        );
    }

    /// Kernel-side: register the buffer region this channel may reference.
    /// Called once at connection setup.
    pub fn register_region(&mut self, base: u64, len: u64) {
        self.region = Some((base, len));
    }

    fn check(&mut self, d: &Descriptor) -> Result<(), QueueError> {
        match self.region {
            Some((base, len)) if d.vaddr >= base && d.vaddr + d.len as u64 <= base + len => Ok(()),
            _ => {
                self.protection_faults += 1;
                Err(QueueError::Protection)
            }
        }
    }

    fn push(
        queue: &mut VecDeque<Descriptor>,
        capacity: usize,
        d: Descriptor,
    ) -> Result<(), QueueError> {
        if queue.len() == capacity {
            return Err(QueueError::Full);
        }
        queue.push_back(d);
        Ok(())
    }

    /// A full ring refused a descriptor: counted backpressure, never a
    /// panic — the caller retries, backs off, or (for the board) NAKs.
    fn note_overflow(&mut self) {
        self.overflow_drops += 1;
        self.trace.emit(
            self.node,
            TraceEvent::RingOverflow {
                channel: self.channel,
            },
        );
    }

    /// Application: post a buffer for transmission.
    pub fn enqueue_transmit(&mut self, d: Descriptor) -> Result<(), QueueError> {
        self.check(&d)?;
        if let Err(e) = Self::push(&mut self.transmit, self.capacity, d) {
            self.note_overflow();
            return Err(e);
        }
        self.enqueues += 1;
        self.trace_enqueue(d.len);
        Ok(())
    }

    /// Board: take the next buffer to transmit.
    pub fn dequeue_transmit(&mut self) -> Option<Descriptor> {
        let d = self.transmit.pop_front();
        if let Some(d) = &d {
            self.dequeues += 1;
            self.trace_dequeue(d.len);
        }
        d
    }

    /// Application: post an empty buffer the board may fill (goes on the
    /// free queue).
    pub fn enqueue_free(&mut self, d: Descriptor) -> Result<(), QueueError> {
        self.check(&d)?;
        if let Err(e) = Self::push(&mut self.free, self.capacity, d) {
            self.note_overflow();
            return Err(e);
        }
        self.enqueues += 1;
        self.trace_enqueue(d.len);
        Ok(())
    }

    /// Board: claim a free buffer to deposit an arriving message into.
    pub fn take_free(&mut self) -> Option<Descriptor> {
        let d = self.free.pop_front();
        if let Some(d) = &d {
            self.dequeues += 1;
            self.trace_dequeue(d.len);
        }
        d
    }

    /// Board: hand a filled buffer to the application.
    pub fn post_receive(&mut self, d: Descriptor) -> Result<(), QueueError> {
        if let Err(e) = Self::push(&mut self.receive, self.capacity, d) {
            self.note_overflow();
            return Err(e);
        }
        self.enqueues += 1;
        self.trace_enqueue(d.len);
        Ok(())
    }

    /// Application: poll for a received buffer.
    pub fn dequeue_receive(&mut self) -> Option<Descriptor> {
        let d = self.receive.pop_front();
        if let Some(d) = &d {
            self.dequeues += 1;
            self.trace_dequeue(d.len);
        }
        d
    }

    /// Pending transmit descriptors.
    pub fn transmit_pending(&self) -> usize {
        self.transmit.len()
    }

    /// Pending received-but-unpolled descriptors.
    pub fn receive_pending(&self) -> usize {
        self.receive.len()
    }

    /// Available free buffers.
    pub fn free_available(&self) -> usize {
        self.free.len()
    }

    /// (total enqueues, total dequeues, protection faults).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.enqueues, self.dequeues, self.protection_faults)
    }

    /// Enqueues refused because a ring was at capacity.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> ChannelQueues {
        let mut q = ChannelQueues::new(4);
        q.register_region(0x1000, 0x4000);
        q
    }

    fn d(vaddr: u64, len: u32) -> Descriptor {
        Descriptor {
            vaddr,
            len,
            cacheable: true,
        }
    }

    #[test]
    fn transmit_fifo_order() {
        let mut q = channel();
        q.enqueue_transmit(d(0x1000, 64)).unwrap();
        q.enqueue_transmit(d(0x2000, 64)).unwrap();
        assert_eq!(q.dequeue_transmit().unwrap().vaddr, 0x1000);
        assert_eq!(q.dequeue_transmit().unwrap().vaddr, 0x2000);
        assert!(q.dequeue_transmit().is_none());
    }

    #[test]
    fn unregistered_channel_rejects_everything() {
        let mut q = ChannelQueues::new(4);
        assert_eq!(
            q.enqueue_transmit(d(0x1000, 64)),
            Err(QueueError::Protection)
        );
    }

    #[test]
    fn out_of_region_descriptor_faults() {
        let mut q = channel();
        assert_eq!(
            q.enqueue_transmit(d(0x0500, 64)),
            Err(QueueError::Protection)
        );
        // Straddling the end of the region is also a violation.
        assert_eq!(
            q.enqueue_transmit(d(0x4FFF, 64)),
            Err(QueueError::Protection)
        );
        assert_eq!(q.stats().2, 2);
    }

    #[test]
    fn ring_capacity_enforced() {
        let mut q = channel();
        for i in 0..4 {
            q.enqueue_transmit(d(0x1000 + i * 64, 64)).unwrap();
        }
        assert_eq!(q.enqueue_transmit(d(0x1000, 64)), Err(QueueError::Full));
        q.dequeue_transmit();
        q.enqueue_transmit(d(0x1000, 64)).unwrap();
    }

    #[test]
    fn overflow_is_counted_and_traced_not_fatal() {
        let mut q = ChannelQueues::new(2);
        let sink = TraceSink::ring(16);
        q.set_trace(sink.clone(), 1, 7);
        q.register_region(0x1000, 0x4000);
        q.enqueue_free(d(0x1000, 64)).unwrap();
        q.enqueue_free(d(0x1040, 64)).unwrap();
        // Every ring reports Full as counted backpressure.
        assert_eq!(q.enqueue_free(d(0x1080, 64)), Err(QueueError::Full));
        assert_eq!(q.post_receive(d(0x1000, 64)), Ok(()));
        assert_eq!(q.post_receive(d(0x1040, 64)), Ok(()));
        assert_eq!(q.post_receive(d(0x1080, 64)), Err(QueueError::Full));
        assert_eq!(q.overflow_drops(), 2);
        // The queue keeps working after overflow.
        assert!(q.take_free().is_some());
        assert!(q.enqueue_free(d(0x1080, 64)).is_ok());
        let overflows = sink
            .drain()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RingOverflow { channel: 7 }))
            .count();
        assert_eq!(overflows, 2);
    }

    #[test]
    fn free_and_receive_flow() {
        let mut q = channel();
        q.enqueue_free(d(0x3000, 2048)).unwrap();
        let buf = q.take_free().unwrap();
        assert_eq!(buf.vaddr, 0x3000);
        q.post_receive(buf).unwrap();
        assert_eq!(q.receive_pending(), 1);
        assert_eq!(q.dequeue_receive().unwrap().vaddr, 0x3000);
        assert_eq!(q.free_available(), 0);
    }

    #[test]
    fn boundary_descriptor_is_accepted() {
        let mut q = channel();
        // Exactly fills the last bytes of the region.
        assert!(q.enqueue_transmit(d(0x4000 + 0x1000 - 64, 64)).is_ok());
    }
}
