//! Edge-case tests for the NIC's user-visible rings ([`ChannelQueues`])
//! and the Message Cache, plus degenerate PDU shapes through the
//! zero-copy receive path.
//!
//! These pin behaviours that only show up at boundaries: descriptor rings
//! cycling through their capacity many times over, a board starved of
//! free buffers, CLOCK evicting a buffer that snooping had just updated,
//! and the smallest PDUs AAL5 can express (zero bytes of user data, and
//! exactly one cell).

use cni_atm::aal5::ReassemblyError;
use cni_atm::Segmenter;
use cni_nic::queues::QueueError;
use cni_nic::{ChannelQueues, Descriptor, MessageCache, Nic, NicConfig, NicKind};

fn desc(vaddr: u64, len: u32) -> Descriptor {
    Descriptor {
        vaddr,
        len,
        cacheable: false,
    }
}

fn channel(capacity: usize) -> ChannelQueues {
    let mut q = ChannelQueues::new(capacity);
    q.register_region(0x1000, 0x10000);
    q
}

// ---- ADC ring wrap-around -------------------------------------------------

/// Cycle each ring through its capacity many times while holding it at
/// (or near) full: the internal head/tail indices wrap repeatedly and
/// FIFO order must survive every wrap.
#[test]
fn adc_rings_survive_many_wrap_arounds_at_capacity() {
    const CAP: usize = 4;
    let mut q = channel(CAP);

    // Pre-fill to capacity so every subsequent enqueue lands just after a
    // dequeue — the ring stays full and the indices march around it.
    for i in 0..CAP as u64 {
        q.enqueue_transmit(desc(0x1000 + i * 64, 64)).unwrap();
    }
    for (round, next) in (0..(8 * CAP as u64)).zip(CAP as u64..) {
        // Full ring refuses first — proves we really are at capacity on
        // every single wrap step.
        assert_eq!(
            q.enqueue_transmit(desc(0x1000, 64)),
            Err(QueueError::Full),
            "round {round}: ring should be full"
        );
        let out = q.dequeue_transmit().expect("ring is full");
        assert_eq!(out.vaddr, 0x1000 + round * 64, "FIFO order across wraps");
        q.enqueue_transmit(desc(0x1000 + next * 64, 64)).unwrap();
    }
    // Drain what remains, still in order.
    for i in 0..CAP as u64 {
        let out = q.dequeue_transmit().expect("drain");
        assert_eq!(out.vaddr, 0x1000 + (8 * CAP as u64 + i) * 64);
    }
    assert!(q.dequeue_transmit().is_none());
    // Every refused enqueue was counted as backpressure, not lost state.
    assert_eq!(q.overflow_drops(), 8 * CAP as u64);
    let (enq, deq, faults) = q.stats();
    assert_eq!(enq, 9 * CAP as u64);
    assert_eq!(deq, 9 * CAP as u64);
    assert_eq!(faults, 0);
}

/// The free and receive rings wrap too: run the full board-side cycle
/// (post free → claim free → post receive → poll receive) for several
/// times the ring capacity.
#[test]
fn free_receive_cycle_wraps_cleanly() {
    const CAP: usize = 3;
    let mut q = channel(CAP);
    for i in 0..(5 * CAP as u64) {
        q.enqueue_free(desc(0x2000 + (i % 8) * 2048, 2048)).unwrap();
        let buf = q.take_free().expect("just posted");
        q.post_receive(buf).unwrap();
        let got = q.dequeue_receive().expect("just delivered");
        assert_eq!(got.vaddr, 0x2000 + (i % 8) * 2048);
    }
    assert_eq!(q.free_available(), 0);
    assert_eq!(q.receive_pending(), 0);
    assert_eq!(q.overflow_drops(), 0);
}

// ---- Free-queue exhaustion ------------------------------------------------

/// A board that drains the free queue gets `None` — counted, recoverable
/// backpressure, never a panic — and the channel keeps working once the
/// application reprovisions buffers.
#[test]
fn free_queue_exhaustion_is_backpressure_not_failure() {
    const CAP: usize = 2;
    let mut q = channel(CAP);
    q.enqueue_free(desc(0x3000, 2048)).unwrap();
    q.enqueue_free(desc(0x3800, 2048)).unwrap();
    // Application overprovisions: the ring is at capacity and refuses.
    assert_eq!(q.enqueue_free(desc(0x4000, 2048)), Err(QueueError::Full));
    assert_eq!(q.overflow_drops(), 1);

    // Board drains everything...
    let a = q.take_free().expect("first");
    let b = q.take_free().expect("second");
    // ...and the next arrival finds no buffer: exhaustion is a `None`.
    assert!(q.take_free().is_none());
    assert!(q.take_free().is_none());
    assert_eq!(q.free_available(), 0);

    // The dequeue counter only moves for successful takes.
    let (_, deq, _) = q.stats();
    assert_eq!(deq, 2);

    // Recovery: the application reposts, the board proceeds.
    q.enqueue_free(a).unwrap();
    q.post_receive(b).unwrap();
    assert_eq!(q.take_free().expect("reprovisioned").vaddr, 0x3000);
    assert_eq!(q.dequeue_receive().expect("delivered").vaddr, 0x3800);
}

// ---- Message Cache: evicting a dirty snooped buffer -----------------------

/// A page the snooper has been keeping consistent (a *dirty* board copy,
/// in the sense that it absorbed CPU writes) is still a legal CLOCK
/// victim. After eviction the binding must be fully gone: transmit
/// lookups miss (forcing a fresh DMA) and subsequent snoops to the page
/// report non-resident instead of updating a stale buffer.
#[test]
fn clock_eviction_of_dirty_snooped_buffer_unbinds_it() {
    let mut c = MessageCache::new(2, 64);
    assert_eq!(c.insert(0xA), None);
    assert_eq!(c.insert(0xB), None);

    // CPU writes to page 0xA reach the bus; the board copy is updated in
    // place. The copy is now "dirty" relative to what was DMAed in.
    let (resident, _) = c.snoop_write(0xA);
    assert!(resident);
    assert_eq!(c.stats().snoop_updates, 1);

    // Note: snooping does NOT set the CLOCK reference bit — only transmit
    // activity does. Touch 0xB so the sweep clears both bits and then
    // takes 0xA (first unreferenced slot), the dirty one.
    assert!(c.lookup_tx(0xB));
    let evicted = c.insert(0xC).expect("cache was full");
    assert_eq!(evicted, 0xA, "the dirty snooped page is the victim");
    assert_eq!(c.stats().evictions, 1);

    // The binding is gone on every path.
    assert!(!c.contains(0xA));
    assert!(!c.lookup_tx(0xA), "post-eviction transmit must re-DMA");
    let (resident, _) = c.snoop_write(0xA);
    assert!(
        !resident,
        "post-eviction snoops must not touch a stale slot"
    );
    assert_eq!(c.stats().snoop_misses, 1);

    // Re-inserting after the fresh DMA re-binds cleanly.
    let _ = c.insert(0xA);
    assert!(c.contains(0xA));
    let (resident, _) = c.snoop_write(0xA);
    assert!(resident);
}

/// Same scenario at the device level: the `Nic` façade's snoop path must
/// agree with residency after an invalidation (the explicit analogue of
/// losing the buffer).
#[test]
fn device_snoop_agrees_with_residency_after_invalidate() {
    let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
    assert!(!nic.page_resident(5));
    assert!(!nic.snoop_write(5));
    nic.invalidate_page(5); // not resident: a no-op
    assert!(!nic.page_resident(5));
}

// ---- Degenerate PDUs through the zero-copy receive path -------------------

/// A zero-length PDU is legal AAL5: pad + 8-byte trailer in a single
/// cell. It must flow through segmentation, reassembly and handle
/// recycling without ever materialising payload bytes.
#[test]
fn zero_length_pdu_round_trips_zero_copy() {
    let seg = Segmenter::standard();
    let cells = seg.segment(9, b"");
    assert_eq!(cells.len(), 1, "0 + trailer fits one cell");

    let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
    let pdu = nic
        .ingest_frame(&cells)
        .expect("EOP present")
        .expect("CRC valid");
    assert!(pdu.is_empty());
    assert_eq!(pdu.len(), 0);
    assert_eq!(&pdu[..], b"");
    // The empty handle still participates in the recycle half of the
    // life cycle without upsetting the pool.
    nic.recycle_pdu(pdu);
    assert_eq!(nic.stats().rx_frames_discarded, 0);
}

/// The largest PDU that still fits one standard cell (48 - 8 trailer =
/// 40 bytes), and the first size that spills into a second cell.
#[test]
fn single_cell_pdu_boundary_round_trips_zero_copy() {
    let seg = Segmenter::standard();
    let mut nic = Nic::new(NicKind::Cni, NicConfig::default());

    let forty: Vec<u8> = (0..40u8).collect();
    let cells = seg.segment(3, &forty);
    assert_eq!(cells.len(), 1, "40 + 8 trailer == exactly one cell");
    let pdu = nic
        .ingest_frame(&cells)
        .expect("EOP present")
        .expect("CRC valid");
    assert_eq!(&pdu[..], &forty[..]);
    nic.recycle_pdu(pdu);

    let forty_one: Vec<u8> = (0..41u8).collect();
    let cells = seg.segment(3, &forty_one);
    assert_eq!(cells.len(), 2, "41 + 8 trailer spills into a second cell");
    let pdu = nic
        .ingest_frame(&cells)
        .expect("EOP present")
        .expect("CRC valid");
    assert_eq!(&pdu[..], &forty_one[..]);
    nic.recycle_pdu(pdu);
}

/// A truncated single-cell frame (EOP cell whose trailer claims more data
/// than arrived) is rejected, not delivered — the zero-copy path keeps
/// AAL5's integrity checking intact.
#[test]
fn corrupt_single_cell_pdu_is_rejected_not_delivered() {
    let seg = Segmenter::standard();
    let mut nic = Nic::new(NicKind::Cni, NicConfig::default());
    let mut cells = seg.segment(4, &[0xEE; 16]);
    assert_eq!(cells.len(), 1);
    cells[0].payload.xor_bit(2, 0);
    let err = nic
        .ingest_frame(&cells)
        .expect("EOP present")
        .expect_err("flipped bit must fail the CRC");
    assert_eq!(err, ReassemblyError::CrcMismatch);
    assert_eq!(nic.stats().rx_crc_failures, 1);
    assert_eq!(nic.stats().rx_frames_discarded, 1);

    // A clean retransmission right after still delivers.
    let cells = seg.segment(4, &[0xEE; 16]);
    let pdu = nic
        .ingest_frame(&cells)
        .expect("EOP present")
        .expect("clean retransmission");
    assert_eq!(&pdu[..], &[0xEE; 16][..]);
}
