//! Merge completeness for the per-NIC statistics structs.
//!
//! `NicStats::merge` and `MsgCacheStats::merge` enumerate their fields by
//! hand, which silently under-counts if a new counter is added without
//! extending `merge`. These tests enumerate the fields through the
//! serialized form instead: every field is set to a distinct nonzero
//! value, the struct is merged with itself, and every serialized field
//! must come back doubled — so a forgotten field fails the test the day
//! it is introduced.

use cni_nic::msgcache::MsgCacheStats;
use cni_nic::stats::NicStats;
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};

/// Build a `T` whose every serialized field holds a distinct nonzero
/// value; returns it with the (field, value) list.
fn distinct<T: Serialize + Deserialize + Default>() -> (T, Vec<(String, u64)>) {
    let Value::Object(template) = serde_json::to_value(T::default()).unwrap() else {
        panic!("stats must serialize to a JSON object");
    };
    let mut filled = Map::new();
    let mut fields = Vec::new();
    for (i, (name, _)) in template.entries().iter().enumerate() {
        let v = (i as u64 + 1) * 3;
        filled.insert(name.clone(), Value::from(v));
        fields.push((name.clone(), v));
    }
    assert!(!fields.is_empty(), "stats struct has no fields");
    let t = T::from_value(&Value::Object(filled)).expect("stats deserialize");
    (t, fields)
}

/// Assert that `merge` doubles every serialized field of `T` when a
/// fully-populated value is merged with a copy of itself.
fn assert_merge_sums_all<T, F>(merge: F)
where
    T: Serialize + Deserialize + Default + Clone,
    F: FnOnce(&mut T, &T),
{
    let (a, fields) = distinct::<T>();
    let mut merged = a.clone();
    merge(&mut merged, &a);
    let Value::Object(out) = serde_json::to_value(&merged).unwrap() else {
        panic!("stats must serialize to a JSON object");
    };
    for (name, v) in &fields {
        assert!(*v != 0, "field {name} not populated");
        assert_eq!(
            out.get(name),
            Some(&Value::from(v * 2)),
            "field {name} not summed by merge"
        );
    }
}

#[test]
fn nic_stats_merge_sums_every_field() {
    assert_merge_sums_all::<NicStats, _>(|a, b| a.merge(b));
}

#[test]
fn msg_cache_stats_merge_sums_every_field() {
    assert_merge_sums_all::<MsgCacheStats, _>(|a, b| a.merge(b));
}
