//! Model-based property tests of the direct-mapped write-back host cache:
//! presence and dirtiness must agree with a naive map-based reference for
//! arbitrary access/flush sequences.

use cni_nic::hostcache::{AccessOutcome, CacheConfig, HostCache};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: direct-mapped levels as explicit maps set → (tag,
/// dirty), mirroring the documented replacement policy.
struct RefLevel {
    line_shift: u32,
    sets: u64,
    slots: HashMap<u64, (u64, bool)>,
}

impl RefLevel {
    fn new(bytes: usize, line: usize) -> Self {
        RefLevel {
            line_shift: line.trailing_zeros(),
            sets: (bytes / line) as u64,
            slots: HashMap::new(),
        }
    }
    fn index(&self, addr: u64) -> (u64, u64) {
        let line = addr >> self.line_shift;
        (line % self.sets, line)
    }
    fn present(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.slots
            .get(&set)
            .map(|&(t, _)| t == tag)
            .unwrap_or(false)
    }
    fn dirty(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.slots
            .get(&set)
            .map(|&(t, d)| t == tag && d)
            .unwrap_or(false)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Access { addr: u64, write: bool },
    Flush { start: u64, len: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..0x4000, any::<bool>()).prop_map(|(a, w)| Op::Access {
            addr: a & !7,
            write: w
        }),
        (0u64..0x4000usize as u64, 32usize..512).prop_map(|(s, l)| Op::Flush {
            start: s & !31,
            len: l
        }),
    ]
}

proptest! {
    #[test]
    fn cache_agrees_with_reference(ops in proptest::collection::vec(arb_op(), 0..400)) {
        // A small geometry so conflicts actually happen.
        let cfg = CacheConfig {
            l1_bytes: 512,
            l2_bytes: 2048,
            line_bytes: 32,
            l1_hit_cycles: 1,
            l2_hit_cycles: 10,
            mem_cycles: 20,
        };
        let mut hc = HostCache::new(cfg);
        let mut l1 = RefLevel::new(512, 32);
        let mut l2 = RefLevel::new(2048, 32);
        for op in ops {
            match op {
                Op::Access { addr, write } => {
                    let (outcome, cost) = hc.access(addr, write);
                    // Outcome agrees with the reference presence.
                    let expect = if l1.present(addr) {
                        AccessOutcome::L1Hit
                    } else if l2.present(addr) {
                        AccessOutcome::L2Hit
                    } else {
                        AccessOutcome::MemMiss
                    };
                    prop_assert_eq!(outcome, expect, "at {:#x}", addr);
                    let expect_cost = match outcome {
                        AccessOutcome::L1Hit => 1,
                        AccessOutcome::L2Hit => 11,
                        AccessOutcome::MemMiss => 31,
                    };
                    prop_assert_eq!(cost, expect_cost);
                    // Mirror the documented fill behaviour.
                    match outcome {
                        AccessOutcome::L1Hit => {
                            if write {
                                let (set, tag) = l1.index(addr);
                                l1.slots.insert(set, (tag, true));
                            }
                        }
                        AccessOutcome::L2Hit => {
                            let (set, tag) = l1.index(addr);
                            if let Some((vt, vd)) = l1.slots.insert(set, (tag, write)) {
                                if vd && vt != tag {
                                    // Victim retires into L2 if present.
                                    let va = vt << l1.line_shift;
                                    let (s2, t2) = l2.index(va);
                                    if l2.slots.get(&s2).map(|&(t, _)| t == t2).unwrap_or(false) {
                                        l2.slots.insert(s2, (t2, true));
                                    }
                                }
                            }
                        }
                        AccessOutcome::MemMiss => {
                            let (s2, t2) = l2.index(addr);
                            l2.slots.insert(s2, (t2, false));
                            let (set, tag) = l1.index(addr);
                            if let Some((vt, vd)) = l1.slots.insert(set, (tag, write)) {
                                if vd && vt != tag {
                                    let va = vt << l1.line_shift;
                                    let (vs2, vt2) = l2.index(va);
                                    if l2.slots.get(&vs2).map(|&(t, _)| t == vt2).unwrap_or(false)
                                    {
                                        l2.slots.insert(vs2, (vt2, true));
                                    }
                                }
                            }
                        }
                    }
                }
                Op::Flush { start, len } => {
                    let flushed = hc.flush_range(start, len);
                    // Count reference dirty lines in range, then clean them.
                    let mut expect = 0;
                    let mut addr = start / 32 * 32;
                    while addr < start + len as u64 {
                        let d1 = l1.dirty(addr);
                        let d2 = l2.dirty(addr);
                        if d1 {
                            let (s, t) = l1.index(addr);
                            l1.slots.insert(s, (t, false));
                        }
                        if d2 {
                            let (s, t) = l2.index(addr);
                            l2.slots.insert(s, (t, false));
                        }
                        if d1 || d2 {
                            expect += 1;
                        }
                        addr += 32;
                    }
                    prop_assert_eq!(flushed, expect);
                }
            }
        }
    }
}
