//! Model-based property tests of the Message Cache: the CLOCK buffer map
//! must agree with a trivially correct reference model on membership and
//! capacity under arbitrary operation sequences.

use cni_nic::MessageCache;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    LookupTx(u64),
    Insert(u64),
    Snoop(u64),
    Invalidate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u64..24, 0u8..4).prop_map(|(page, kind)| match kind {
        0 => Op::LookupTx(page),
        1 => Op::Insert(page),
        2 => Op::Snoop(page),
        _ => Op::Invalidate(page),
    })
}

proptest! {
    #[test]
    fn clock_agrees_with_reference_set(
        buffers in 1usize..12,
        ops in proptest::collection::vec(arb_op(), 0..300),
    ) {
        let mut mc = MessageCache::new(buffers, 16);
        // Reference: the set of resident pages. Eviction order is CLOCK's
        // business; membership and capacity are the contract.
        let mut resident: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                Op::LookupTx(p) => {
                    let hit = mc.lookup_tx(p);
                    prop_assert_eq!(hit, resident.contains(&p));
                }
                Op::Insert(p) => {
                    let evicted = mc.insert(p);
                    if let Some(old) = evicted {
                        prop_assert!(resident.remove(&old), "evicted non-resident {old}");
                        prop_assert_ne!(old, p);
                    }
                    resident.insert(p);
                }
                Op::Snoop(p) => {
                    let (res, _) = mc.snoop_write(p);
                    prop_assert_eq!(res, resident.contains(&p));
                }
                Op::Invalidate(p) => {
                    let was = mc.invalidate(p);
                    prop_assert_eq!(was, resident.remove(&p));
                }
            }
            prop_assert_eq!(mc.resident(), resident.len());
            prop_assert!(resident.len() <= buffers, "over capacity");
        }
        // Final consistency sweep.
        for p in 0..24u64 {
            prop_assert_eq!(mc.contains(p), resident.contains(&p));
        }
    }

    #[test]
    fn hit_ratio_is_hits_over_lookups(
        pages in proptest::collection::vec(0u64..8, 1..100),
    ) {
        let mut mc = MessageCache::new(4, 16);
        let mut hits = 0u64;
        for &p in &pages {
            if mc.lookup_tx(p) {
                hits += 1;
            } else {
                mc.insert(p);
            }
        }
        let s = mc.stats();
        prop_assert_eq!(s.tx_lookups, pages.len() as u64);
        prop_assert_eq!(s.tx_hits, hits);
        let expect = hits as f64 / pages.len() as f64;
        prop_assert!((s.hit_ratio() - expect).abs() < 1e-12);
    }
}
