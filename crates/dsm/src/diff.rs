//! Twins and diffs: word-granularity update records.
//!
//! At the first write of an interval the protocol snapshots the page (the
//! *twin*); at the closing release it compares the live frame against the
//! twin and stores the changed words as a [`Diff`]. Diffs are what make
//! *concurrent write sharing* work (the Cholesky case in the paper): two
//! processors writing disjoint words of one page produce disjoint diffs
//! that merge cleanly at the next reader.

use crate::space::Frame;
use serde::{Deserialize, Serialize};

/// Changed words of one page in one interval.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diff {
    /// (word index, new value), ascending by index.
    pub entries: Vec<(u32, u64)>,
}

impl Diff {
    /// Compare `frame` against its `twin`; record every changed word.
    pub fn create(twin: &[u64], frame: &Frame) -> Diff {
        debug_assert_eq!(twin.len(), frame.len(), "twin/frame size mismatch");
        let mut entries = Vec::new();
        for (i, &old) in twin.iter().enumerate() {
            let cur = frame.load(i);
            if cur != old {
                entries.push((i as u32, cur));
            }
        }
        Diff { entries }
    }

    /// Apply this diff's words to `frame`.
    pub fn apply(&self, frame: &Frame) {
        for &(i, v) in &self.entries {
            frame.store(i as usize, v);
        }
    }

    /// Number of changed words.
    pub fn words(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wire size: 4-byte index + 8-byte value per entry.
    pub fn wire_bytes(&self) -> usize {
        self.entries.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::NodeSpace;
    use crate::types::PageId;

    fn frame(words: usize) -> std::sync::Arc<Frame> {
        let ns = NodeSpace::new(words * 8, 32.min(words * 8));
        ns.page(PageId(0)).frame
    }

    #[test]
    fn create_records_only_changes() {
        let f = frame(8);
        f.fill_from(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let twin = f.snapshot();
        f.store(2, 99);
        f.store(7, 100);
        let d = Diff::create(&twin, &f);
        assert_eq!(d.entries, vec![(2, 99), (7, 100)]);
        assert_eq!(d.words(), 2);
        assert_eq!(d.wire_bytes(), 24);
    }

    #[test]
    fn apply_reproduces_writer_state() {
        let w = frame(8);
        let twin = w.snapshot();
        w.store(1, 11);
        w.store(5, 55);
        let d = Diff::create(&twin, &w);

        let r = frame(8);
        d.apply(&r);
        assert_eq!(r.load(1), 11);
        assert_eq!(r.load(5), 55);
        assert_eq!(r.load(0), 0);
    }

    #[test]
    fn disjoint_diffs_merge_commutatively() {
        // Concurrent write sharing: A writes words 0..4, B writes 4..8.
        let a = frame(8);
        let ta = a.snapshot();
        for i in 0..4 {
            a.store(i, 100 + i as u64);
        }
        let da = Diff::create(&ta, &a);

        let b = frame(8);
        let tb = b.snapshot();
        for i in 4..8 {
            b.store(i, 200 + i as u64);
        }
        let db = Diff::create(&tb, &b);

        let r1 = frame(8);
        da.apply(&r1);
        db.apply(&r1);
        let r2 = frame(8);
        db.apply(&r2);
        da.apply(&r2);
        assert_eq!(r1.snapshot(), r2.snapshot());
        assert_eq!(r1.load(0), 100);
        assert_eq!(r1.load(7), 207);
    }

    #[test]
    fn unchanged_page_yields_empty_diff() {
        let f = frame(8);
        let twin = f.snapshot();
        let d = Diff::create(&twin, &f);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn write_of_same_value_is_not_a_change() {
        // Word-level diffs define "change" by value, not by access: writing
        // the value already present produces no diff entry. (This is the
        // standard TreadMarks behaviour.)
        let f = frame(4);
        f.fill_from(&[9, 9, 9, 9]);
        let twin = f.snapshot();
        f.store(2, 9);
        assert!(Diff::create(&twin, &f).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::space::NodeSpace;
    use crate::types::PageId;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn apply_after_create_reproduces_frame(
            base in proptest::collection::vec(any::<u64>(), 16),
            writes in proptest::collection::vec((0usize..16, any::<u64>()), 0..32),
        ) {
            let ns = NodeSpace::new(16 * 8, 32);
            let w = ns.page(PageId(0)).frame.clone();
            w.fill_from(&base);
            let twin = w.snapshot();
            for &(i, v) in &writes {
                w.store(i, v);
            }
            let d = Diff::create(&twin, &w);

            let r = ns.page(PageId(1)).frame.clone();
            r.fill_from(&base);
            d.apply(&r);
            prop_assert_eq!(r.snapshot(), w.snapshot());
        }

        #[test]
        fn diff_entries_sorted_and_unique(
            writes in proptest::collection::vec((0usize..16, any::<u64>()), 0..64),
        ) {
            let ns = NodeSpace::new(16 * 8, 32);
            let w = ns.page(PageId(0)).frame.clone();
            let twin = w.snapshot();
            for &(i, v) in &writes {
                w.store(i, v);
            }
            let d = Diff::create(&twin, &w);
            for pair in d.entries.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0);
            }
        }
    }
}
