//! The per-processor protocol engine: lazy invalidate release consistency.
//!
//! One [`DsmNode`] per processor implements the protocol of Keleher et
//! al. (the paper's reference 7) the paper's evaluation runs: per-processor *intervals* closed at
//! each release, *write notices* piggybacked on lock grants and barrier
//! releases, invalidation on uncovered notices, *twins* and word-level
//! *diffs* for concurrent write sharing, and full-page movement from the
//! most recent writer on access misses ("pages tend to move from the
//! releaser to the acquirer", §3.1).
//!
//! The engine is **timing-free**: every entry point returns the messages to
//! transport, an optional wakeup for the blocked application thread, and a
//! [`Work`] record of the data-movement labour performed. The cluster
//! simulation charges those to the host CPU (standard NIC) or to the NIC
//! processor as an Application Interrupt Handler (CNI) — the protocol logic
//! itself is identical in both configurations, exactly as in the paper.
//!
//! Lock management is distributed (manager = `lock mod N`, Li/Hudak-style
//! probable-owner forwarding with chained grant transfer); the barrier
//! manager is processor 0.

use crate::diff::Diff;
use crate::protocol::{Msg, Payload};
use crate::space::{access, NodeSpace};
use crate::types::{LockId, PageId, ProcId, VClock, WriteNotice};
use cni_trace::{TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Static DSM parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DsmConfig {
    /// Number of processors.
    pub procs: usize,
    /// Shared page size in bytes.
    pub page_bytes: usize,
    /// Host cache line size in bytes (dirty-line tracking granularity).
    pub line_bytes: usize,
    /// Use a combining-tree barrier instead of the centralised manager
    /// (extension: the manager serialises 2N messages at one node, which
    /// is the scalability bottleneck at 32 processors; the tree spreads
    /// them over log N levels).
    pub tree_barrier: bool,
    /// Fan-out of the combining tree (k-ary heap layout: the children of
    /// processor `i` are `k*i+1 ..= k*i+k`). 2 is the classic binary
    /// tree; a fabric-aware embedder raises it so each subtree matches a
    /// fat-tree leaf and combining traffic stays off the spine. Must be
    /// ≥ 2; ignored when `tree_barrier` is false.
    pub barrier_arity: usize,
}

/// Data-movement labour performed while handling one event; the cluster
/// simulation turns this into cycles on whichever processor ran the
/// protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Work {
    /// Words copied to create twins.
    pub twin_words: u64,
    /// Words compared while creating diffs.
    pub diff_scan_words: u64,
    /// Words written by created or applied diffs.
    pub diff_words: u64,
    /// Words copied for full-page sends/receives.
    pub page_copy_words: u64,
    /// Write notices processed.
    pub notices: u64,
}

impl Work {
    /// Accumulate another record.
    pub fn add(&mut self, o: &Work) {
        self.twin_words += o.twin_words;
        self.diff_scan_words += o.diff_scan_words;
        self.diff_words += o.diff_words;
        self.page_copy_words += o.page_copy_words;
        self.notices += o.notices;
    }
}

/// Why the application thread may resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wakeup {
    /// The faulted page is now accessible.
    FaultDone(PageId),
    /// The lock is now held.
    AcquireDone(LockId),
    /// The barrier released.
    BarrierDone(u32),
}

/// Result of one protocol entry point.
#[derive(Debug, Default)]
pub struct HandleResult {
    /// Messages to transport.
    pub out: Vec<Msg>,
    /// Application wakeup, if the blocking operation completed.
    pub wakeup: Option<Wakeup>,
    /// Labour performed.
    pub work: Work,
    /// Pages whose dirty cache lines must be written back before the
    /// network interface can see a consistent copy (write-back flush
    /// discipline, §2.2 of the paper): (page, dirty lines).
    pub flushed: Vec<(PageId, u64)>,
}

/// Per-lock holder-side state.
#[derive(Debug, Default)]
struct HolderState {
    /// This processor possesses the token.
    held: bool,
    /// The application is inside the critical section.
    in_use: bool,
    /// Requests waiting for this processor to release.
    pending: VecDeque<(ProcId, VClock)>,
}

/// Barrier-manager state (processor 0 only).
#[derive(Debug)]
struct BarrierMgr {
    epoch: u32,
    arrived: u32,
    vc: VClock,
    notices: Vec<WriteNotice>,
}

/// What the application thread is blocked on.
#[derive(Debug)]
enum Blocked {
    Fault {
        page: PageId,
        want_write: bool,
        awaiting_page: bool,
        /// writer → requested `upto` interval, for outstanding diff fetches.
        outstanding: BTreeMap<ProcId, u32>,
        /// Diffs received but not yet applied; applied at completion in a
        /// linear extension of their causal order.
        buffered: Vec<(ProcId, u32, VClock, Diff)>,
        /// (writer, upto) coverage to commit into the page version when the
        /// buffered diffs are applied.
        committed: Vec<(ProcId, u32)>,
    },
    Acquire(LockId),
    Barrier(u32),
}

/// Protocol statistics for one processor.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DsmStats {
    /// Read faults taken.
    pub read_faults: u64,
    /// Write faults taken (including twin-only local ones).
    pub write_faults: u64,
    /// Full-page fetches issued.
    pub page_fetches: u64,
    /// Diff fetches issued.
    pub diff_fetches: u64,
    /// Lock acquires satisfied locally (lazy-release reuse).
    pub lock_local: u64,
    /// Lock acquires that went remote.
    pub lock_remote: u64,
    /// Releases performed.
    pub releases: u64,
    /// Barriers crossed.
    pub barriers: u64,
    /// Write notices received from others.
    pub notices_in: u64,
    /// Page invalidations performed.
    pub invalidations: u64,
    /// Intervals closed.
    pub intervals: u64,
}

/// One processor's protocol engine.
pub struct DsmNode {
    me: ProcId,
    cfg: DsmConfig,
    space: Arc<NodeSpace>,
    vc: VClock,
    /// Write-notice log per writer, ascending by interval.
    log: Vec<Vec<(u32, PageId)>>,
    /// Per page: writer intervals reflected in the local frame.
    pv: BTreeMap<PageId, VClock>,
    /// Per page: max interval each writer is known to have written it.
    knowledge: BTreeMap<PageId, VClock>,
    /// Twins for pages written in the current interval.
    twins: BTreeMap<PageId, Vec<u64>>,
    /// Pages written in the current interval (insertion-ordered).
    dirty_pages: Vec<PageId>,
    /// Early diffs taken when a dirty page had to be invalidated.
    pending_self: BTreeMap<PageId, Diff>,
    /// Own diffs with their interval's vector time, keyed by
    /// (page, interval). Kept for the run's lifetime (bounded runs; a
    /// production system would garbage-collect at barriers).
    my_diffs: BTreeMap<(PageId, u32), (Diff, VClock)>,
    /// Manager side: probable owner per managed lock.
    probable: BTreeMap<LockId, ProcId>,
    /// Holder side: token state per lock.
    holders: BTreeMap<LockId, HolderState>,
    /// Explicit page-home overrides (first-touch placement); pages not
    /// listed default to `page mod N`.
    homes: BTreeMap<PageId, ProcId>,
    /// Barrier manager (processor 0).
    barrier_mgr: Option<BarrierMgr>,
    /// Next barrier epoch this processor will arrive at.
    barrier_epoch: u32,
    /// Own interval watermark already shipped at a barrier.
    barrier_shipped: u32,
    blocked: Option<Blocked>,
    stats: DsmStats,
    trace: TraceSink,
}

impl DsmNode {
    /// Engine for processor `me` of `cfg.procs`, operating on `space`.
    pub fn new(me: ProcId, cfg: DsmConfig, space: Arc<NodeSpace>) -> Self {
        let n = cfg.procs;
        assert!((me.0 as usize) < n, "proc id out of range");
        DsmNode {
            me,
            cfg,
            space,
            vc: VClock::zero(n),
            log: vec![Vec::new(); n],
            pv: BTreeMap::new(),
            knowledge: BTreeMap::new(),
            twins: BTreeMap::new(),
            dirty_pages: Vec::new(),
            pending_self: BTreeMap::new(),
            my_diffs: BTreeMap::new(),
            probable: BTreeMap::new(),
            holders: BTreeMap::new(),
            homes: BTreeMap::new(),
            barrier_mgr: (me.0 == 0 || cfg.tree_barrier).then(|| BarrierMgr {
                epoch: 0,
                arrived: 0,
                vc: VClock::zero(n),
                notices: Vec::new(),
            }),
            barrier_epoch: 0,
            barrier_shipped: 0,
            blocked: None,
            stats: DsmStats::default(),
            trace: TraceSink::Disabled,
        }
    }

    /// Attach a trace sink; protocol entry points record `Dsm*` events
    /// tagged with this processor's id as the node.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// This processor's id.
    pub fn id(&self) -> ProcId {
        self.me
    }

    /// The node's shared-memory space.
    pub fn space(&self) -> &Arc<NodeSpace> {
        &self.space
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DsmStats {
        self.stats
    }

    /// The manager of `lock`.
    pub fn lock_manager(&self, lock: LockId) -> ProcId {
        ProcId(lock.0 % self.cfg.procs as u32)
    }

    /// Has this processor ever published a write to `page`? Used by the
    /// cluster's receive-caching policy: a node that writes a page is a
    /// future sender of it (the page migrates through it), so its board
    /// should keep the arriving copy.
    pub fn has_written(&self, page: PageId) -> bool {
        self.knowledge
            .get(&page)
            .map(|k| k.get(self.me) > 0)
            .unwrap_or(false)
    }

    /// The home of `page` (initial copy holder): an explicit placement if
    /// one was registered, else round-robin.
    pub fn page_home(&self, page: PageId) -> ProcId {
        self.homes
            .get(&page)
            .copied()
            .unwrap_or(ProcId(page.0 % self.cfg.procs as u32))
    }

    /// Register an explicit home for `page` (allocation-time placement;
    /// must be called identically on every node).
    pub fn set_home(&mut self, page: PageId, home: ProcId) {
        self.homes.insert(page, home);
    }

    /// Install the initial (zero-filled) copy of `page` at its home. Must
    /// be called exactly on the home processor during allocation.
    pub fn init_home_page(&mut self, page: PageId) {
        debug_assert_eq!(self.page_home(page), self.me);
        let h = self.space.page(page);
        h.flags.set_state(access::READ);
        self.pv.insert(page, VClock::zero(self.cfg.procs));
    }

    // --- Interval machinery -------------------------------------------------

    /// Close the current interval: diff every dirty page against its twin,
    /// create write notices, and downgrade write access. Runs at every
    /// release and barrier arrival.
    fn close_interval(&mut self, res: &mut HandleResult) {
        if self.dirty_pages.is_empty() && self.pending_self.is_empty() {
            return;
        }
        let work = &mut res.work;
        let i = self.vc.get(self.me) + 1;
        let mut any = false;
        let pages = std::mem::take(&mut self.dirty_pages);
        for p in pages {
            let h = self.space.page(p);
            let lines = h.flags.take_dirty_lines();
            if lines > 0 {
                res.flushed.push((p, lines));
            }
            let mut d = match self.twins.remove(&p) {
                Some(twin) => {
                    work.diff_scan_words += twin.len() as u64;
                    Diff::create(&twin, &h.frame)
                }
                // Twin already consumed by an early (invalidation-forced)
                // diff and the page was not re-faulted for writing.
                None => Diff::default(),
            };
            if let Some(early) = self.pending_self.remove(&p) {
                d = merge_diffs(early, d);
            }
            if h.flags.state() == access::WRITE {
                h.flags.set_state(access::READ);
            }
            if d.is_empty() {
                continue;
            }
            any = true;
            work.diff_words += d.words() as u64;
            let mut ivc = self.vc.clone();
            ivc.set(self.me, i);
            self.my_diffs.insert((p, i), (d, ivc));
            self.log[self.me.0 as usize].push((i, p));
            self.knowledge
                .entry(p)
                .or_insert_with(|| VClock::zero(self.cfg.procs))
                .raise(self.me, i);
            self.pv
                .entry(p)
                .or_insert_with(|| VClock::zero(self.cfg.procs))
                .raise(self.me, i);
        }
        if any {
            self.vc.set(self.me, i);
            self.stats.intervals += 1;
        }
    }

    /// All notices in the log newer than `vc` (grant piggybacking).
    fn notices_since(&self, vc: &VClock) -> Vec<WriteNotice> {
        let mut out = Vec::new();
        for (w, entries) in self.log.iter().enumerate() {
            let writer = ProcId(w as u32);
            let floor = vc.get(writer);
            let start = entries.partition_point(|&(i, _)| i <= floor);
            out.extend(
                entries[start..]
                    .iter()
                    .map(|&(interval, page)| WriteNotice {
                        writer,
                        interval,
                        page,
                    }),
            );
        }
        out
    }

    /// Own notices with interval beyond `floor` (barrier arrivals).
    fn own_notices_since(&self, floor: u32) -> Vec<WriteNotice> {
        let entries = &self.log[self.me.0 as usize];
        let start = entries.partition_point(|&(i, _)| i <= floor);
        entries[start..]
            .iter()
            .map(|&(interval, page)| WriteNotice {
                writer: self.me,
                interval,
                page,
            })
            .collect()
    }

    /// Record incoming notices: extend the log, update page knowledge, and
    /// invalidate uncovered local copies (taking early diffs for pages the
    /// current interval has dirtied — concurrent write sharing).
    fn integrate_notices(&mut self, notices: &[WriteNotice], work: &mut Work) {
        let mut sorted: Vec<&WriteNotice> =
            notices.iter().filter(|n| n.writer != self.me).collect();
        sorted.sort_unstable_by_key(|n| (n.writer, n.interval));
        for n in sorted {
            work.notices += 1;
            self.stats.notices_in += 1;
            let log = &mut self.log[n.writer.0 as usize];
            let last = log.last().map(|&(i, _)| i).unwrap_or(0);
            if n.interval > last {
                log.push((n.interval, n.page));
            } else {
                // One interval may dirty several pages, and the same notice
                // can arrive twice (lock grant then barrier): insert in
                // sorted position only if it is genuinely new.
                let mut k = log.partition_point(|&(i, _)| i < n.interval);
                let mut exists = false;
                while k < log.len() && log[k].0 == n.interval {
                    if log[k].1 == n.page {
                        exists = true;
                        break;
                    }
                    k += 1;
                }
                if !exists {
                    log.insert(k, (n.interval, n.page));
                }
            }
            self.knowledge
                .entry(n.page)
                .or_insert_with(|| VClock::zero(self.cfg.procs))
                .raise(n.writer, n.interval);
            let covered = self
                .pv
                .get(&n.page)
                .map(|v| v.get(n.writer) >= n.interval)
                .unwrap_or(true); // no local copy: nothing to invalidate
            if !covered {
                self.invalidate_local(n.page, work);
            }
        }
    }

    /// Invalidate the local copy of `page`, preserving current-interval
    /// writes via an early diff.
    fn invalidate_local(&mut self, page: PageId, work: &mut Work) {
        let Some(h) = self.space.try_page(page) else {
            return;
        };
        if h.flags.state() == access::INVALID {
            return;
        }
        if h.flags.state() == access::WRITE {
            let twin = self
                .twins
                .remove(&page)
                // cni-lint: allow(panic-path) -- the twin is created by this node's own write fault; WRITE state without a twin is a protocol-engine bug, not corrupt input
                .expect("write-state page must have a twin");
            work.diff_scan_words += twin.len() as u64;
            let d = Diff::create(&twin, &h.frame);
            work.diff_words += d.words() as u64;
            let merged = match self.pending_self.remove(&page) {
                Some(early) => merge_diffs(early, d),
                None => d,
            };
            if !merged.is_empty() {
                self.pending_self.insert(page, merged);
            }
        }
        h.flags.set_state(access::INVALID);
        self.stats.invalidations += 1;
    }

    // --- Faults --------------------------------------------------------------

    /// The application read-faulted on `page`.
    pub fn on_read_fault(&mut self, page: PageId) -> HandleResult {
        self.stats.read_faults += 1;
        self.trace
            .emit(self.me.0, TraceEvent::DsmReadFault { page: page.0 });
        self.start_fault(page, false)
    }

    /// The application write-faulted on `page`.
    pub fn on_write_fault(&mut self, page: PageId) -> HandleResult {
        self.stats.write_faults += 1;
        self.trace
            .emit(self.me.0, TraceEvent::DsmWriteFault { page: page.0 });
        let h = self.space.page(page);
        if h.flags.state() == access::READ {
            // Twin-only fault: local.
            let mut res = HandleResult::default();
            self.make_writable(page, &mut res.work);
            res.wakeup = Some(Wakeup::FaultDone(page));
            return res;
        }
        self.start_fault(page, true)
    }

    fn make_writable(&mut self, page: PageId, work: &mut Work) {
        let h = self.space.page(page);
        if let std::collections::btree_map::Entry::Vacant(e) = self.twins.entry(page) {
            let twin = h.frame.snapshot();
            work.twin_words += twin.len() as u64;
            e.insert(twin);
            if !self.dirty_pages.contains(&page) {
                self.dirty_pages.push(page);
            }
        }
        self.pv
            .entry(page)
            .or_insert_with(|| VClock::zero(self.cfg.procs));
        h.flags.set_state(access::WRITE);
    }

    fn start_fault(&mut self, page: PageId, want_write: bool) -> HandleResult {
        let mut res = HandleResult::default();
        let h = self.space.page(page);
        if h.flags.state() != access::INVALID {
            // Spurious (state changed between the app's check and now).
            if want_write {
                self.make_writable(page, &mut res.work);
            }
            res.wakeup = Some(Wakeup::FaultDone(page));
            return res;
        }
        assert!(self.blocked.is_none(), "proc {:?} double-blocked", self.me);

        let zero = VClock::zero(self.cfg.procs);
        let kn = self.knowledge.get(&page).unwrap_or(&zero).clone();
        let pvv = self.pv.get(&page).cloned();
        let base = pvv.is_some();
        let floor = pvv.unwrap_or_else(|| zero.clone());
        let needed: Vec<(ProcId, u32, u32)> = (0..self.cfg.procs as u32)
            .map(ProcId)
            .filter(|&w| w != self.me)
            .filter_map(|w| {
                let upto = kn.get(w);
                let fl = floor.get(w);
                (upto > fl).then_some((w, fl, upto))
            })
            .collect();

        if needed.is_empty() {
            if base {
                // Base valid and nothing missing: re-grant access.
                if want_write {
                    self.make_writable(page, &mut res.work);
                } else {
                    h.flags.set_state(access::READ);
                }
                res.wakeup = Some(Wakeup::FaultDone(page));
                return res;
            }
            // Cold miss: fetch the initial copy from the page's home.
            self.stats.page_fetches += 1;
            res.out.push(Msg {
                src: self.me,
                dst: self.page_home(page),
                payload: Payload::PageReq {
                    page,
                    requester: self.me,
                },
            });
        } else {
            // Page-movement policy ("pages tend to move from the releaser
            // to the acquirer"): fetch the whole page from the writer with
            // the most recent known interval. In a causally ordered chain
            // (migratory data) that copy covers every missing interval; for
            // genuinely concurrent writers, [`apply_page_resp`] tops up
            // with diffs from the writers the served version lacks.
            let &(best, _, _) = needed
                .iter()
                .max_by_key(|&&(w, _, upto)| (upto, std::cmp::Reverse(w)))
                .expect("nonempty");
            self.stats.page_fetches += 1;
            res.out.push(Msg {
                src: self.me,
                dst: best,
                payload: Payload::PageReq {
                    page,
                    requester: self.me,
                },
            });
        }
        self.blocked = Some(Blocked::Fault {
            page,
            want_write,
            awaiting_page: true,
            outstanding: BTreeMap::new(),
            buffered: Vec::new(),
            committed: Vec::new(),
        });
        res
    }

    fn complete_fault(
        &mut self,
        page: PageId,
        want_write: bool,
        work: &mut Work,
    ) -> Option<Wakeup> {
        // Re-apply uncommitted local writes over freshly fetched data.
        if let Some(d) = self.pending_self.get(&page) {
            let h = self.space.page(page);
            d.apply(&h.frame);
            work.diff_words += d.words() as u64;
        }
        let h = self.space.page(page);
        if want_write {
            self.make_writable(page, work);
        } else {
            h.flags.set_state(access::READ);
        }
        Some(Wakeup::FaultDone(page))
    }

    // --- Locks ---------------------------------------------------------------

    /// First touch of a lock's holder state: the manager is born holding
    /// its token.
    fn holder_entry(&mut self, lock: LockId) -> &mut HolderState {
        let born_held = self.lock_manager(lock) == self.me;
        self.holders.entry(lock).or_insert_with(|| HolderState {
            held: born_held,
            ..Default::default()
        })
    }

    /// The application wants `lock`.
    pub fn on_acquire(&mut self, lock: LockId) -> HandleResult {
        let mut res = HandleResult::default();
        let hs = self.holder_entry(lock);
        if hs.held && !hs.in_use {
            hs.in_use = true;
            self.stats.lock_local += 1;
            self.trace.emit(
                self.me.0,
                TraceEvent::DsmAcquire {
                    lock: lock.0,
                    local: true,
                },
            );
            res.wakeup = Some(Wakeup::AcquireDone(lock));
            return res;
        }
        assert!(
            !(hs.held && hs.in_use),
            "re-acquire of a held lock {lock:?} by {:?}",
            self.me
        );
        assert!(self.blocked.is_none(), "proc {:?} double-blocked", self.me);
        self.stats.lock_remote += 1;
        self.trace.emit(
            self.me.0,
            TraceEvent::DsmAcquire {
                lock: lock.0,
                local: false,
            },
        );
        self.blocked = Some(Blocked::Acquire(lock));
        let vc = self.vc.clone();
        if self.lock_manager(lock) == self.me {
            self.manage_acquire(lock, self.me, vc, &mut res);
        } else {
            res.out.push(Msg {
                src: self.me,
                dst: self.lock_manager(lock),
                payload: Payload::AcquireReq {
                    lock,
                    requester: self.me,
                    vc,
                },
            });
        }
        res
    }

    /// Manager-side request routing.
    fn manage_acquire(
        &mut self,
        lock: LockId,
        requester: ProcId,
        vc: VClock,
        res: &mut HandleResult,
    ) {
        debug_assert_eq!(self.lock_manager(lock), self.me);
        let target = *self.probable.get(&lock).unwrap_or(&self.me);
        self.probable.insert(lock, requester);
        if target == self.me {
            self.local_enqueue_or_grant(lock, requester, vc, res);
        } else {
            res.out.push(Msg {
                src: self.me,
                dst: target,
                payload: Payload::AcquireFwd {
                    lock,
                    requester,
                    vc,
                },
            });
        }
    }

    fn local_enqueue_or_grant(
        &mut self,
        lock: LockId,
        requester: ProcId,
        vc: VClock,
        res: &mut HandleResult,
    ) {
        let hs = self.holder_entry(lock);
        if hs.held && !hs.in_use {
            debug_assert_ne!(requester, self.me, "self-grant outside acquire path");
            self.grant(lock, requester, &vc, res);
        } else {
            hs.pending.push_back((requester, vc));
        }
    }

    fn grant(&mut self, lock: LockId, to: ProcId, to_vc: &VClock, res: &mut HandleResult) {
        let notices = self.notices_since(to_vc);
        // cni-lint: allow(panic-path) -- grant() runs only for locks this node manages and has marked held; an unheld grant is a lock-manager bug
        let hs = self.holders.get_mut(&lock).expect("granting unheld lock");
        debug_assert!(hs.held && !hs.in_use);
        hs.held = false;
        let then_serve: Vec<(ProcId, VClock)> = hs.pending.drain(..).collect();
        res.out.push(Msg {
            src: self.me,
            dst: to,
            payload: Payload::AcquireGrant {
                lock,
                vc: self.vc.clone(),
                notices,
                then_serve,
            },
        });
    }

    /// The application releases `lock`. Closes the interval and passes the
    /// token to the next queued requester, if any.
    pub fn on_release(&mut self, lock: LockId) -> HandleResult {
        let mut res = HandleResult::default();
        self.stats.releases += 1;
        self.trace
            .emit(self.me.0, TraceEvent::DsmRelease { lock: lock.0 });
        self.close_interval(&mut res);
        let hs = self
            .holders
            .get_mut(&lock)
            .expect("release of unknown lock");
        assert!(hs.held && hs.in_use, "release of unheld lock {lock:?}");
        hs.in_use = false;
        if let Some((next, next_vc)) = hs.pending.pop_front() {
            debug_assert_ne!(next, self.me);
            self.grant(lock, next, &next_vc, &mut res);
        }
        res
    }

    // --- Barrier ---------------------------------------------------------------

    /// The application reached a barrier.
    pub fn on_barrier(&mut self) -> HandleResult {
        let mut res = HandleResult::default();
        self.stats.barriers += 1;
        self.close_interval(&mut res);
        let epoch = self.barrier_epoch;
        self.trace.emit(self.me.0, TraceEvent::DsmBarrier { epoch });
        let notices = self.own_notices_since(self.barrier_shipped);
        self.barrier_shipped = self.vc.get(self.me);
        assert!(self.blocked.is_none(), "proc {:?} double-blocked", self.me);
        self.blocked = Some(Blocked::Barrier(epoch));
        if self.me.0 == 0 || self.cfg.tree_barrier {
            // Centralised manager, or any tree node: combine the local
            // arrival (interior tree nodes forward upward once their
            // subtree is complete).
            let vc = self.vc.clone();
            self.barrier_arrive(epoch, self.me, vc, notices, &mut res);
        } else {
            res.out.push(Msg {
                src: self.me,
                dst: ProcId(0),
                payload: Payload::BarrierArrive {
                    epoch,
                    proc: self.me,
                    vc: self.vc.clone(),
                    notices,
                },
            });
        }
        res
    }

    /// Combining-tree children of this processor (k-ary heap layout:
    /// children of `i` are `k*i+1 ..= k*i+k`).
    fn tree_children(&self) -> impl Iterator<Item = ProcId> {
        let n = self.cfg.procs as u32;
        let k = self.cfg.barrier_arity.max(2) as u32;
        let me = self.me.0;
        (k * me + 1..=k * me + k)
            .filter(move |&c| c < n)
            .map(ProcId)
    }

    /// Combining-tree parent of this processor (`(i-1)/k`; only
    /// meaningful for `me != 0`).
    fn tree_parent(&self) -> ProcId {
        let k = self.cfg.barrier_arity.max(2) as u32;
        ProcId((self.me.0 - 1) / k)
    }

    /// How many arrivals this processor combines before passing up: its
    /// own plus one per subtree child (tree mode), or all N (centralised
    /// manager at processor 0).
    fn barrier_expected(&self) -> u32 {
        if self.cfg.tree_barrier {
            1 + self.tree_children().count() as u32
        } else {
            self.cfg.procs as u32
        }
    }

    fn barrier_arrive(
        &mut self,
        epoch: u32,
        _proc: ProcId,
        vc: VClock,
        notices: Vec<WriteNotice>,
        res: &mut HandleResult,
    ) {
        let expected = self.barrier_expected();
        let mgr = self
            .barrier_mgr
            .as_mut()
            // cni-lint: allow(panic-path) -- only the configured barrier manager node receives BarrierArrive; missing combining state is a routing bug in this engine
            .expect("barrier combining state present");
        debug_assert_eq!(mgr.epoch, epoch, "barrier epoch skew");
        mgr.arrived += 1;
        mgr.vc.merge(&vc);
        mgr.notices.extend(notices);
        if mgr.arrived < expected {
            return;
        }
        let combined_vc = mgr.vc.clone();
        let combined_notices = std::mem::take(&mut mgr.notices);
        mgr.arrived = 0;
        mgr.epoch += 1;
        if self.cfg.tree_barrier && self.me.0 != 0 {
            // Subtree complete: pass the combined arrival to the parent;
            // the release will come back down the tree.
            res.out.push(Msg {
                src: self.me,
                dst: self.tree_parent(),
                payload: Payload::BarrierArrive {
                    epoch,
                    proc: self.me,
                    vc: combined_vc,
                    notices: combined_notices,
                },
            });
            return;
        }
        // Root (or centralised manager): release.
        if self.cfg.tree_barrier {
            for c in self.tree_children().collect::<Vec<_>>() {
                res.out.push(Msg {
                    src: self.me,
                    dst: c,
                    payload: Payload::BarrierRelease {
                        epoch,
                        vc: combined_vc.clone(),
                        notices: combined_notices.clone(),
                    },
                });
            }
        } else {
            for p in 1..self.cfg.procs as u32 {
                res.out.push(Msg {
                    src: self.me,
                    dst: ProcId(p),
                    payload: Payload::BarrierRelease {
                        epoch,
                        vc: combined_vc.clone(),
                        notices: combined_notices.clone(),
                    },
                });
            }
        }
        let mut work = Work::default();
        let wakeup = self.apply_barrier_release(epoch, &combined_vc, &combined_notices, &mut work);
        res.work.add(&work);
        res.wakeup = wakeup;
    }

    fn apply_barrier_release(
        &mut self,
        epoch: u32,
        vc: &VClock,
        notices: &[WriteNotice],
        work: &mut Work,
    ) -> Option<Wakeup> {
        self.vc.merge(vc);
        self.integrate_notices(notices, work);
        self.barrier_epoch = epoch + 1;
        match self.blocked {
            Some(Blocked::Barrier(e)) if e == epoch => {
                self.blocked = None;
                Some(Wakeup::BarrierDone(epoch))
            }
            _ => None,
        }
    }

    /// Tree mode: a release from the parent is applied locally and
    /// forwarded to the children.
    fn forward_barrier_release(
        &self,
        epoch: u32,
        vc: &VClock,
        notices: &[WriteNotice],
        out: &mut Vec<Msg>,
    ) {
        if !self.cfg.tree_barrier {
            return;
        }
        for c in self.tree_children() {
            out.push(Msg {
                src: self.me,
                dst: c,
                payload: Payload::BarrierRelease {
                    epoch,
                    vc: vc.clone(),
                    notices: notices.to_vec(),
                },
            });
        }
    }

    // --- Message dispatch -------------------------------------------------------

    /// Handle an incoming protocol message.
    pub fn on_message(&mut self, msg: Msg) -> HandleResult {
        if trace_enabled() {
            eprintln!(
                "[{:?}] <- {:?} : {}",
                self.me,
                msg.src,
                trace_payload(&msg.payload)
            );
        }
        debug_assert_eq!(msg.dst, self.me, "misrouted message");
        self.trace.emit(
            self.me.0,
            TraceEvent::DsmMsg {
                kind: msg.payload.kind(),
                from: msg.src.0,
            },
        );
        let mut res = HandleResult::default();
        let mut work = Work::default();
        match msg.payload {
            Payload::AcquireReq {
                lock,
                requester,
                vc,
            } => {
                self.manage_acquire(lock, requester, vc, &mut res);
            }
            Payload::AcquireFwd {
                lock,
                requester,
                vc,
            } => {
                self.local_enqueue_or_grant(lock, requester, vc, &mut res);
            }
            Payload::AcquireGrant {
                lock,
                vc,
                notices,
                then_serve,
            } => {
                self.vc.merge(&vc);
                self.integrate_notices(&notices, &mut work);
                let hs = self.holders.entry(lock).or_default();
                debug_assert!(!hs.held);
                hs.held = true;
                hs.in_use = true;
                hs.pending.extend(then_serve);
                match self.blocked {
                    Some(Blocked::Acquire(l)) if l == lock => {
                        self.blocked = None;
                        res.wakeup = Some(Wakeup::AcquireDone(lock));
                    }
                    // cni-lint: allow(panic-path) -- a LockGrant only ever answers this node's own AcquireReq; any other blocked state is a protocol-engine bug
                    ref b => panic!("grant for {lock:?} while {:?} blocked on {b:?}", self.me),
                }
            }
            Payload::BarrierArrive {
                epoch,
                proc,
                vc,
                notices,
            } => {
                self.barrier_arrive(epoch, proc, vc, notices, &mut res);
            }
            Payload::BarrierRelease { epoch, vc, notices } => {
                self.forward_barrier_release(epoch, &vc, &notices, &mut res.out);
                res.wakeup = self.apply_barrier_release(epoch, &vc, &notices, &mut work);
            }
            Payload::PageReq { page, requester } => {
                // Serve the current frame with its version vector. The
                // frame always has a base here: home pages are installed at
                // allocation, and any other serving processor must have
                // faulted the page in before writing it.
                let h = self.space.page(page);
                let data = h.frame.snapshot();
                work.page_copy_words += data.len() as u64;
                let version = self
                    .pv
                    .get(&page)
                    .cloned()
                    .unwrap_or_else(|| VClock::zero(self.cfg.procs));
                res.out.push(Msg {
                    src: self.me,
                    dst: requester,
                    payload: Payload::PageResp {
                        page,
                        version,
                        data,
                    },
                });
            }
            Payload::PageResp {
                page,
                version,
                data,
            } => {
                res.wakeup = self.apply_page_resp(page, version, data, &mut work, &mut res.out);
            }
            Payload::DiffReq {
                page,
                requester,
                floor,
                upto,
            } => {
                let mut intervals = Vec::new();
                let mut vcs = Vec::new();
                let mut diffs = Vec::new();
                for i in (floor + 1)..=upto {
                    if let Some((d, ivc)) = self.my_diffs.get(&(page, i)) {
                        work.diff_words += d.words() as u64;
                        intervals.push(i);
                        vcs.push(ivc.clone());
                        diffs.push(d.clone());
                    }
                }
                res.out.push(Msg {
                    src: self.me,
                    dst: requester,
                    payload: Payload::DiffResp {
                        page,
                        writer: self.me,
                        intervals,
                        vcs,
                        diffs,
                    },
                });
            }
            Payload::DiffResp {
                page,
                writer,
                intervals,
                vcs,
                diffs,
            } => {
                res.wakeup = self.apply_diff_resp(page, writer, intervals, vcs, diffs, &mut work);
            }
        }
        res.work.add(&work);
        res
    }

    fn apply_page_resp(
        &mut self,
        page: PageId,
        version: VClock,
        data: Vec<u64>,
        work: &mut Work,
        out: &mut Vec<Msg>,
    ) -> Option<Wakeup> {
        let (want_write, fault_page) = match &self.blocked {
            Some(Blocked::Fault {
                page: p,
                want_write,
                awaiting_page: true,
                ..
            }) => (*want_write, *p),
            // cni-lint: allow(panic-path) -- a PageResp only ever answers this node's own PageReq; any other blocked state is a protocol-engine bug
            ref b => panic!("unexpected PageResp while blocked on {b:?}"),
        };
        debug_assert_eq!(fault_page, page, "PageResp for wrong page");
        let h = self.space.page(page);
        h.frame.fill_from(&data);
        work.page_copy_words += data.len() as u64;
        let pv = version;
        // The served copy may lack writes the frame must regain before the
        // fault completes: our own committed intervals (restored from the
        // local diff store) and other writers' intervals we know about but
        // the server had not applied. ALL of them — local and remote — are
        // buffered and applied together in causal order at completion;
        // applying our own diffs eagerly here would let a causally-earlier
        // remote diff arrive later and clobber a causally-later local
        // write.
        let mut buffered: Vec<(ProcId, u32, VClock, Diff)> = Vec::new();
        let mut committed: Vec<(ProcId, u32)> = Vec::new();
        let my_k = self
            .knowledge
            .get(&page)
            .map(|k| k.get(self.me))
            .unwrap_or(0);
        if my_k > pv.get(self.me) {
            for i in (pv.get(self.me) + 1)..=my_k {
                if let Some((d, ivc)) = self.my_diffs.get(&(page, i)) {
                    buffered.push((self.me, i, ivc.clone(), d.clone()));
                }
            }
            committed.push((self.me, my_k));
        }
        let zero = VClock::zero(self.cfg.procs);
        let kn = self.knowledge.get(&page).unwrap_or(&zero).clone();
        let mut outstanding = BTreeMap::new();
        for w in (0..self.cfg.procs as u32).map(ProcId) {
            if w == self.me {
                continue;
            }
            let (fl, upto) = (pv.get(w), kn.get(w));
            if upto > fl {
                self.stats.diff_fetches += 1;
                outstanding.insert(w, upto);
                out.push(Msg {
                    src: self.me,
                    dst: w,
                    payload: Payload::DiffReq {
                        page,
                        requester: self.me,
                        floor: fl,
                        upto,
                    },
                });
            }
        }
        self.pv.insert(page, pv);
        if outstanding.is_empty() {
            self.blocked = None;
            return self.finish_diff_merge(page, want_write, buffered, committed, work);
        }
        self.blocked = Some(Blocked::Fault {
            page,
            want_write,
            awaiting_page: false,
            outstanding,
            buffered,
            committed,
        });
        None
    }

    /// Apply buffered diffs in a linear extension of their causal order,
    /// commit the coverage they represent into the page version, and
    /// complete the fault. The component sum of a vector time is strictly
    /// monotone along happens-before, so sorting by (sum, writer, interval)
    /// is a valid and deterministic linearisation; concurrent diffs touch
    /// disjoint words under a correct locking discipline.
    fn finish_diff_merge(
        &mut self,
        page: PageId,
        want_write: bool,
        mut buffered: Vec<(ProcId, u32, VClock, Diff)>,
        committed: Vec<(ProcId, u32)>,
        work: &mut Work,
    ) -> Option<Wakeup> {
        buffered.sort_by_key(|(w, i, vc, _)| (vc.0.iter().map(|&c| c as u64).sum::<u64>(), *w, *i));
        let h = self.space.page(page);
        for (_, _, _, d) in &buffered {
            d.apply(&h.frame);
            work.diff_words += d.words() as u64;
        }
        let pv = self
            .pv
            .entry(page)
            .or_insert_with(|| VClock::zero(self.cfg.procs));
        for (w, upto) in committed {
            pv.raise(w, upto);
        }
        self.complete_fault(page, want_write, work)
    }

    fn apply_diff_resp(
        &mut self,
        page: PageId,
        writer: ProcId,
        intervals: Vec<u32>,
        vcs: Vec<VClock>,
        diffs: Vec<Diff>,
        work: &mut Work,
    ) -> Option<Wakeup> {
        let (want_write, done) = match &mut self.blocked {
            Some(Blocked::Fault {
                page: p,
                want_write,
                awaiting_page: false,
                outstanding,
                buffered,
                committed,
            }) => {
                debug_assert_eq!(*p, page, "DiffResp for wrong page");
                let upto = outstanding
                    .remove(&writer)
                    // cni-lint: allow(panic-path) -- the outstanding set was built from this node's own DiffReq fan-out; a reply from outside it is an engine bug
                    .expect("DiffResp from unexpected writer");
                for ((i, vc), d) in intervals.into_iter().zip(vcs).zip(diffs) {
                    debug_assert!(i <= upto);
                    buffered.push((writer, i, vc, d));
                }
                // Do NOT raise pv yet: the diffs are only buffered. Raising
                // early would let a concurrent PageReq be served with a
                // version vector claiming updates the frame does not hold —
                // a lost update at the requester.
                committed.push((writer, upto));
                (*want_write, outstanding.is_empty())
            }
            // cni-lint: allow(panic-path) -- a DiffResp only ever answers this node's own DiffReq; any other blocked state is a protocol-engine bug
            ref b => panic!("unexpected DiffResp while blocked on {b:?}"),
        };
        if !done {
            return None;
        }
        let Some(Blocked::Fault {
            buffered,
            committed,
            ..
        }) = self.blocked.take()
        else {
            // cni-lint: allow(panic-path) -- the match above returned unless self.blocked is this exact Fault variant; the take() cannot observe anything else
            unreachable!("checked above");
        };
        self.finish_diff_merge(page, want_write, buffered, committed, work)
    }
}

/// Merge two diffs of the same page; `later` wins on overlapping words.
fn merge_diffs(earlier: Diff, later: Diff) -> Diff {
    if earlier.is_empty() {
        return later;
    }
    if later.is_empty() {
        return earlier;
    }
    let mut map: std::collections::BTreeMap<u32, u64> = earlier.entries.into_iter().collect();
    for (i, v) in later.entries {
        map.insert(i, v);
    }
    Diff {
        entries: map.into_iter().collect(),
    }
}

/// Is `CNI_DSM_TRACE` set? Checked once; tracing is a debugging aid for
/// protocol investigations (prints every delivered protocol message).
fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("CNI_DSM_TRACE").is_some())
}

fn trace_payload(p: &Payload) -> String {
    match p {
        Payload::PageResp {
            page,
            version,
            data,
        } => {
            format!(
                "PageResp page={page:?} ver={version:?} words={}",
                data.len()
            )
        }
        Payload::DiffResp {
            page,
            writer,
            intervals,
            diffs,
            ..
        } => {
            let sizes: Vec<String> = diffs
                .iter()
                .zip(intervals)
                .map(|(d, i)| format!("i{i}:{}w", d.words()))
                .collect();
            format!("DiffResp page={page:?} from={writer:?} {sizes:?}")
        }
        other => {
            let full = format!("{other:?}");
            full.chars().take(140).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_diffs_later_wins() {
        let a = Diff {
            entries: vec![(1, 10), (3, 30)],
        };
        let b = Diff {
            entries: vec![(3, 99), (5, 50)],
        };
        let m = merge_diffs(a, b);
        assert_eq!(m.entries, vec![(1, 10), (3, 99), (5, 50)]);
    }

    #[test]
    fn merge_diffs_identity() {
        let a = Diff {
            entries: vec![(1, 10)],
        };
        assert_eq!(merge_diffs(Diff::default(), a.clone()), a);
        assert_eq!(merge_diffs(a.clone(), Diff::default()), a);
    }
}
