//! Identifiers, addresses and vector timestamps for the DSM protocol.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor (= node) in the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcId(pub u32);

/// A shared page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u32);

/// A synchronisation lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockId(pub u32);

/// A virtual address in the shared segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VAddr(pub u64);

/// Base of the shared segment ("a fixed portion of the processor address
/// space was allocated to distributed shared memory").
pub const SHARED_BASE: u64 = 0x8000_0000;

impl VAddr {
    /// The page containing this address, for `page_bytes`-sized pages.
    #[inline]
    pub fn page(self, page_bytes: usize) -> PageId {
        PageId(((self.0 - SHARED_BASE) / page_bytes as u64) as u32)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn offset(self, page_bytes: usize) -> usize {
        ((self.0 - SHARED_BASE) % page_bytes as u64) as usize
    }

    /// Word index (8-byte words) within the page.
    #[inline]
    pub fn word(self, page_bytes: usize) -> usize {
        self.offset(page_bytes) / 8
    }

    /// Address arithmetic in bytes.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> VAddr {
        VAddr(self.0 + bytes)
    }

    /// First address of `page`.
    #[inline]
    pub fn of_page(page: PageId, page_bytes: usize) -> VAddr {
        VAddr(SHARED_BASE + page.0 as u64 * page_bytes as u64)
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

/// A write notice: "processor `writer` modified `page` during its interval
/// `interval`". Carried on lock grants and barrier releases; receiving one
/// you haven't covered invalidates your copy of the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WriteNotice {
    /// The modifying processor.
    pub writer: ProcId,
    /// Its interval index (1-based; interval i closes at its i-th release).
    pub interval: u32,
    /// The page modified.
    pub page: PageId,
}

/// A vector timestamp over the processors of the cluster.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VClock(pub Vec<u32>);

impl VClock {
    /// The zero clock for `n` processors.
    pub fn zero(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Component for `p`.
    #[inline]
    pub fn get(&self, p: ProcId) -> u32 {
        self.0[p.0 as usize]
    }

    /// Set component for `p`.
    #[inline]
    pub fn set(&mut self, p: ProcId, v: u32) {
        self.0[p.0 as usize] = v;
    }

    /// Raise component for `p` to at least `v`.
    #[inline]
    pub fn raise(&mut self, p: ProcId, v: u32) {
        let e = &mut self.0[p.0 as usize];
        *e = (*e).max(v);
    }

    /// Component-wise maximum.
    pub fn merge(&mut self, other: &VClock) {
        assert_eq!(self.0.len(), other.0.len(), "clock arity mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Does every component of `self` cover `other`?
    pub fn covers(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Number of processors this clock spans.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the clock spans zero processors (degenerate).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_page_math() {
        let page_bytes = 2048;
        let a = VAddr(SHARED_BASE + 2048 * 3 + 16);
        assert_eq!(a.page(page_bytes), PageId(3));
        assert_eq!(a.offset(page_bytes), 16);
        assert_eq!(a.word(page_bytes), 2);
        assert_eq!(
            VAddr::of_page(PageId(3), page_bytes).page(page_bytes),
            PageId(3)
        );
    }

    #[test]
    fn vclock_merge_and_cover() {
        let mut a = VClock::zero(3);
        a.set(ProcId(0), 5);
        let mut b = VClock::zero(3);
        b.set(ProcId(1), 2);
        assert!(!a.covers(&b));
        a.merge(&b);
        assert_eq!(a.0, vec![5, 2, 0]);
        assert!(a.covers(&b));
        a.raise(ProcId(1), 1);
        assert_eq!(a.get(ProcId(1)), 2, "raise must not lower");
        a.raise(ProcId(2), 7);
        assert_eq!(a.get(ProcId(2)), 7);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn merge_rejects_mismatched_arity() {
        let mut a = VClock::zero(2);
        a.merge(&VClock::zero(3));
    }
}
