//! Protocol messages of the lazy invalidate release-consistency DSM.
//!
//! Every consistency action is a message between processors; the cluster
//! simulation gives each one transport timing through the NIC/ATM models.
//! [`Payload::wire_bytes`] defines on-the-wire sizes, and
//! [`Payload::kind`] the leading header byte PATHFINDER patterns match on
//! (so the CNI can dispatch protocol messages to the on-board handler).

use crate::diff::Diff;
use crate::types::{LockId, PageId, ProcId, VClock, WriteNotice};
use serde::{Deserialize, Serialize};

/// Fixed header bytes on every protocol message (kind, source, length,
/// sequence — what a real implementation would carry).
pub const MSG_HEADER_BYTES: usize = 32;

/// Message kind bytes (the first header byte; PATHFINDER matches these).
pub mod kind {
    /// Lock acquire request (to manager).
    pub const ACQUIRE_REQ: u8 = 0xD0;
    /// Lock acquire forwarded (manager to probable holder).
    pub const ACQUIRE_FWD: u8 = 0xD1;
    /// Lock grant with piggybacked write notices.
    pub const ACQUIRE_GRANT: u8 = 0xD2;
    /// Barrier arrival (client to manager).
    pub const BARRIER_ARRIVE: u8 = 0xD3;
    /// Barrier release broadcast.
    pub const BARRIER_RELEASE: u8 = 0xD4;
    /// Full-page fetch request.
    pub const PAGE_REQ: u8 = 0xD5;
    /// Full-page data reply.
    pub const PAGE_RESP: u8 = 0xD6;
    /// Diff fetch request.
    pub const DIFF_REQ: u8 = 0xD7;
    /// Diff data reply.
    pub const DIFF_RESP: u8 = 0xD8;
}

/// The protocol payloads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Payload {
    /// Ask the lock's manager for the token.
    AcquireReq {
        /// The lock.
        lock: LockId,
        /// Who wants it.
        requester: ProcId,
        /// Requester's vector time (for notice filtering at grant).
        vc: VClock,
    },
    /// Manager forwards the request toward the probable holder.
    AcquireFwd {
        /// The lock.
        lock: LockId,
        /// Original requester.
        requester: ProcId,
        /// Requester's vector time.
        vc: VClock,
    },
    /// The token, with consistency information.
    AcquireGrant {
        /// The lock.
        lock: LockId,
        /// Granter's vector time.
        vc: VClock,
        /// Write notices the requester has not seen.
        notices: Vec<WriteNotice>,
        /// Requests queued behind this one (chain transfer).
        then_serve: Vec<(ProcId, VClock)>,
    },
    /// Client reached the barrier.
    BarrierArrive {
        /// Barrier epoch.
        epoch: u32,
        /// Arriving processor.
        proc: ProcId,
        /// Its vector time.
        vc: VClock,
        /// Its own write notices created since the last barrier.
        notices: Vec<WriteNotice>,
    },
    /// Manager releases the barrier.
    BarrierRelease {
        /// Barrier epoch.
        epoch: u32,
        /// Merged vector time.
        vc: VClock,
        /// Union of all new write notices.
        notices: Vec<WriteNotice>,
    },
    /// Fetch a full page copy.
    PageReq {
        /// The page.
        page: PageId,
        /// Who is asking.
        requester: ProcId,
    },
    /// A full page copy.
    PageResp {
        /// The page.
        page: PageId,
        /// Which writer intervals the copy reflects.
        version: VClock,
        /// The page words.
        data: Vec<u64>,
    },
    /// Fetch a writer's diffs for a page, intervals in `(floor, upto]`.
    DiffReq {
        /// The page.
        page: PageId,
        /// Who is asking.
        requester: ProcId,
        /// Exclusive lower interval bound.
        floor: u32,
        /// Inclusive upper interval bound.
        upto: u32,
    },
    /// The requested diffs, ascending by interval.
    DiffResp {
        /// The page.
        page: PageId,
        /// The writer whose diffs these are.
        writer: ProcId,
        /// Interval of each diff.
        intervals: Vec<u32>,
        /// Vector time of each interval — the receiver applies diffs in a
        /// linear extension of the causal order these encode.
        vcs: Vec<VClock>,
        /// The diffs themselves.
        diffs: Vec<Diff>,
    },
}

impl Payload {
    /// The classification byte (first header byte).
    pub fn kind(&self) -> u8 {
        match self {
            Payload::AcquireReq { .. } => kind::ACQUIRE_REQ,
            Payload::AcquireFwd { .. } => kind::ACQUIRE_FWD,
            Payload::AcquireGrant { .. } => kind::ACQUIRE_GRANT,
            Payload::BarrierArrive { .. } => kind::BARRIER_ARRIVE,
            Payload::BarrierRelease { .. } => kind::BARRIER_RELEASE,
            Payload::PageReq { .. } => kind::PAGE_REQ,
            Payload::PageResp { .. } => kind::PAGE_RESP,
            Payload::DiffReq { .. } => kind::DIFF_REQ,
            Payload::DiffResp { .. } => kind::DIFF_RESP,
        }
    }

    /// On-the-wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        let body = match self {
            Payload::AcquireReq { vc, .. } | Payload::AcquireFwd { vc, .. } => 8 + 4 * vc.len(),
            Payload::AcquireGrant {
                vc,
                notices,
                then_serve,
                ..
            } => 8 + 4 * vc.len() + 12 * notices.len() + (8 + 4 * vc.len()) * then_serve.len(),
            Payload::BarrierArrive { vc, notices, .. }
            | Payload::BarrierRelease { vc, notices, .. } => 8 + 4 * vc.len() + 12 * notices.len(),
            Payload::PageReq { .. } => 8,
            Payload::PageResp { version, data, .. } => 4 * version.len() + 8 * data.len(),
            Payload::DiffReq { .. } => 16,
            Payload::DiffResp {
                intervals,
                vcs,
                diffs,
                ..
            } => {
                8 + 4 * intervals.len()
                    + vcs.iter().map(|v| 4 * v.len()).sum::<usize>()
                    + diffs.iter().map(Diff::wire_bytes).sum::<usize>()
            }
        };
        MSG_HEADER_BYTES + body
    }

    /// If this message carries a complete page image, which page — the
    /// Message Cache operates on exactly these.
    pub fn page_payload(&self) -> Option<PageId> {
        match self {
            Payload::PageResp { page, .. } => Some(*page),
            _ => None,
        }
    }

    /// Should the receiving board bind this payload into its Message Cache
    /// (the header cache bit)? Set for migratory page images, per §2.2.
    pub fn cacheable(&self) -> bool {
        matches!(self, Payload::PageResp { .. })
    }

    /// Encoded header bytes a classifier would see.
    pub fn header_bytes(&self, src: ProcId) -> [u8; 8] {
        let mut h = [0u8; 8];
        h[0] = self.kind();
        h[1] = src.0 as u8;
        let len = self.wire_bytes() as u32;
        h[2..6].copy_from_slice(&len.to_be_bytes());
        h
    }
}

/// A routed protocol message.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Sender.
    pub src: ProcId,
    /// Receiver.
    pub dst: ProcId,
    /// Content.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_content() {
        let vc = VClock::zero(8);
        let small = Payload::AcquireReq {
            lock: LockId(1),
            requester: ProcId(0),
            vc: vc.clone(),
        };
        assert_eq!(small.wire_bytes(), 32 + 8 + 32);

        let page = Payload::PageResp {
            page: PageId(0),
            version: vc.clone(),
            data: vec![0; 256],
        };
        assert_eq!(page.wire_bytes(), 32 + 32 + 2048);

        let grant = Payload::AcquireGrant {
            lock: LockId(1),
            vc,
            notices: vec![
                WriteNotice {
                    writer: ProcId(1),
                    interval: 1,
                    page: PageId(0),
                };
                3
            ],
            then_serve: vec![],
        };
        assert_eq!(grant.wire_bytes(), 32 + 8 + 32 + 36);
    }

    #[test]
    fn kinds_are_distinct() {
        let vc = VClock::zero(2);
        let payloads = [
            Payload::AcquireReq {
                lock: LockId(0),
                requester: ProcId(0),
                vc: vc.clone(),
            },
            Payload::AcquireFwd {
                lock: LockId(0),
                requester: ProcId(0),
                vc: vc.clone(),
            },
            Payload::AcquireGrant {
                lock: LockId(0),
                vc: vc.clone(),
                notices: vec![],
                then_serve: vec![],
            },
            Payload::BarrierArrive {
                epoch: 0,
                proc: ProcId(0),
                vc: vc.clone(),
                notices: vec![],
            },
            Payload::BarrierRelease {
                epoch: 0,
                vc: vc.clone(),
                notices: vec![],
            },
            Payload::PageReq {
                page: PageId(0),
                requester: ProcId(0),
            },
            Payload::PageResp {
                page: PageId(0),
                version: vc.clone(),
                data: vec![],
            },
            Payload::DiffReq {
                page: PageId(0),
                requester: ProcId(0),
                floor: 0,
                upto: 1,
            },
            Payload::DiffResp {
                page: PageId(0),
                writer: ProcId(0),
                intervals: vec![],
                vcs: vec![],
                diffs: vec![],
            },
        ];
        let mut kinds: Vec<u8> = payloads.iter().map(Payload::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), payloads.len());
    }

    #[test]
    fn only_page_resp_is_cacheable() {
        let p = Payload::PageResp {
            page: PageId(3),
            version: VClock::zero(2),
            data: vec![],
        };
        assert!(p.cacheable());
        assert_eq!(p.page_payload(), Some(PageId(3)));
        let q = Payload::PageReq {
            page: PageId(3),
            requester: ProcId(0),
        };
        assert!(!q.cacheable());
        assert_eq!(q.page_payload(), None);
    }

    #[test]
    fn header_bytes_carry_kind_and_src() {
        let p = Payload::PageReq {
            page: PageId(3),
            requester: ProcId(2),
        };
        let h = p.header_bytes(ProcId(2));
        assert_eq!(h[0], kind::PAGE_REQ);
        assert_eq!(h[1], 2);
    }
}
