//! Per-node shared-memory frames with a lock-free fast path.
//!
//! Each node holds its own copy (frame) of every shared page it has
//! touched. The *application* thread accesses frames directly — word loads
//! and stores on atomics plus one relaxed load of the page's access state —
//! and only traps to the protocol engine on an access-state violation
//! (page fault). This mirrors how a real LRC system uses the MMU: valid
//! accesses run at memory speed, faults enter the protocol.
//!
//! Concurrency discipline: the simulation engine guarantees at most one
//! thread (engine or one application co-thread) runs at a time, so the
//! relaxed atomics here are about satisfying the compiler, not about
//! cross-thread ordering.

use crate::types::PageId;
// cni-lint: allow(host-thread) -- page table shared with application co-threads; the engine runs at most one thread at a time (see module docs), the lock satisfies Send/Sync bounds
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Page access rights, stored per (node, page).
pub mod access {
    /// No valid copy: any access faults.
    pub const INVALID: u8 = 0;
    /// Valid for reading; writes fault (to create a twin).
    pub const READ: u8 = 1;
    /// Valid for reading and writing (twin exists for this interval).
    pub const WRITE: u8 = 2;
}

/// The words of one page copy.
pub struct Frame {
    words: Box<[AtomicU64]>,
}

impl Frame {
    fn new(words: usize) -> Self {
        Frame {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Word count.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True for zero-length frames (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Load word `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Store word `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed);
    }

    /// Copy the whole frame out (twin creation, page replies).
    pub fn snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Overwrite the whole frame (page replies).
    pub fn fill_from(&self, data: &[u64]) {
        debug_assert_eq!(data.len(), self.words.len(), "frame size mismatch");
        for (w, &v) in self.words.iter().zip(data) {
            w.store(v, Ordering::Relaxed);
        }
    }
}

/// Access state + dirty-line tracking for one (node, page).
pub struct PageFlags {
    state: AtomicU8,
    /// Bit per cache line written since the last flush; feeds the
    /// pre-transmit flush cost and the snoop statistics.
    dirty: Box<[AtomicU64]>,
}

impl PageFlags {
    fn new(lines: usize) -> Self {
        PageFlags {
            state: AtomicU8::new(access::INVALID),
            dirty: (0..lines.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Current access state.
    #[inline]
    pub fn state(&self) -> u8 {
        self.state.load(Ordering::Relaxed)
    }

    /// Set access state.
    #[inline]
    pub fn set_state(&self, s: u8) {
        self.state.store(s, Ordering::Relaxed);
    }

    /// Mark cache line `line` dirty.
    #[inline]
    pub fn mark_dirty(&self, line: usize) {
        self.dirty[line / 64].fetch_or(1 << (line % 64), Ordering::Relaxed);
    }

    /// Count dirty lines and clear them (a flush).
    pub fn take_dirty_lines(&self) -> u64 {
        let mut n = 0;
        for w in self.dirty.iter() {
            n += w.swap(0, Ordering::Relaxed).count_ones() as u64;
        }
        n
    }

    /// Count dirty lines without clearing.
    pub fn dirty_lines(&self) -> u64 {
        self.dirty
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }
}

/// A cheaply clonable handle to one (node, page): frame + flags.
#[derive(Clone)]
pub struct PageHandle {
    /// The data words.
    pub frame: Arc<Frame>,
    /// Access state and dirty bits.
    pub flags: Arc<PageFlags>,
}

/// One node's view of the shared segment.
pub struct NodeSpace {
    page_bytes: usize,
    line_bytes: usize,
    // cni-lint: allow(host-thread) -- keyed-only page map handed to co-threads; never contended (one runnable thread) and never iterated
    pages: RwLock<HashMap<PageId, PageHandle>>,
}

impl NodeSpace {
    /// A node space for `page_bytes` pages and `line_bytes` cache lines.
    pub fn new(page_bytes: usize, line_bytes: usize) -> Self {
        assert!(page_bytes.is_multiple_of(8), "pages must be whole words");
        assert!(line_bytes.is_power_of_two() && line_bytes >= 8);
        NodeSpace {
            page_bytes,
            line_bytes,
            // cni-lint: allow(host-thread) -- constructor for the waived field above
            pages: RwLock::new(HashMap::new()),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Words per page.
    pub fn page_words(&self) -> usize {
        self.page_bytes / 8
    }

    /// Cache lines per page.
    pub fn page_lines(&self) -> usize {
        self.page_bytes / self.line_bytes
    }

    /// Line index of byte offset `off`.
    #[inline]
    pub fn line_of(&self, off: usize) -> usize {
        off / self.line_bytes
    }

    /// Fetch the handle for `page`, creating an invalid zero frame on first
    /// touch.
    pub fn page(&self, page: PageId) -> PageHandle {
        if let Some(h) = self.pages.read().get(&page) {
            return h.clone();
        }
        let mut w = self.pages.write();
        w.entry(page)
            .or_insert_with(|| PageHandle {
                frame: Arc::new(Frame::new(self.page_words())),
                flags: Arc::new(PageFlags::new(self.page_lines())),
            })
            .clone()
    }

    /// Handle if the page has ever been touched on this node.
    pub fn try_page(&self, page: PageId) -> Option<PageHandle> {
        self.pages.read().get(&page).cloned()
    }

    /// Number of locally materialised frames.
    pub fn frames(&self) -> usize {
        self.pages.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = Frame::new(4);
        f.store(2, 99);
        assert_eq!(f.load(2), 99);
        assert_eq!(f.snapshot(), vec![0, 0, 99, 0]);
        f.fill_from(&[1, 2, 3, 4]);
        assert_eq!(f.load(0), 1);
        assert_eq!(f.len(), 4);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn fill_rejects_wrong_size() {
        Frame::new(4).fill_from(&[1, 2]);
    }

    #[test]
    fn flags_state_machine() {
        let fl = PageFlags::new(64);
        assert_eq!(fl.state(), access::INVALID);
        fl.set_state(access::WRITE);
        assert_eq!(fl.state(), access::WRITE);
    }

    #[test]
    fn dirty_lines_accumulate_and_flush() {
        let fl = PageFlags::new(64);
        fl.mark_dirty(0);
        fl.mark_dirty(0);
        fl.mark_dirty(63);
        assert_eq!(fl.dirty_lines(), 2);
        assert_eq!(fl.take_dirty_lines(), 2);
        assert_eq!(fl.dirty_lines(), 0);
    }

    #[test]
    fn dirty_lines_beyond_64() {
        let fl = PageFlags::new(512);
        fl.mark_dirty(100);
        fl.mark_dirty(500);
        assert_eq!(fl.take_dirty_lines(), 2);
    }

    #[test]
    fn node_space_creates_frames_on_demand() {
        let ns = NodeSpace::new(2048, 32);
        assert_eq!(ns.page_words(), 256);
        assert_eq!(ns.page_lines(), 64);
        assert!(ns.try_page(PageId(5)).is_none());
        let h = ns.page(PageId(5));
        assert_eq!(h.frame.len(), 256);
        assert!(ns.try_page(PageId(5)).is_some());
        assert_eq!(ns.frames(), 1);
        // Same handle identity on re-fetch.
        let h2 = ns.page(PageId(5));
        assert!(Arc::ptr_eq(&h.frame, &h2.frame));
    }

    #[test]
    fn line_of_maps_offsets() {
        let ns = NodeSpace::new(2048, 32);
        assert_eq!(ns.line_of(0), 0);
        assert_eq!(ns.line_of(31), 0);
        assert_eq!(ns.line_of(32), 1);
        assert_eq!(ns.line_of(2047), 63);
    }
}
