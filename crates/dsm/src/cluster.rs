//! A timing-free cluster harness: N protocol engines wired back-to-back.
//!
//! [`DsmCluster`] delivers protocol messages synchronously (FIFO, no
//! simulated time), which makes it the reference semantics for protocol
//! correctness: the integration tests drive application-level access
//! patterns through it and assert release-consistency guarantees. The
//! timed simulation in the `cni` facade crate routes exactly the same
//! messages through the NIC/ATM models instead.

use crate::node::{DsmConfig, DsmNode, HandleResult, Wakeup, Work};
use crate::protocol::Msg;
use crate::space::{access, NodeSpace};
use crate::types::{LockId, PageId, ProcId, VAddr};
use std::collections::VecDeque;
use std::sync::Arc;

/// A synchronous DSM cluster.
///
/// ```
/// use cni_dsm::{DsmCluster, DsmConfig, LockId, ProcId};
///
/// let mut c = DsmCluster::new(DsmConfig {
///     procs: 2,
///     page_bytes: 2048,
///     line_bytes: 32,
///     tree_barrier: false,
///     barrier_arity: 2,
/// });
/// let base = c.alloc(2048);
/// c.acquire(ProcId(0), LockId(0));
/// c.write_u64(ProcId(0), base, 42);
/// c.release(ProcId(0), LockId(0));
/// c.acquire(ProcId(1), LockId(0));
/// assert_eq!(c.read_u64(ProcId(1), base), 42); // release consistency
/// c.release(ProcId(1), LockId(0));
/// ```
pub struct DsmCluster {
    cfg: DsmConfig,
    nodes: Vec<DsmNode>,
    spaces: Vec<Arc<NodeSpace>>,
    queue: VecDeque<Msg>,
    wakeups: Vec<Vec<Wakeup>>,
    next_page: u32,
    total_work: Work,
    messages: u64,
}

impl DsmCluster {
    /// Build a cluster of `cfg.procs` engines.
    pub fn new(cfg: DsmConfig) -> Self {
        let spaces: Vec<Arc<NodeSpace>> = (0..cfg.procs)
            .map(|_| Arc::new(NodeSpace::new(cfg.page_bytes, cfg.line_bytes)))
            .collect();
        let nodes = (0..cfg.procs)
            .map(|p| DsmNode::new(ProcId(p as u32), cfg, spaces[p].clone()))
            .collect();
        DsmCluster {
            nodes,
            spaces,
            queue: VecDeque::new(),
            wakeups: vec![Vec::new(); cfg.procs],
            next_page: 0,
            total_work: Work::default(),
            messages: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// Allocate `bytes` of shared memory (whole pages); homes are assigned
    /// round-robin and initial copies installed there. Returns the base
    /// address.
    pub fn alloc(&mut self, bytes: usize) -> VAddr {
        let pages = bytes.div_ceil(self.cfg.page_bytes).max(1);
        let first = self.next_page;
        self.next_page += pages as u32;
        for p in first..self.next_page {
            let page = PageId(p);
            let home = self.nodes[0].page_home(page);
            self.nodes[home.0 as usize].init_home_page(page);
        }
        VAddr::of_page(PageId(first), self.cfg.page_bytes)
    }

    /// Engine for processor `p`.
    pub fn node(&self, p: ProcId) -> &DsmNode {
        &self.nodes[p.0 as usize]
    }

    /// Shared-memory space of processor `p`.
    pub fn space(&self, p: ProcId) -> &Arc<NodeSpace> {
        &self.spaces[p.0 as usize]
    }

    /// Total protocol messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total protocol labour performed.
    pub fn total_work(&self) -> Work {
        self.total_work
    }

    fn absorb(&mut self, p: usize, res: HandleResult) {
        self.total_work.add(&res.work);
        if let Some(w) = res.wakeup {
            self.wakeups[p].push(w);
        }
        self.queue.extend(res.out);
    }

    /// Deliver queued messages until quiescent.
    pub fn pump(&mut self) {
        while let Some(msg) = self.queue.pop_front() {
            self.messages += 1;
            let dst = msg.dst.0 as usize;
            let res = self.nodes[dst].on_message(msg);
            self.absorb(dst, res);
        }
    }

    /// Drain the wakeups recorded for `p`.
    pub fn take_wakeups(&mut self, p: ProcId) -> Vec<Wakeup> {
        std::mem::take(&mut self.wakeups[p.0 as usize])
    }

    fn wait_for(&mut self, p: ProcId, expect: Wakeup) {
        self.pump();
        let got = self.take_wakeups(p);
        assert!(
            got.contains(&expect),
            "proc {p:?} expected {expect:?}, got {got:?} (deadlock or protocol bug)"
        );
    }

    /// Read a shared word as processor `p`, faulting as needed.
    pub fn read_u64(&mut self, p: ProcId, addr: VAddr) -> u64 {
        let page = addr.page(self.cfg.page_bytes);
        let h = self.spaces[p.0 as usize].page(page);
        if h.flags.state() == access::INVALID {
            let res = self.nodes[p.0 as usize].on_read_fault(page);
            let done = res.wakeup.is_some();
            self.absorb(p.0 as usize, res);
            if !done {
                self.wait_for(p, Wakeup::FaultDone(page));
            } else {
                self.take_wakeups(p);
            }
        }
        h.frame.load(addr.word(self.cfg.page_bytes))
    }

    /// Write a shared word as processor `p`, faulting as needed.
    pub fn write_u64(&mut self, p: ProcId, addr: VAddr, v: u64) {
        let page = addr.page(self.cfg.page_bytes);
        let h = self.spaces[p.0 as usize].page(page);
        if h.flags.state() != access::WRITE {
            let res = self.nodes[p.0 as usize].on_write_fault(page);
            let done = res.wakeup.is_some();
            self.absorb(p.0 as usize, res);
            if !done {
                self.wait_for(p, Wakeup::FaultDone(page));
            } else {
                self.take_wakeups(p);
            }
        }
        h.frame.store(addr.word(self.cfg.page_bytes), v);
        h.flags
            .mark_dirty(self.spaces[p.0 as usize].line_of(addr.offset(self.cfg.page_bytes)));
    }

    /// Acquire `lock` as `p`; panics if it cannot complete synchronously
    /// (i.e. another processor holds it and never releases).
    pub fn acquire(&mut self, p: ProcId, lock: LockId) {
        let res = self.nodes[p.0 as usize].on_acquire(lock);
        let done = res.wakeup.is_some();
        self.absorb(p.0 as usize, res);
        if !done {
            self.wait_for(p, Wakeup::AcquireDone(lock));
        } else {
            self.take_wakeups(p);
        }
    }

    /// Release `lock` as `p`.
    pub fn release(&mut self, p: ProcId, lock: LockId) {
        let res = self.nodes[p.0 as usize].on_release(lock);
        self.absorb(p.0 as usize, res);
        self.pump();
    }

    /// Drive every processor through one barrier (arrival order = id
    /// order).
    pub fn barrier_all(&mut self) {
        let n = self.cfg.procs;
        for p in 0..n {
            let res = self.nodes[p].on_barrier();
            self.absorb(p, res);
        }
        self.pump();
        for p in 0..n {
            let got = self.take_wakeups(ProcId(p as u32));
            assert!(
                got.iter().any(|w| matches!(w, Wakeup::BarrierDone(_))),
                "proc {p} stuck at barrier: {got:?}"
            );
        }
    }
}
