//! `cni-dsm` — the lazy invalidate release-consistency DSM protocol the
//! paper's applications run on.
//!
//! The paper evaluates CNI with three shared-memory applications under "a
//! lazy invalidate release consistency protocol [6, 7]" (Keleher et al.'s
//! LRC). This crate is that protocol, built from scratch:
//!
//! * [`types`] — processors, pages, locks, vector timestamps, write
//!   notices.
//! * [`space`] — per-node page frames with a lock-free fast path for the
//!   application threads and dirty-line tracking for the pre-transmit
//!   flush.
//! * [`diff`] — twins and word-granularity diffs (concurrent write
//!   sharing).
//! * [`protocol`] — the message vocabulary, with wire sizes and the header
//!   kind bytes PATHFINDER patterns match.
//! * [`node`] — the per-processor engine: intervals, notice logs,
//!   invalidation, distributed lock managers, the barrier manager, and the
//!   page/diff fetch state machines. Timing-free: it reports messages,
//!   wakeups and labour; the simulation charges costs.
//! * [`cluster`] — a synchronous harness used as the protocol's reference
//!   semantics in tests.
//!
//! Under the CNI this engine runs *on the network interface* as an
//! Application Interrupt Handler; under the standard NIC it runs on the
//! host behind interrupts. The logic is identical — only the cost model
//! differs — which is exactly the comparison the paper makes.

#![deny(missing_docs)]

pub mod cluster;
pub mod diff;
pub mod node;
pub mod protocol;
pub mod space;
pub mod types;

pub use cluster::DsmCluster;
pub use diff::Diff;
pub use node::{DsmConfig, DsmNode, DsmStats, HandleResult, Wakeup, Work};
pub use protocol::{Msg, Payload};
pub use space::{access, Frame, NodeSpace, PageFlags, PageHandle};
pub use types::{LockId, PageId, ProcId, VAddr, VClock, WriteNotice, SHARED_BASE};
