//! Distributed lock-manager mechanics, driven message by message: the
//! probable-owner forwarding and the chained grant transfer
//! (`then_serve`) that keep queued requests moving when several
//! processors pile onto one lock.

use cni_dsm::{DsmConfig, DsmNode, LockId, Msg, NodeSpace, ProcId, Wakeup};
use std::collections::VecDeque;
use std::sync::Arc;

struct Net {
    nodes: Vec<DsmNode>,
    queue: VecDeque<Msg>,
    wakeups: Vec<Vec<Wakeup>>,
}

impl Net {
    fn new(n: usize) -> Self {
        let cfg = DsmConfig {
            procs: n,
            page_bytes: 1024,
            line_bytes: 32,
            tree_barrier: false,
            barrier_arity: 2,
        };
        Net {
            nodes: (0..n)
                .map(|p| DsmNode::new(ProcId(p as u32), cfg, Arc::new(NodeSpace::new(1024, 32))))
                .collect(),
            queue: VecDeque::new(),
            wakeups: vec![Vec::new(); n],
        }
    }

    fn acquire(&mut self, p: usize, lock: LockId) -> bool {
        let res = self.nodes[p].on_acquire(lock);
        let done = res.wakeup.is_some();
        self.queue.extend(res.out);
        if let Some(w) = res.wakeup {
            self.wakeups[p].push(w);
        }
        done
    }

    fn release(&mut self, p: usize, lock: LockId) {
        let res = self.nodes[p].on_release(lock);
        assert!(res.wakeup.is_none());
        self.queue.extend(res.out);
    }

    /// Deliver exactly one message; returns false when idle.
    fn step(&mut self) -> bool {
        let Some(msg) = self.queue.pop_front() else {
            return false;
        };
        let dst = msg.dst.0 as usize;
        let res = self.nodes[dst].on_message(msg);
        self.queue.extend(res.out);
        if let Some(w) = res.wakeup {
            self.wakeups[dst].push(w);
        }
        true
    }

    fn pump(&mut self) {
        while self.step() {}
    }

    fn granted(&mut self, p: usize, lock: LockId) -> bool {
        self.wakeups[p]
            .drain(..)
            .any(|w| w == Wakeup::AcquireDone(lock))
    }
}

#[test]
fn manager_grants_its_own_token_immediately() {
    let mut net = Net::new(3);
    // Lock 1's manager is proc 1.
    assert!(net.acquire(1, LockId(1)), "manager self-acquire is local");
    net.release(1, LockId(1));
    net.pump();
    // And a re-acquire after release is still local (lazy release).
    assert!(net.acquire(1, LockId(1)));
}

#[test]
fn remote_acquire_routes_through_manager() {
    let mut net = Net::new(3);
    // Proc 0 asks for lock 1 (manager: proc 1, which holds the token).
    assert!(!net.acquire(0, LockId(1)), "remote acquire must block");
    net.pump();
    assert!(net.granted(0, LockId(1)));
}

#[test]
fn queued_requests_chain_through_grants() {
    let mut net = Net::new(4);
    let l = LockId(0); // manager: proc 0
    assert!(net.acquire(0, l));
    // Three remote requesters pile on while 0 holds the lock.
    assert!(!net.acquire(1, l));
    assert!(!net.acquire(2, l));
    assert!(!net.acquire(3, l));
    net.pump();
    // Nothing granted while the holder is in its critical section.
    assert!(!net.granted(1, l) && !net.granted(2, l) && !net.granted(3, l));

    // Release: the grant chain must serve every waiter as each one
    // releases in turn.
    net.release(0, l);
    net.pump();
    assert!(net.granted(1, l), "first waiter");
    net.release(1, l);
    net.pump();
    assert!(net.granted(2, l), "second waiter via then_serve chain");
    net.release(2, l);
    net.pump();
    assert!(net.granted(3, l), "third waiter");
    net.release(3, l);
    net.pump();

    // The token is now parked at proc 3; a fresh request still finds it.
    assert!(!net.acquire(0, l));
    net.pump();
    assert!(net.granted(0, l));
}

#[test]
fn locks_with_different_managers_are_independent() {
    let mut net = Net::new(4);
    for lock in 0..8u32 {
        let manager = (lock % 4) as usize;
        assert!(
            net.acquire(manager, LockId(lock)),
            "manager {manager} owns lock {lock} at start"
        );
    }
    // Every manager now holds one of its own locks; cross acquires queue.
    assert!(!net.acquire(0, LockId(1)));
    net.pump();
    assert!(!net.granted(0, LockId(1)), "proc 1 still inside its CS");
    net.release(1, LockId(1));
    net.pump();
    assert!(net.granted(0, LockId(1)));
}

#[test]
fn grant_carries_notices_exactly_once() {
    // Two transfers of the same lock: the second grant must not re-send
    // the notices the requester already has (vector-clock filtering).
    let mut net = Net::new(2);
    let l = LockId(0);
    assert!(net.acquire(0, l));
    net.release(0, l);

    assert!(!net.acquire(1, l));
    net.pump();
    assert!(net.granted(1, l));
    net.release(1, l);
    net.pump();

    // The stats show no duplicated notice processing for an idle lock
    // bounce (no writes happened at all).
    assert_eq!(net.nodes[0].stats().notices_in, 0);
    assert_eq!(net.nodes[1].stats().notices_in, 0);
}
