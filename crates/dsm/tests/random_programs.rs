//! Randomised protocol stress: arbitrary lock-disciplined programs run
//! through the synchronous DSM cluster must agree with a flat reference
//! memory. This is the release-consistency contract checked in bulk:
//! every read under a lock sees exactly the value the serialised lock
//! order produced.

use cni_dsm::{DsmCluster, DsmConfig, LockId, ProcId, VAddr};
use proptest::prelude::*;
use std::collections::HashMap;

/// One lock-protected critical section: add `delta` to `slot`, which is
/// always accessed under `lock` (a well-synchronised program).
#[derive(Clone, Debug)]
struct Cs {
    proc: u8,
    lock: u8,
    slot: u8,
    delta: u64,
}

fn arb_cs(procs: u8) -> impl Strategy<Value = Cs> {
    (0..procs, 0u8..6, 0u8..32, 1u64..100).prop_map(|(proc, lock, slot, delta)| Cs {
        proc,
        lock,
        // Slots are partitioned among locks so every slot has exactly one
        // guarding lock: slot % 6 == lock.
        slot,
        delta,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn lock_disciplined_updates_serialise(
        procs in 2u8..5,
        css in proptest::collection::vec(arb_cs(4), 1..120),
    ) {
        let mut cluster = DsmCluster::new(DsmConfig {
            procs: procs as usize,
            page_bytes: 2048,
            line_bytes: 32,
            tree_barrier: false,
            barrier_arity: 2,
        });
        // 32 slots spread over 2 pages to force real sharing.
        let base = cluster.alloc(32 * 64);
        let slot_addr = |s: u8| -> VAddr { base.add(s as u64 * 64) };
        let mut reference: HashMap<u8, u64> = HashMap::new();
        for cs in &css {
            let p = ProcId((cs.proc % procs) as u32);
            // Bind the slot to its guarding lock.
            let lock = LockId((cs.slot % 6) as u32);
            let _ = cs.lock;
            cluster.acquire(p, lock);
            let cur = cluster.read_u64(p, slot_addr(cs.slot));
            prop_assert_eq!(cur, *reference.get(&cs.slot).unwrap_or(&0),
                "stale read of slot {} by {:?}", cs.slot, p);
            cluster.write_u64(p, slot_addr(cs.slot), cur + cs.delta);
            *reference.entry(cs.slot).or_insert(0) += cs.delta;
            cluster.release(p, lock);
        }
        // A barrier publishes everything; then every processor sees the
        // final values.
        cluster.barrier_all();
        for s in reference.keys() {
            for p in 0..procs {
                let got = cluster.read_u64(ProcId(p as u32), slot_addr(*s));
                prop_assert_eq!(got, reference[s]);
            }
        }
    }

    #[test]
    fn barrier_rounds_publish_disjoint_writers(
        procs in 2u8..5,
        rounds in 1usize..5,
        values in proptest::collection::vec(any::<u64>(), 4 * 5),
    ) {
        let n = procs as usize;
        let mut cluster = DsmCluster::new(DsmConfig {
            procs: n,
            page_bytes: 1024,
            line_bytes: 32,
            tree_barrier: false,
            barrier_arity: 2,
        });
        let base = cluster.alloc(n * 1024);
        for round in 0..rounds {
            for p in 0..n {
                let v = values[(round * n + p) % values.len()];
                cluster.write_u64(ProcId(p as u32), base.add((p * 1024) as u64), v);
            }
            cluster.barrier_all();
            for reader in 0..n {
                for p in 0..n {
                    let v = values[(round * n + p) % values.len()];
                    let got = cluster.read_u64(ProcId(reader as u32), base.add((p * 1024) as u64));
                    prop_assert_eq!(got, v, "round {}, reader {}, writer {}", round, reader, p);
                }
            }
        }
    }
}
