//! Release-consistency correctness of the DSM protocol, exercised through
//! the synchronous cluster harness. These tests pin down the guarantees
//! the paper's applications rely on: values written before a release are
//! visible after the matching acquire; barriers publish everything;
//! concurrent writers of one page merge through diffs; pages migrate
//! releaser → acquirer.

use cni_dsm::{DsmCluster, DsmConfig, LockId, ProcId};

fn cluster(procs: usize) -> DsmCluster {
    DsmCluster::new(DsmConfig {
        procs,
        page_bytes: 2048,
        line_bytes: 32,
        tree_barrier: false,
        barrier_arity: 2,
    })
}

const P0: ProcId = ProcId(0);
const P1: ProcId = ProcId(1);
const P2: ProcId = ProcId(2);
const P3: ProcId = ProcId(3);

#[test]
fn cold_read_sees_zeroed_memory() {
    let mut c = cluster(4);
    let base = c.alloc(8192);
    for p in 0..4 {
        for off in [0u64, 2048, 4096, 8184] {
            assert_eq!(c.read_u64(ProcId(p), base.add(off)), 0);
        }
    }
}

#[test]
fn lock_transfer_publishes_writes() {
    let mut c = cluster(2);
    let base = c.alloc(2048);
    let l = LockId(0);

    c.acquire(P0, l);
    c.write_u64(P0, base, 42);
    c.write_u64(P0, base.add(8), 43);
    c.release(P0, l);

    c.acquire(P1, l);
    assert_eq!(c.read_u64(P1, base), 42);
    assert_eq!(c.read_u64(P1, base.add(8)), 43);
    c.release(P1, l);
}

#[test]
fn lock_ping_pong_stays_coherent() {
    let mut c = cluster(2);
    let base = c.alloc(2048);
    let l = LockId(7);
    for round in 0..20u64 {
        let (writer, reader) = if round % 2 == 0 { (P0, P1) } else { (P1, P0) };
        c.acquire(writer, l);
        let old = c.read_u64(writer, base);
        assert_eq!(old, round, "round {round} saw stale counter");
        c.write_u64(writer, base, round + 1);
        c.release(writer, l);
        // The reader peeks only under the lock next round; nothing to
        // assert for `reader` here.
        let _ = reader;
    }
}

#[test]
fn reacquire_by_holder_is_local() {
    let mut c = cluster(4);
    let l = LockId(2);
    c.acquire(P2, l);
    c.release(P2, l);
    let before = c.node(P2).stats().lock_local;
    c.acquire(P2, l);
    c.release(P2, l);
    assert_eq!(
        c.node(P2).stats().lock_local,
        before + 1,
        "lazy release must allow a local re-acquire"
    );
}

#[test]
fn barrier_publishes_all_writers() {
    let mut c = cluster(4);
    let base = c.alloc(4 * 2048);
    // Each proc writes its own page.
    for p in 0..4u64 {
        let addr = base.add(p * 2048);
        c.write_u64(ProcId(p as u32), addr, 100 + p);
    }
    c.barrier_all();
    // Everyone sees everyone's writes.
    for reader in 0..4u32 {
        for p in 0..4u64 {
            assert_eq!(
                c.read_u64(ProcId(reader), base.add(p * 2048)),
                100 + p,
                "proc {reader} missed proc {p}'s write"
            );
        }
    }
}

#[test]
fn repeated_barrier_rounds_converge() {
    // Jacobi-shaped: two barriers per iteration, neighbours read each
    // other's boundary words.
    let mut c = cluster(4);
    let base = c.alloc(4 * 2048);
    let addr = |p: u64| base.add(p * 2048);
    for it in 1..=5u64 {
        for p in 0..4u64 {
            // Read the neighbours' previous values.
            let left = if p > 0 {
                c.read_u64(ProcId(p as u32), addr(p - 1))
            } else {
                0
            };
            let right = if p < 3 {
                c.read_u64(ProcId(p as u32), addr(p + 1))
            } else {
                0
            };
            let expect = |q: u64| (it - 1) * 10 + q;
            if p > 0 {
                assert_eq!(left, if it == 1 { 0 } else { expect(p - 1) });
            }
            if p < 3 {
                assert_eq!(right, if it == 1 { 0 } else { expect(p + 1) });
            }
            c.barrier_all_single(p as u32);
        }
        c.finish_barrier_round();
        for p in 0..4u64 {
            c.write_u64(ProcId(p as u32), addr(p), it * 10 + p);
        }
        c.barrier_all();
    }
}

#[test]
fn concurrent_write_sharing_merges_disjoint_words() {
    // Cholesky-shaped: two procs write disjoint words of ONE page under
    // different locks; a third reader sees both.
    let mut c = cluster(3);
    let base = c.alloc(2048);
    let la = LockId(10);
    let lb = LockId(11);

    c.acquire(P0, la);
    c.write_u64(P0, base, 1111);
    c.acquire(P1, lb);
    c.write_u64(P1, base.add(1024), 2222);
    c.release(P0, la);
    c.release(P1, lb);

    c.acquire(P2, la);
    c.acquire(P2, lb);
    assert_eq!(c.read_u64(P2, base), 1111);
    assert_eq!(c.read_u64(P2, base.add(1024)), 2222);
    c.release(P2, lb);
    c.release(P2, la);
}

#[test]
fn dirty_page_invalidation_preserves_local_writes() {
    // P0 writes word A of a page (its current interval, unreleased); a
    // notice from P1 for the same page invalidates it. P0's writes must
    // survive: published at P0's next release and visible locally.
    let mut c = cluster(3);
    let base = c.alloc(2048);
    let la = LockId(0);
    let lb = LockId(1);

    // P1 writes word B under lb and releases.
    c.acquire(P1, lb);
    c.write_u64(P1, base.add(512), 500);
    c.release(P1, lb);

    // P0 starts writing word A under la...
    c.acquire(P0, la);
    c.write_u64(P0, base, 900);
    // ... then acquires lb, whose grant invalidates the (dirty) page.
    c.acquire(P0, lb);
    assert_eq!(c.read_u64(P0, base.add(512)), 500, "remote word via lb");
    assert_eq!(c.read_u64(P0, base), 900, "own uncommitted write preserved");
    c.release(P0, lb);
    c.release(P0, la);

    // P2 acquires both; must see both words.
    c.acquire(P2, la);
    c.acquire(P2, lb);
    assert_eq!(c.read_u64(P2, base), 900);
    assert_eq!(c.read_u64(P2, base.add(512)), 500);
    c.release(P2, lb);
    c.release(P2, la);
}

#[test]
fn page_moves_from_releaser_to_acquirer() {
    // Migratory pattern: the page travels with the lock; each hop is a
    // full-page fetch (what receive caching accelerates on the CNI).
    let mut c = cluster(4);
    let base = c.alloc(2048);
    let l = LockId(3);
    let mut expected = 0u64;
    for hop in 0..8u32 {
        let p = ProcId(hop % 4);
        c.acquire(p, l);
        assert_eq!(c.read_u64(p, base), expected);
        expected += 7;
        c.write_u64(p, base, expected);
        c.release(p, l);
    }
    let fetches: u64 = (0..4).map(|p| c.node(ProcId(p)).stats().page_fetches).sum();
    assert!(
        fetches >= 7,
        "each hop after the first should fetch the page"
    );
}

#[test]
fn chained_lock_requests_serve_in_order() {
    // Three requesters pile onto one lock; the grant chain must serve all.
    let mut c = cluster(4);
    let base = c.alloc(2048);
    let l = LockId(5);
    c.acquire(P0, l);
    c.write_u64(P0, base, 1);
    // P1, P2, P3 all request while P0 holds. The synchronous harness can't
    // express concurrent blocking, so exercise the chain sequentially.
    c.release(P0, l);
    for (p, v) in [(P1, 2u64), (P2, 3), (P3, 4)] {
        c.acquire(p, l);
        assert_eq!(c.read_u64(p, base), v - 1);
        c.write_u64(p, base, v);
        c.release(p, l);
    }
}

#[test]
fn single_proc_cluster_degenerates_gracefully() {
    let mut c = cluster(1);
    let base = c.alloc(4096);
    c.acquire(P0, LockId(0));
    c.write_u64(P0, base, 5);
    c.release(P0, LockId(0));
    c.barrier_all();
    assert_eq!(c.read_u64(P0, base), 5);
    assert_eq!(c.messages(), 0, "one processor never sends messages");
}

#[test]
fn write_faults_create_intervals_only_when_dirty() {
    let mut c = cluster(2);
    let base = c.alloc(2048);
    let l = LockId(0);
    c.acquire(P0, l);
    c.release(P0, l); // no writes: no interval
    assert_eq!(c.node(P0).stats().intervals, 0);
    c.acquire(P0, l);
    c.write_u64(P0, base, 9);
    c.release(P0, l);
    assert_eq!(c.node(P0).stats().intervals, 1);
}

#[test]
fn stale_readers_refetch_only_when_notified() {
    let mut c = cluster(2);
    let base = c.alloc(2048);
    let l = LockId(0);

    // P1 reads the page (cold fetch from home).
    assert_eq!(c.read_u64(P1, base), 0);
    let fetches_before = c.node(P1).stats().page_fetches;

    // P1 reads again: no new fetch.
    assert_eq!(c.read_u64(P1, base.add(8)), 0);
    assert_eq!(c.node(P1).stats().page_fetches, fetches_before);

    // P0 writes under the lock; P1 doesn't synchronise, so its (stale but
    // consistent-for-it) copy stays valid.
    c.acquire(P0, l);
    c.write_u64(P0, base, 77);
    c.release(P0, l);
    assert_eq!(c.node(P1).stats().invalidations, 0);

    // Once P1 acquires, the notice invalidates and the read refetches.
    c.acquire(P1, l);
    assert_eq!(c.read_u64(P1, base), 77);
    assert!(c.node(P1).stats().page_fetches > fetches_before);
    c.release(P1, l);
}

// --- harness helpers used by repeated_barrier_rounds_converge -----------

trait BarrierByOne {
    fn barrier_all_single(&mut self, p: u32);
    fn finish_barrier_round(&mut self);
}

impl BarrierByOne for DsmCluster {
    fn barrier_all_single(&mut self, _p: u32) {
        // The synchronous harness runs whole barriers atomically via
        // `barrier_all`; per-proc arrival staging is exercised in the timed
        // simulation. This shim keeps the Jacobi-shaped test readable.
    }
    fn finish_barrier_round(&mut self) {}
}

#[test]
fn alloc_rounds_up_to_pages_and_separates_regions() {
    let mut c = cluster(2);
    let a = c.alloc(1);
    let b = c.alloc(5000);
    let d = c.alloc(100);
    // 1 byte -> 1 page; 5000 bytes -> 3 pages.
    assert_eq!(b.0 - a.0, 2048);
    assert_eq!(d.0 - b.0, 3 * 2048);
    // Distinct regions never alias.
    c.write_u64(P0, a, 1);
    c.write_u64(P0, b, 2);
    c.write_u64(P0, d, 3);
    assert_eq!(c.read_u64(P0, a), 1);
    assert_eq!(c.read_u64(P0, b), 2);
    assert_eq!(c.read_u64(P0, d), 3);
}

#[test]
fn many_pages_many_procs_smoke() {
    // A broader soak: 8 procs, 32 pages, lock-guarded counters + barriers.
    let mut c = cluster(8);
    let base = c.alloc(32 * 2048);
    for round in 0..3u64 {
        for p in 0..8u32 {
            let l = LockId(p % 4);
            c.acquire(ProcId(p), l);
            for k in 0..4u64 {
                let addr = base.add(((p as u64 * 4 + k) % 32) * 2048);
                let v = c.read_u64(ProcId(p), addr);
                c.write_u64(ProcId(p), addr, v + 1);
            }
            c.release(ProcId(p), l);
        }
        c.barrier_all();
        let _ = round;
    }
    // Total increments: 8 procs * 4 pages * 3 rounds = 96 spread over
    // pages; just verify global sum.
    let mut sum = 0;
    for pg in 0..32u64 {
        sum += c.read_u64(P0, base.add(pg * 2048));
    }
    assert_eq!(sum, 96);
}

#[test]
fn tree_barrier_publishes_all_writers() {
    // The combining-tree barrier must give exactly the centralised
    // barrier's guarantee: after release, every processor sees every
    // writer's pre-barrier writes.
    let mut c = DsmCluster::new(DsmConfig {
        procs: 7, // a full-ish binary tree: 0 -> (1,2) -> (3,4,5,6)
        page_bytes: 2048,
        line_bytes: 32,
        tree_barrier: true,
        barrier_arity: 2,
    });
    let base = c.alloc(7 * 2048);
    for round in 1..=3u64 {
        for p in 0..7u64 {
            c.write_u64(ProcId(p as u32), base.add(p * 2048), round * 100 + p);
        }
        c.barrier_all();
        for reader in 0..7u32 {
            for p in 0..7u64 {
                assert_eq!(
                    c.read_u64(ProcId(reader), base.add(p * 2048)),
                    round * 100 + p,
                    "round {round}: proc {reader} missed proc {p}"
                );
            }
        }
    }
}

#[test]
fn tree_barrier_matches_central_message_pattern() {
    // Tree mode spreads arrivals across log N levels; the centralised
    // manager takes all N-1 at processor 0.
    let run = |tree: bool| {
        let mut c = DsmCluster::new(DsmConfig {
            procs: 8,
            page_bytes: 2048,
            line_bytes: 32,
            tree_barrier: tree,
            barrier_arity: 2,
        });
        let base = c.alloc(8 * 2048);
        for p in 0..8u64 {
            c.write_u64(ProcId(p as u32), base.add(p * 2048), p + 1);
        }
        c.barrier_all();
        for p in 0..8u64 {
            assert_eq!(c.read_u64(ProcId(0), base.add(p * 2048)), p + 1);
        }
        c.messages()
    };
    // Both complete correctly; the tree uses the same order of messages
    // (N-1 arrivals + N-1 releases) but no single hot node.
    let central = run(false);
    let tree = run(true);
    assert!(tree > 0 && central > 0);
}
