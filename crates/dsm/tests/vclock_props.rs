//! Vector-clock algebra: the DSM's correctness leans on `merge` being a
//! join (commutative, associative, idempotent) and `covers` being the
//! matching partial order.

use cni_dsm::{ProcId, VClock};
use proptest::prelude::*;

fn arb_clock(n: usize) -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0u32..50, n).prop_map(VClock)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_clock(4), b in arb_clock(4)) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in arb_clock(4), b in arb_clock(4), c in arb_clock(4)) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent_and_covering(a in arb_clock(4), b in arb_clock(4)) {
        let mut m = a.clone();
        m.merge(&b);
        // Join covers both operands.
        prop_assert!(m.covers(&a));
        prop_assert!(m.covers(&b));
        // And is the least such clock: merging again changes nothing.
        let mut mm = m.clone();
        mm.merge(&a);
        mm.merge(&b);
        prop_assert_eq!(mm, m);
    }

    #[test]
    fn covers_is_a_partial_order(a in arb_clock(4), b in arb_clock(4), c in arb_clock(4)) {
        // Reflexive.
        prop_assert!(a.covers(&a));
        // Antisymmetric.
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        // Transitive.
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    #[test]
    fn raise_only_raises(mut a in arb_clock(4), p in 0u32..4, v in 0u32..100) {
        let before = a.get(ProcId(p));
        a.raise(ProcId(p), v);
        prop_assert_eq!(a.get(ProcId(p)), before.max(v));
    }

    #[test]
    fn component_sum_is_monotone_along_covers(a in arb_clock(4), b in arb_clock(4)) {
        // The causal-order linearisation in the diff-merge path sorts by
        // component sum; that is only valid because the sum is strictly
        // monotone along happens-before.
        if a.covers(&b) && a != b {
            let sa: u64 = a.0.iter().map(|&x| x as u64).sum();
            let sb: u64 = b.0.iter().map(|&x| x as u64).sum();
            prop_assert!(sa > sb);
        }
    }
}
