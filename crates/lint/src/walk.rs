//! Workspace traversal: find every first-party source file and run the
//! per-file analysis over it.
//!
//! First-party means the crates under `crates/` plus the umbrella
//! package's `src/`. The vendored `third_party/` stand-ins, `target/`,
//! and test-only trees (`tests/`, `benches/`, `examples/`) are out of
//! scope. Files are visited in sorted path order so the lint's own
//! output is deterministic.

use crate::rules::{analyze_sources, Finding, Suppression};
use std::path::{Path, PathBuf};

/// The aggregate result of a workspace run.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// Unsuppressed findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Every well-formed suppression encountered (the waiver table).
    pub suppressions: Vec<Suppression>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when the workspace is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Recursively collect `.rs` files under `dir` into `out`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// The source roots scanned, relative to the workspace root: each
/// crate's `src/` tree plus the umbrella package's.
fn source_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let src = d.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        roots.push(umbrella);
    }
    roots
}

/// Analyze the workspace rooted at `root`: read every first-party
/// source file, then run the whole set through the workspace engine in
/// one pass (the call graph needs all files before any rule runs).
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let mut files = Vec::new();
    for src_root in source_roots(root) {
        collect_rs(&src_root, &mut files);
    }
    files.sort();
    let mut inputs = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        inputs.push((rel, src));
    }
    report.files_scanned = inputs.len();
    let analysis = analyze_sources(&inputs);
    report.findings = analysis.findings;
    report.suppressions = analysis.suppressions;
    Ok(report)
}

/// Locate the workspace root: walk up from `start` until a directory
/// holding a `Cargo.toml` that declares `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
