//! Per-function fact extraction: the dataflow half of the engine.
//!
//! For every function body the scanner derives a [`FnFacts`] set:
//! where it can panic, where it reads host time or ambient randomness,
//! which calls it makes (with enough receiver/path context for
//! [`crate::callgraph`] to resolve them), how it uses hash-ordered
//! collections (tracked through locals, fields, parameters and
//! returns), and which per-node state it indexes by what. The rules in
//! [`crate::rules`] are then evaluated over facts, not raw tokens —
//! which is what makes them flow-sensitive (a keyed-only `HashMap`
//! produces no facts worth flagging) and interprocedural (facts
//! propagate over the call graph).
//!
//! The tracking is deliberately conservative: an operation on a
//! hash-ordered value that the scanner cannot prove order-free is
//! reported as unvetted rather than ignored.

use crate::lex::Token;
use crate::parse::{FileModel, FnDef};
use std::collections::{BTreeMap, BTreeSet};

/// One location-plus-description fact.
#[derive(Clone, Debug)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short description of what was found there.
    pub what: String,
}

/// How a hash-ordered collection value was used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HashUseKind {
    /// An operation that observes the hashed iteration order
    /// (`iter`, `keys`, `drain`, `for .. in`, ...).
    OrderObserving,
    /// An operation the scanner cannot prove order-free.
    Unvetted,
}

/// One use of a hash-ordered collection value.
#[derive(Clone, Debug)]
pub struct HashUse {
    /// Location and description.
    pub site: Site,
    /// The variable/field name the use was tracked from.
    pub name: String,
    /// What kind of use it was.
    pub kind: HashUseKind,
}

/// One call site, with the context needed to resolve it.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The called name (`ingest_frame`, `now`, ...).
    pub callee: String,
    /// For `Path::method(..)` calls, the last path segment before the
    /// method (`Instant::now` ⇒ `Instant`). For `self.method(..)`,
    /// the literal `"self"`. `None` for bare calls and field-receiver
    /// method calls.
    pub qual: Option<String>,
    /// For method calls on something other than a plain `self`
    /// receiver: the receiver's root name (`self.dsm[p].handle(..)` ⇒
    /// `dsm`; `w.entry(..)` ⇒ `w`).
    pub recv_root: Option<String>,
    /// True for `.method(..)` calls (any receiver, including `self`).
    pub is_method: bool,
    /// Hash-tainted names passed as arguments.
    pub hash_args: Vec<String>,
    /// Hash-tainted *parameters of the enclosing function* passed as
    /// arguments (the escape set for the param-leak fixpoint).
    pub hash_param_args: Vec<String>,
}

/// One indexing of a struct field (`recv.field[expr]`), kept for every
/// field so the shard-isolation rule can filter by its registry.
#[derive(Clone, Debug)]
pub struct IndexSite {
    /// 1-based line of the `[`.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The indexed field's name.
    pub field: String,
    /// Root identifiers of the index expression, resolved through
    /// simple local aliases (`let d = dst;` ⇒ `dst`).
    pub roots: Vec<String>,
    /// The index is a bare literal (`state[0]`).
    pub literal: bool,
    /// The index expression applies arithmetic to its roots (`p + 1`).
    pub arith: bool,
}

/// Everything the rules need to know about one function body.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// `.unwrap()` / `.expect(..)` sites.
    pub panic_unwraps: Vec<Site>,
    /// Panic-family macro invocations (`panic!`, `assert!`, ...).
    pub panic_macros: Vec<Site>,
    /// Range-slice indexing sites (`buf[a..b]`).
    pub range_slices: Vec<Site>,
    /// `Instant::now()` / `SystemTime::now()` reads.
    pub time_now: Vec<Site>,
    /// Any mention of a host-time type (for the stricter snapshot rule).
    pub time_idents: Vec<Site>,
    /// Ambient randomness sources.
    pub rng: Vec<Site>,
    /// Uses of hash-ordered collection values.
    pub hash_uses: Vec<HashUse>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Field index sites (for the shard-isolation rule).
    pub indexes: Vec<IndexSite>,
    /// The function observes the hashed order of one of its own
    /// hash-typed parameters (directly; the transitive closure is
    /// computed over the call graph).
    pub observes_hash_param: bool,
}

/// Identifiers that, invoked as macros, abort on the spot.
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Hash-map/set operations that cannot observe iteration order.
pub const KEYED_SAFE: &[&str] = &[
    "get",
    "get_mut",
    "get_key_value",
    "contains_key",
    "contains",
    "insert",
    "remove",
    "remove_entry",
    "entry",
    "len",
    "is_empty",
    "clear",
    "reserve",
    "shrink_to_fit",
    "with_capacity",
    "capacity",
    "new",
    "default",
    "extend",
];

/// Operations that observe the hashed iteration order.
pub const ORDER_OBSERVING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Wrapper hops that forward the underlying collection (taint flows
/// through them to the next chain segment or the assigned local).
pub const PASSTHROUGH: &[&str] = &[
    "read",
    "write",
    "lock",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
    "unwrap",
    "expect",
];

/// Ambient randomness identifiers.
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "RandomState", "OsRng"];

fn is_keyword(id: &str) -> bool {
    matches!(
        id,
        "fn" | "let"
            | "if"
            | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "impl"
            | "struct"
            | "enum"
            | "pub"
            | "use"
            | "mod"
            | "where"
            | "unsafe"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "dyn"
            | "box"
            | "const"
            | "static"
            | "type"
            | "trait"
    )
}

/// Scan context shared by the passes over one function body.
struct Scan<'a> {
    toks: &'a [Token],
    /// Body token range (inclusive of braces).
    lo: usize,
    hi: usize,
    /// Hash-tainted names visible in the body: parameters, locals, and
    /// (via a `self.` prefix) fields of the impl type.
    hash_names: BTreeSet<String>,
    /// Hash-typed fields reachable as `self.<name>` / `<recv>.<name>`.
    hash_fields: BTreeSet<String>,
    /// Hash-typed parameter names of this function.
    hash_params: BTreeSet<String>,
    /// Simple local aliases for index-root resolution.
    aliases: BTreeMap<String, String>,
    /// Token positions consumed as call arguments (classified at the
    /// call site, not re-reported as bare uses).
    arg_positions: BTreeSet<usize>,
}

/// Extract [`FnFacts`] for `f` in `file`. `hash_fields` lists every
/// hash-typed field name visible to this file (own structs plus any
/// same-named field in the workspace — conservative on collisions) and
/// `returns_hash_fns` the names of first-party functions returning
/// hash-ordered collections.
pub fn fn_facts(
    file: &FileModel,
    f: &FnDef,
    hash_fields: &BTreeSet<String>,
    returns_hash_fns: &BTreeSet<String>,
) -> FnFacts {
    let mut facts = FnFacts::default();
    let Some((lo, hi)) = f.body else {
        return facts;
    };
    let mut scan = Scan {
        toks: &file.toks,
        lo,
        hi,
        hash_names: f
            .params
            .iter()
            .filter(|p| p.hash_typed)
            .map(|p| p.name.clone())
            .collect(),
        hash_fields: hash_fields.clone(),
        hash_params: f
            .params
            .iter()
            .filter(|p| p.hash_typed)
            .map(|p| p.name.clone())
            .collect(),
        aliases: BTreeMap::new(),
        arg_positions: BTreeSet::new(),
    };
    collect_locals(&mut scan, returns_hash_fns);
    collect_calls(&mut scan, &mut facts);
    collect_sites(&mut scan, &mut facts);
    facts
}

/// Pass 1: `let` bindings — hash taint through ascriptions and
/// initializers, and simple aliases for index-root resolution.
fn collect_locals(scan: &mut Scan<'_>, returns_hash_fns: &BTreeSet<String>) {
    let toks = scan.toks;
    let mut i = scan.lo;
    while i <= scan.hi {
        if toks[i].ident() == Some("let") {
            let mut j = i + 1;
            while toks.get(j).and_then(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(|t| t.ident()) else {
                i += 1;
                continue;
            };
            let name = name.to_string();
            let mut k = j + 1;
            let mut hash = false;
            // Type ascription up to `=` or `;`.
            if toks.get(k).is_some_and(|t| t.is_punct(':')) {
                let ty_start = k + 1;
                let mut depth = 0i32;
                while k <= scan.hi {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
                        break;
                    }
                    k += 1;
                }
                hash |= toks[ty_start..k.min(scan.hi + 1)]
                    .iter()
                    .any(|t| matches!(t.ident(), Some("HashMap" | "HashSet")));
            }
            // Initializer chain.
            if toks.get(k).is_some_and(|t| t.is_punct('=')) {
                let mut m = k + 1;
                while toks.get(m).is_some_and(|t| t.is_punct('&'))
                    || toks.get(m).and_then(|t| t.ident()) == Some("mut")
                {
                    m += 1;
                }
                if let Some(first) = toks.get(m).and_then(|t| t.ident()) {
                    if matches!(first, "HashMap" | "HashSet")
                        || (returns_hash_fns.contains(first)
                            && toks.get(m + 1).is_some_and(|t| t.is_punct('(')))
                    {
                        hash = true;
                    } else {
                        // `let w = self.pages.write();` / `let d = dst as usize;`
                        let (root, stop) = chain_root(scan, m);
                        if let Some(root) = &root {
                            if scan.is_hash_name(root) && chain_is_passthrough(scan, m, stop) {
                                hash = true;
                            }
                            // Plain alias: `let d = dst;` / `let d = dst as usize;`
                            if is_plain_alias(toks, m, stop, scan.hi) {
                                let resolved = scan
                                    .aliases
                                    .get(root)
                                    .cloned()
                                    .unwrap_or_else(|| root.clone());
                                scan.aliases.insert(name.clone(), resolved);
                            }
                        }
                    }
                }
            }
            if hash {
                scan.hash_names.insert(name);
            }
            i = k;
            continue;
        }
        i += 1;
    }
}

/// The root name of the expression chain starting at `m` (`self.pages`
/// ⇒ `pages`; `dst` ⇒ `dst`), and the index just past the leading
/// name tokens.
fn chain_root(scan: &Scan<'_>, m: usize) -> (Option<String>, usize) {
    let toks = scan.toks;
    match toks.get(m).and_then(|t| t.ident()) {
        Some("self") => {
            if toks.get(m + 1).is_some_and(|t| t.is_punct('.')) {
                if let Some(field) = toks.get(m + 2).and_then(|t| t.ident()) {
                    return (Some(field.to_string()), m + 3);
                }
            }
            (None, m + 1)
        }
        Some(id) if !is_keyword(id) => (Some(id.to_string()), m + 1),
        _ => (None, m),
    }
}

/// Is the initializer starting at `m` (name ending at `stop`) a plain
/// alias — just the name, optionally with an `as <int>` cast?
fn is_plain_alias(toks: &[Token], m: usize, stop: usize, hi: usize) -> bool {
    if toks.get(m).and_then(|t| t.ident()) == Some("self") {
        return false;
    }
    let mut k = stop;
    if toks.get(k).and_then(|t| t.ident()) == Some("as") {
        k += 1;
        if toks.get(k).and_then(|t| t.ident()).is_some() {
            k += 1;
        }
    }
    k <= hi && toks.get(k).is_some_and(|t| t.is_punct(';'))
}

/// From `stop` (just past the chain's leading name) follow `.method(..)`
/// segments; true when every hop is a passthrough up to the terminating
/// `;`/`=` — i.e. the assigned value is still the tainted collection.
fn chain_is_passthrough(scan: &Scan<'_>, _m: usize, mut k: usize) -> bool {
    let toks = scan.toks;
    loop {
        if !toks.get(k).is_some_and(|t| t.is_punct('.')) {
            // End of chain: fine if the statement ends here.
            return toks
                .get(k)
                .is_some_and(|t| t.is_punct(';') || t.is_punct('='));
        }
        let Some(m_name) = toks.get(k + 1).and_then(|t| t.ident()) else {
            return false;
        };
        if !PASSTHROUGH.contains(&m_name) {
            return false;
        }
        k += 2;
        if toks.get(k).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0i32;
            while k < toks.len() {
                if toks[k].is_punct('(') {
                    depth += 1;
                } else if toks[k].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
    }
}

impl Scan<'_> {
    fn is_hash_name(&self, name: &str) -> bool {
        self.hash_names.contains(name) || self.hash_fields.contains(name)
    }
}

/// Pass 2: call sites, with receiver/path context and hash-arg roots.
fn collect_calls(scan: &mut Scan<'_>, facts: &mut FnFacts) {
    let toks = scan.toks;
    for i in scan.lo..=scan.hi {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if is_keyword(name) || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // `name!(..)` macros and `fn name(..)` definitions are not calls.
        if i > 0 && (toks[i - 1].ident() == Some("fn") || toks[i - 1].is_punct('!')) {
            continue;
        }
        let (qual, recv_root, is_method) = call_context(toks, i);
        let (hash_args, hash_param_args, arg_positions) = call_args(scan, i + 1);
        scan.arg_positions.extend(arg_positions);
        facts.calls.push(CallSite {
            line: toks[i].line,
            col: toks[i].col,
            callee: name.to_string(),
            qual,
            recv_root,
            is_method,
            hash_args,
            hash_param_args,
        });
    }
}

/// Classify the tokens before the callee ident at `i`.
fn call_context(toks: &[Token], i: usize) -> (Option<String>, Option<String>, bool) {
    if i >= 1 && toks[i - 1].is_punct('.') {
        // Method call: walk the receiver back.
        let mut j = i - 2;
        // Skip a balanced `[..]` index segment.
        if toks.get(j).is_some_and(|t| t.is_punct(']')) {
            let mut depth = 0i32;
            loop {
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return (None, None, true);
                }
                j -= 1;
            }
            if j == 0 {
                return (None, None, true);
            }
            j -= 1;
        }
        let Some(recv) = toks.get(j).and_then(|t| t.ident()) else {
            return (None, None, true);
        };
        if recv == "self" {
            return (Some("self".to_string()), None, true);
        }
        // `self.field.m(..)` / `self.field[..].m(..)`: root is the field.
        if j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].ident() == Some("self") {
            return (None, Some(recv.to_string()), true);
        }
        (None, Some(recv.to_string()), true)
    } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        // `Path::method(..)`: the segment right before the `::`.
        let qual = toks.get(i.wrapping_sub(3)).and_then(|t| t.ident());
        (qual.map(String::from), None, false)
    } else {
        (None, None, false)
    }
}

/// Scan the argument list opening at `open == '('`: hash-tainted arg
/// roots, the subset that are parameters, and consumed token positions.
fn call_args(scan: &Scan<'_>, open: usize) -> (Vec<String>, Vec<String>, Vec<usize>) {
    let toks = scan.toks;
    let mut hash_args = Vec::new();
    let mut hash_param_args = Vec::new();
    let mut positions = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    let mut arg_lead = true; // at the start of an argument expression
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            arg_lead = true;
            j += 1;
            continue;
        } else if depth == 1 && arg_lead {
            if t.is_punct('&') || t.ident() == Some("mut") {
                j += 1;
                continue;
            }
            let (root, _stop) = chain_root_at(toks, j);
            if let Some(root) = root {
                if scan.is_hash_name(&root) {
                    hash_args.push(root.clone());
                    positions.push(j);
                    if toks[j].ident() == Some("self") {
                        positions.push(j + 2);
                    }
                    if scan.hash_params.contains(&root) {
                        hash_param_args.push(root);
                    }
                }
            }
            arg_lead = false;
        }
        j += 1;
    }
    (hash_args, hash_param_args, positions)
}

/// `chain_root` without a `Scan` borrow.
fn chain_root_at(toks: &[Token], m: usize) -> (Option<String>, usize) {
    match toks.get(m).and_then(|t| t.ident()) {
        Some("self") => {
            if toks.get(m + 1).is_some_and(|t| t.is_punct('.')) {
                if let Some(field) = toks.get(m + 2).and_then(|t| t.ident()) {
                    return (Some(field.to_string()), m + 3);
                }
            }
            (None, m + 1)
        }
        Some(id) if !is_keyword(id) => (Some(id.to_string()), m + 1),
        _ => (None, m),
    }
}

/// Pass 3: panic, host-time, randomness, hash-use, and index sites.
fn collect_sites(scan: &mut Scan<'_>, facts: &mut FnFacts) {
    let toks = scan.toks;
    let mut i = scan.lo;
    while i <= scan.hi {
        let t = &toks[i];
        let Some(id) = t.ident() else {
            // Range-slice indexing: `expr[a..b]`.
            if t.is_punct('[')
                && i > 0
                && (toks[i - 1].ident().is_some()
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'))
                && index_has_range(toks, i)
            {
                facts.range_slices.push(Site {
                    line: t.line,
                    col: t.col,
                    what: "range-slice indexing (panics on short input)".to_string(),
                });
            }
            i += 1;
            continue;
        };
        match id {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                facts.panic_unwraps.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("`.{id}()`"),
                });
            }
            m if PANIC_MACROS.contains(&m) && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                facts.panic_macros.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("`{m}!`"),
                });
            }
            "Instant" | "SystemTime" | "UNIX_EPOCH" => {
                facts.time_idents.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("host-time type `{id}`"),
                });
                if follows_path_call(toks, i, "now") {
                    facts.time_now.push(Site {
                        line: t.line,
                        col: t.col,
                        what: format!("`{id}::now()`"),
                    });
                }
            }
            r if RNG_IDENTS.contains(&r) => {
                facts.rng.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("ambient randomness source `{r}`"),
                });
            }
            "self" if toks.get(i + 1).is_some_and(|n| n.is_punct('.')) => {
                // `self.field[..]` index sites and `self.field` hash uses.
                if let Some(field) = toks.get(i + 2).and_then(|n| n.ident()) {
                    if toks.get(i + 3).is_some_and(|n| n.is_punct('[')) {
                        record_index(scan, facts, field, i + 3);
                    }
                    if scan.hash_fields.contains(field) && !scan.arg_positions.contains(&(i + 2)) {
                        classify_hash_use(scan, facts, field, i + 2, i + 3);
                    }
                    i += 3;
                    continue;
                }
            }
            name if scan.hash_names.contains(name) => {
                // A bare tainted local/param: skip field positions
                // (`x.name`), declarations (`name:`), and call-arg
                // positions already classified at the call site.
                let preceded_by_dot = i > 0 && toks[i - 1].is_punct('.');
                let declares = toks.get(i + 1).is_some_and(|n| n.is_punct(':'));
                if !preceded_by_dot && !declares && !scan.arg_positions.contains(&i) {
                    classify_hash_use(scan, facts, name, i, i + 1);
                }
                // `recv.field[..]` for non-self receivers is still an
                // index site when the *field* position matches below.
            }
            _ => {}
        }
        // Non-self receivers: `world.cpus[..]`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('.')) && id != "self" && !is_keyword(id) {
            if let Some(field) = toks.get(i + 2).and_then(|n| n.ident()) {
                if toks.get(i + 3).is_some_and(|n| n.is_punct('[')) {
                    record_index(scan, facts, field, i + 3);
                }
            }
        }
        i += 1;
    }
}

/// Record the `field[..]` index opening at `toks[open] == '['`.
fn record_index(scan: &Scan<'_>, facts: &mut FnFacts, field: &str, open: usize) {
    let toks = scan.toks;
    let mut roots = Vec::new();
    let mut arith = false;
    let mut saw_number = false;
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if let Some(id) = t.ident() {
            if !matches!(
                id,
                "as" | "usize" | "u32" | "u64" | "u16" | "u8" | "i32" | "i64"
            ) && !is_keyword(id)
            {
                // Skip tuple/field projections after a dot (`owner.0`).
                let after_dot = j > open + 1 && toks[j - 1].is_punct('.');
                if !after_dot {
                    let root = scan
                        .aliases
                        .get(id)
                        .cloned()
                        .unwrap_or_else(|| id.to_string());
                    if !roots.contains(&root) {
                        roots.push(root);
                    }
                }
            }
        } else if matches!(t.kind, crate::lex::TokKind::Number) {
            saw_number = true;
        } else if depth == 1
            && (t.is_punct('+')
                || t.is_punct('-')
                || t.is_punct('*')
                || t.is_punct('%')
                || t.is_punct('^'))
        {
            arith = true;
        }
        j += 1;
    }
    facts.indexes.push(IndexSite {
        line: toks[open].line,
        col: toks[open].col,
        field: field.to_string(),
        literal: roots.is_empty() && saw_number,
        arith,
        roots,
    });
}

/// Classify the use of hash-tainted `name` whose chain continues at
/// `next` (the token right after the name). `at` is the name token.
fn classify_hash_use(scan: &Scan<'_>, facts: &mut FnFacts, name: &str, at: usize, next: usize) {
    let toks = scan.toks;
    // `for x in name` / `for x in &name` / `for x in &mut name`.
    let mut back = at;
    while back > 0 && (toks[back - 1].is_punct('&') || toks[back - 1].ident() == Some("mut")) {
        back -= 1;
    }
    if back > 0 && toks[back - 1].ident() == Some("in") {
        push_hash_use(
            facts,
            name,
            toks[at].line,
            toks[at].col,
            HashUseKind::OrderObserving,
            "`for .. in` iteration",
        );
        return;
    }
    // Follow the method/index chain.
    let mut k = next;
    loop {
        if toks.get(k).is_some_and(|t| t.is_punct('[')) {
            // Keyed index: fine, and the chain result is a value.
            return;
        }
        if toks.get(k).is_some_and(|t| t.is_punct('='))
            && !toks.get(k + 1).is_some_and(|t| t.is_punct('='))
        {
            // Assignment target: fine.
            return;
        }
        if !toks.get(k).is_some_and(|t| t.is_punct('.')) {
            // Statement end: a `let` destination is tracked by the
            // local pass, and a tail expression is covered by the
            // function's declared (hash-mentioning) return type.
            if toks
                .get(k)
                .is_some_and(|t| t.is_punct(';') || t.is_punct('}'))
            {
                return;
            }
            // Any other bare position (struct literal, tuple, cast):
            // the collection escapes where the scanner can no longer
            // follow it.
            push_hash_use(
                facts,
                name,
                toks[at].line,
                toks[at].col,
                HashUseKind::Unvetted,
                "hash-ordered value escapes into an untracked position",
            );
            return;
        }
        let Some(m) = toks.get(k + 1).and_then(|t| t.ident()) else {
            // `.0` tuple projection or similar: treat as escape-free.
            return;
        };
        if ORDER_OBSERVING.contains(&m) {
            push_hash_use(
                facts,
                name,
                toks[k + 1].line,
                toks[k + 1].col,
                HashUseKind::OrderObserving,
                &format!("`.{m}()` observes hashed iteration order"),
            );
            return;
        }
        if KEYED_SAFE.contains(&m) {
            return;
        }
        if PASSTHROUGH.contains(&m) {
            // Skip the method's argument list and continue the chain.
            k += 2;
            if toks.get(k).is_some_and(|t| t.is_punct('(')) {
                let mut depth = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct('(') {
                        depth += 1;
                    } else if toks[k].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            continue;
        }
        push_hash_use(
            facts,
            name,
            toks[k + 1].line,
            toks[k + 1].col,
            HashUseKind::Unvetted,
            &format!("`.{m}()` is not on the keyed-safe operation list"),
        );
        return;
    }
}

fn push_hash_use(
    facts: &mut FnFacts,
    name: &str,
    line: u32,
    col: u32,
    kind: HashUseKind,
    what: &str,
) {
    // One fact per (name, line): a chain can hit several detectors.
    if facts
        .hash_uses
        .iter()
        .any(|u| u.name == name && u.site.line == line)
    {
        return;
    }
    facts.hash_uses.push(HashUse {
        site: Site {
            line,
            col,
            what: what.to_string(),
        },
        name: name.to_string(),
        kind,
    });
}

/// Does `toks[i]` (an ident) begin `Ident::method(`?
pub fn follows_path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).and_then(|t| t.ident()) == Some(method)
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Does the index expression opening at `toks[open] == '['` contain a
/// `..` at bracket depth 1 (i.e. is it a range slice)?
pub fn index_has_range(toks: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if depth == 1 && t.is_punct('.') && toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
        {
            return true;
        }
        j += 1;
    }
    false
}

/// Mark `observes_hash_param` when any order-observing or unvetted use
/// tracks back to one of the function's own hash-typed parameters.
pub fn finalize_param_observation(facts: &mut FnFacts, f: &FnDef) {
    let params: BTreeSet<&str> = f
        .params
        .iter()
        .filter(|p| p.hash_typed)
        .map(|p| p.name.as_str())
        .collect();
    facts.observes_hash_param = facts
        .hash_uses
        .iter()
        .any(|u| params.contains(u.name.as_str()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn facts_of(src: &str) -> FnFacts {
        let m = parse_file("crates/dsm/src/fixture.rs", src);
        let qual = m.fns[0].qual.clone();
        let hash_fields: BTreeSet<String> = m
            .fields
            .iter()
            .filter(|f| f.hash_typed && Some(&f.owner) == qual.as_ref())
            .map(|f| f.name.clone())
            .collect();
        let returns_hash: BTreeSet<String> = m
            .fns
            .iter()
            .filter(|f| f.returns_hash)
            .map(|f| f.name.clone())
            .collect();
        let mut out = fn_facts(&m, &m.fns[0], &hash_fields, &returns_hash);
        finalize_param_observation(&mut out, &m.fns[0]);
        out
    }

    #[test]
    fn keyed_ops_produce_no_hash_facts() {
        let f = facts_of(
            "fn keyed(m: &mut HashMap<u64, u32>) {\n\
             m.insert(1, 2);\n\
             let _ = m.get(&1);\n\
             if m.contains_key(&1) { m.remove(&1); }\n\
             }",
        );
        assert!(f.hash_uses.is_empty(), "{:?}", f.hash_uses);
        assert!(!f.observes_hash_param);
    }

    #[test]
    fn iteration_is_order_observing() {
        let f = facts_of(
            "fn leak(m: &HashMap<u64, u32>) -> u64 {\n\
             m.iter().map(|(k, _)| k).sum()\n\
             }",
        );
        assert_eq!(f.hash_uses.len(), 1);
        assert_eq!(f.hash_uses[0].kind, HashUseKind::OrderObserving);
        assert!(f.observes_hash_param);
    }

    #[test]
    fn for_in_is_order_observing() {
        let f = facts_of(
            "fn leak(m: &HashMap<u64, u32>) {\n\
             for (k, v) in m { let _ = (k, v); }\n\
             }",
        );
        assert_eq!(f.hash_uses.len(), 1);
        assert_eq!(f.hash_uses[0].kind, HashUseKind::OrderObserving);
    }

    #[test]
    fn taint_flows_through_locals_and_guards() {
        let f = facts_of(
            "struct S { pages: RwLock<HashMap<u32, u32>> }\n\
             impl S {\n\
             fn touch(&self) {\n\
             let w = self.pages.write();\n\
             for x in w.keys() { let _ = x; }\n\
             }\n\
             }",
        );
        assert_eq!(f.hash_uses.len(), 1, "{:?}", f.hash_uses);
        assert_eq!(f.hash_uses[0].kind, HashUseKind::OrderObserving);
        assert_eq!(f.hash_uses[0].name, "w");
    }

    #[test]
    fn hash_args_are_recorded_on_calls() {
        let f = facts_of(
            "fn pass(m: &HashMap<u64, u32>) {\n\
             helper(m);\n\
             }",
        );
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].hash_args, vec!["m"]);
        assert_eq!(f.calls[0].hash_param_args, vec!["m"]);
        assert!(f.hash_uses.is_empty(), "{:?}", f.hash_uses);
    }

    #[test]
    fn panic_and_time_sites_are_collected() {
        let f = facts_of(
            "fn f(x: Option<u32>) {\n\
             let _ = x.unwrap();\n\
             let _t = Instant::now();\n\
             panic!(\"boom\");\n\
             }",
        );
        assert_eq!(f.panic_unwraps.len(), 1);
        assert_eq!(f.time_now.len(), 1);
        assert_eq!(f.panic_macros.len(), 1);
    }

    #[test]
    fn index_sites_resolve_aliases() {
        let f = facts_of(
            "fn f(&mut self, dst: usize) {\n\
             let d = dst;\n\
             self.cpus[d].run();\n\
             self.nics[dst as usize].poke();\n\
             self.ring_hw[0] = 1;\n\
             self.cpus[dst + 1].run();\n\
             }",
        );
        assert_eq!(f.indexes.len(), 4);
        assert_eq!(f.indexes[0].roots, vec!["dst"]);
        assert_eq!(f.indexes[1].roots, vec!["dst"]);
        assert!(f.indexes[2].literal);
        assert!(f.indexes[3].arith);
    }

    #[test]
    fn method_calls_carry_receiver_context() {
        let f = facts_of(
            "fn f(&mut self, p: usize) {\n\
             self.step(p);\n\
             self.dsm[p].handle_msg(p);\n\
             free_fn(p);\n\
             Instant::now();\n\
             }",
        );
        let kinds: Vec<_> = f
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.qual.as_deref(), c.recv_root.as_deref()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("step", Some("self"), None),
                ("handle_msg", None, Some("dsm")),
                ("free_fn", None, None),
                ("now", Some("Instant"), None),
            ]
        );
    }
}
