//! Findings baseline: CI fails only on *new* findings.
//!
//! A baseline is the committed set of accepted findings, keyed by
//! `(rule slug, path, message)` — deliberately **not** by line, so pure
//! code motion (imports added above, functions reordered) never
//! invalidates it. `--write-baseline` snapshots the current findings;
//! `--baseline <file>` filters them out of `--check`. On a clean
//! workspace the committed baseline is the empty set, and stays that
//! way: the file exists so the CI diff step has a fixed anchor, not as
//! a parking lot for violations.
//!
//! The format is JSON (an object with a `schema` field and an
//! `entries` array) written and parsed by hand — the lint keeps its
//! zero-dependency rule even for its own state files.

use crate::rules::Finding;
use std::collections::BTreeSet;

/// A parsed baseline: the set of accepted finding keys.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Does the baseline accept this finding?
    pub fn accepts(&self, f: &Finding) -> bool {
        self.keys
            .contains(&(f.rule.slug().to_string(), f.path.clone(), f.message.clone()))
    }

    /// The findings in `all` that the baseline does not accept.
    pub fn new_findings<'a>(&self, all: &'a [Finding]) -> Vec<&'a Finding> {
        all.iter().filter(|f| !self.accepts(f)).collect()
    }

    /// Number of accepted keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Serialize the given findings as a baseline file.
pub fn render(findings: &[Finding]) -> String {
    let mut keys: BTreeSet<(String, String, String)> = BTreeSet::new();
    for f in findings {
        keys.insert((f.rule.slug().to_string(), f.path.clone(), f.message.clone()));
    }
    let mut out =
        String::from("{\n  \"schema\": 1,\n  \"tool\": \"cni-lint\",\n  \"entries\": [\n");
    let n = keys.len();
    for (i, (slug, path, message)) in keys.into_iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"message\": \"{}\"}}{comma}\n",
            esc(&slug),
            esc(&path),
            esc(&message)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a baseline file. Tolerant of whitespace; rejects files whose
/// `schema` is missing or unknown.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut schema_ok = false;
    let mut baseline = Baseline::default();
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "schema" => {
                let v = p.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline schema {v}"));
                }
                schema_ok = true;
            }
            "tool" => {
                let _ = p.string()?;
            }
            "entries" => {
                p.expect(b'[')?;
                loop {
                    p.ws();
                    if p.eat(b']') {
                        break;
                    }
                    let (mut rule, mut path, mut message) =
                        (String::new(), String::new(), String::new());
                    p.expect(b'{')?;
                    loop {
                        p.ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let k = p.string()?;
                        p.ws();
                        p.expect(b':')?;
                        p.ws();
                        let v = p.string()?;
                        match k.as_str() {
                            "rule" => rule = v,
                            "path" => path = v,
                            "message" => message = v,
                            other => return Err(format!("unknown entry key `{other}`")),
                        }
                        p.ws();
                        p.eat(b',');
                    }
                    if rule.is_empty() || path.is_empty() {
                        return Err("baseline entry missing rule or path".to_string());
                    }
                    baseline.keys.insert((rule, path, message));
                    p.ws();
                    p.eat(b',');
                }
            }
            other => return Err(format!("unknown baseline key `{other}`")),
        }
        p.ws();
        p.eat(b',');
    }
    if !schema_ok {
        return Err("baseline file has no schema field".to_string());
    }
    Ok(baseline)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of baseline file",
                c as char, self.i
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad number in baseline".to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string in baseline".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err("bad escape in baseline string".to_string()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unmodified.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .b
                        .get(self.i..self.i + len)
                        .ok_or("truncated UTF-8 in baseline")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad UTF-8")?);
                    self.i += len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(slug_rule: Rule, path: &str, msg: &str) -> Finding {
        Finding {
            rule: slug_rule,
            path: path.to_string(),
            line: 10,
            col: 3,
            message: msg.to_string(),
        }
    }

    #[test]
    fn round_trip_ignores_lines() {
        let f = finding(
            Rule::NondetMap,
            "crates/dsm/src/space.rs",
            "iter on `pages`",
        );
        let text = render(std::slice::from_ref(&f));
        let b = parse(&text).unwrap();
        let mut moved = f.clone();
        moved.line = 999;
        assert!(b.accepts(&moved));
        let other = finding(Rule::NondetMap, "crates/dsm/src/space.rs", "other message");
        assert_eq!(b.new_findings(&[f, other.clone()]).len(), 1);
        assert_eq!(b.new_findings(&[other])[0].message, "other message");
    }

    #[test]
    fn empty_baseline_accepts_nothing() {
        let text = render(&[]);
        let b = parse(&text).unwrap();
        assert!(b.is_empty());
        assert!(!b.accepts(&finding(Rule::HostTime, "src/lib.rs", "m")));
    }

    #[test]
    fn bad_schema_is_rejected() {
        assert!(parse("{\"schema\": 9, \"entries\": []}").is_err());
        assert!(parse("{\"entries\": []}").is_err());
        assert!(parse("not json").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let f = finding(
            Rule::NondetMap,
            "src/a.rs",
            "msg with \"quotes\" and\nnewline",
        );
        let b = parse(&render(std::slice::from_ref(&f))).unwrap();
        assert!(b.accepts(&f));
        assert_eq!(b.len(), 1);
    }
}
