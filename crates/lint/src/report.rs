//! Diagnostic rendering: rustc-style text and `--json` machine output.
//!
//! The JSON writer is hand-rolled (string escaping only) so the lint
//! has zero dependencies — it must stay buildable even when the rest of
//! the workspace is mid-refactor.

use crate::rules::{Finding, Rule};
use crate::walk::WorkspaceReport;
use std::fmt::Write as _;

/// Render one finding rustc-style.
fn render_finding(out: &mut String, f: &Finding) {
    let _ = writeln!(
        out,
        "error[{}/{}]: {}",
        f.rule.id(),
        f.rule.slug(),
        f.message
    );
    let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
    let _ = writeln!(out, "   = help: {}", f.rule.help());
}

/// Render the full human-readable report: findings, the suppression
/// summary table (waivers stay visible), and a one-line verdict.
pub fn render_text(r: &WorkspaceReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        render_finding(&mut out, f);
        out.push('\n');
    }
    if !r.suppressions.is_empty() {
        let _ = writeln!(out, "suppressions ({}):", r.suppressions.len());
        let width = r
            .suppressions
            .iter()
            .map(|s| s.path.len() + 6)
            .max()
            .unwrap_or(20);
        for s in &r.suppressions {
            let loc = format!("{}:{}", s.path, s.line);
            let _ = writeln!(
                out,
                "  {loc:<width$}  {:<18} {}",
                s.rule.slug(),
                s.justification
            );
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} finding(s), {} suppression(s)",
        r.files_scanned,
        r.findings.len(),
        r.suppressions.len()
    );
    if r.is_clean() {
        let _ = writeln!(out, "determinism contract: clean");
    } else {
        let by_rule = count_by_rule(r);
        let _ = writeln!(out, "determinism contract: VIOLATED ({by_rule})");
    }
    out
}

fn count_by_rule(r: &WorkspaceReport) -> String {
    let mut parts = Vec::new();
    for rule in Rule::all() {
        let n = r.findings.iter().filter(|f| f.rule == *rule).count();
        if n > 0 {
            parts.push(format!("{}: {n}", rule.id()));
        }
    }
    parts.join(", ")
}

/// Escape `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable `--json` report: a schema-versioned
/// envelope (like `RunReport`) so CI tooling can detect format drift.
pub fn render_json(r: &WorkspaceReport) -> String {
    let mut out = String::from("{\n  \"schema\": 2,\n");
    let _ = writeln!(
        out,
        "  \"tool\": {{\"name\": \"cni-lint\", \"version\": \"{}\"}},",
        env!("CARGO_PKG_VERSION")
    );
    let _ = writeln!(out, "  \"files_scanned\": {},", r.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", r.is_clean());
    out.push_str("  \"findings\": [\n");
    for (i, f) in r.findings.iter().enumerate() {
        let comma = if i + 1 < r.findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"slug\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"col\": {}, \"message\": \"{}\"}}{comma}",
            f.rule.id(),
            f.rule.slug(),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        );
    }
    out.push_str("  ],\n  \"suppressions\": [\n");
    for (i, s) in r.suppressions.iter().enumerate() {
        let comma = if i + 1 < r.suppressions.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"slug\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"justification\": \"{}\", \"used\": {}}}{comma}",
            s.rule.id(),
            s.rule.slug(),
            json_escape(&s.path),
            s.line,
            json_escape(&s.justification),
            s.used
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the report as minimal SARIF 2.1.0 — enough for code-scanning
/// UIs and diff tooling: one run, one driver, a rule table, and one
/// result per finding with a physical location.
pub fn render_sarif(r: &WorkspaceReport) -> String {
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"cni-lint\",\n",
    );
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        env!("CARGO_PKG_VERSION")
    );
    out.push_str("          \"rules\": [\n");
    let rules = Rule::all();
    for (i, rule) in rules.iter().enumerate() {
        let comma = if i + 1 < rules.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": \
             {{\"text\": \"{}\"}}}}{comma}",
            rule.id(),
            rule.slug(),
            json_escape(rule.help())
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in r.findings.iter().enumerate() {
        let comma = if i + 1 < r.findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": \
             {}}}}}}}]}}{comma}",
            f.rule.id(),
            json_escape(&f.message),
            json_escape(&f.path),
            f.line,
            f.col
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Render the `--explain <rule>` text for a rule named by id (`P1`) or
/// slug (`panic-path`). `None` when the name matches no rule.
pub fn render_explain(name: &str) -> Option<String> {
    let want = name.to_ascii_lowercase();
    let rule = Rule::all()
        .iter()
        .find(|r| r.id().to_ascii_lowercase() == want || r.slug() == want)?;
    Some(format!(
        "{} ({})\n\n{}\n\nhelp: {}\n",
        rule.id(),
        rule.slug(),
        rule.explain(),
        rule.help()
    ))
}
