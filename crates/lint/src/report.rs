//! Diagnostic rendering: rustc-style text and `--json` machine output.
//!
//! The JSON writer is hand-rolled (string escaping only) so the lint
//! has zero dependencies — it must stay buildable even when the rest of
//! the workspace is mid-refactor.

use crate::rules::{Finding, Rule};
use crate::walk::WorkspaceReport;
use std::fmt::Write as _;

/// Render one finding rustc-style.
fn render_finding(out: &mut String, f: &Finding) {
    let _ = writeln!(
        out,
        "error[{}/{}]: {}",
        f.rule.id(),
        f.rule.slug(),
        f.message
    );
    let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
    let _ = writeln!(out, "   = help: {}", f.rule.help());
}

/// Render the full human-readable report: findings, the suppression
/// summary table (waivers stay visible), and a one-line verdict.
pub fn render_text(r: &WorkspaceReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        render_finding(&mut out, f);
        out.push('\n');
    }
    if !r.suppressions.is_empty() {
        let _ = writeln!(out, "suppressions ({}):", r.suppressions.len());
        let width = r
            .suppressions
            .iter()
            .map(|s| s.path.len() + 6)
            .max()
            .unwrap_or(20);
        for s in &r.suppressions {
            let loc = format!("{}:{}", s.path, s.line);
            let _ = writeln!(
                out,
                "  {loc:<width$}  {:<18} {}",
                s.rule.slug(),
                s.justification
            );
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} finding(s), {} suppression(s)",
        r.files_scanned,
        r.findings.len(),
        r.suppressions.len()
    );
    if r.is_clean() {
        let _ = writeln!(out, "determinism contract: clean");
    } else {
        let by_rule = count_by_rule(r);
        let _ = writeln!(out, "determinism contract: VIOLATED ({by_rule})");
    }
    out
}

fn count_by_rule(r: &WorkspaceReport) -> String {
    let rules = [
        Rule::NondetMap,
        Rule::HostTime,
        Rule::AmbientRng,
        Rule::PanicPath,
        Rule::UnsafeNoSafety,
        Rule::BadSuppression,
        Rule::UnusedSuppression,
    ];
    let mut parts = Vec::new();
    for rule in rules {
        let n = r.findings.iter().filter(|f| f.rule == rule).count();
        if n > 0 {
            parts.push(format!("{}: {n}", rule.id()));
        }
    }
    parts.join(", ")
}

/// Escape `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable `--json` report.
pub fn render_json(r: &WorkspaceReport) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", r.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", r.is_clean());
    out.push_str("  \"findings\": [\n");
    for (i, f) in r.findings.iter().enumerate() {
        let comma = if i + 1 < r.findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"slug\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"col\": {}, \"message\": \"{}\"}}{comma}",
            f.rule.id(),
            f.rule.slug(),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        );
    }
    out.push_str("  ],\n  \"suppressions\": [\n");
    for (i, s) in r.suppressions.iter().enumerate() {
        let comma = if i + 1 < r.suppressions.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"slug\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"justification\": \"{}\", \"used\": {}}}{comma}",
            s.rule.id(),
            s.rule.slug(),
            json_escape(&s.path),
            s.line,
            json_escape(&s.justification),
            s.used
        );
    }
    out.push_str("  ]\n}\n");
    out
}
