//! A small item-level Rust parser on top of [`crate::lex`].
//!
//! The analysis engine needs *structure*, not full syntax: which
//! functions exist (and inside which `impl` block), where their bodies
//! begin and end in the token stream, what their parameters and return
//! types look like, and which struct fields carry hash-ordered
//! collection types. Everything else — expressions, statements, calls —
//! is recovered per-function by [`crate::taint`]'s body scanner.
//!
//! Like the lexer, the parser is forgiving by construction: it never
//! panics on code it does not understand, it just records less. A lint
//! must keep working while the code it audits is mid-refactor.

use crate::lex::{tokenize, Comment, Token};

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// The binding name (patterns contribute their first identifier).
    pub name: String,
    /// Whether the declared type mentions `HashMap`/`HashSet`.
    pub hash_typed: bool,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` type the function is defined on, if any
    /// (`impl World { fn dispatch.. }` ⇒ `Some("World")`).
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Token-index range of the body: `(open_brace, close_brace)`
    /// inclusive. `None` for bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// 1-based first line of the item (the `fn` keyword's line).
    pub start_line: u32,
    /// 1-based last line of the body (or the signature, if bodiless).
    pub end_line: u32,
    /// Declared parameters, in order. `self` receivers are not listed.
    pub params: Vec<Param>,
    /// Whether the return type mentions `HashMap`/`HashSet`.
    pub returns_hash: bool,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// One struct field whose declared type is relevant to the analysis.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// The struct the field belongs to.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Whether the declared type mentions `HashMap`/`HashSet`
    /// (including through wrappers: `RwLock<HashMap<..>>` counts).
    pub hash_typed: bool,
}

/// The parsed model of one source file.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The token stream (owned here; every later pass borrows it).
    pub toks: Vec<Token>,
    /// All comments, for suppression and `SAFETY:` matching.
    pub comments: Vec<Comment>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
    /// Hash-typed struct fields, for `self.field` taint resolution.
    pub fields: Vec<FieldDef>,
    /// Line ranges (inclusive) of `#[cfg(test)]`/`#[test]`-gated items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileModel {
    /// The function whose body contains token index `i`, if any.
    /// Nested items resolve to the innermost enclosing function.
    pub fn fn_at(&self, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (k, f) in self.fns.iter().enumerate() {
            if let Some((a, b)) = f.body {
                if i >= a && i <= b {
                    let tighter = match best {
                        None => true,
                        Some(prev) => {
                            let (pa, _) = self.fns[prev].body.unwrap_or((0, usize::MAX));
                            a >= pa
                        }
                    };
                    if tighter {
                        best = Some(k);
                    }
                }
            }
        }
        best
    }
}

/// Does a token slice mention a hash-ordered collection type?
fn mentions_hash(toks: &[Token]) -> bool {
    toks.iter()
        .any(|t| matches!(t.ident(), Some("HashMap" | "HashSet")))
}

/// Token index of the `}` matching the `{` at `open`, if balanced.
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skip a balanced generic argument list starting at `toks[i] == '<'`.
/// Returns the index just past the matching `>`. `->` never appears
/// inside the generics we care about at item level, but a stray `-`
/// before `>` is tolerated by not counting that `>` as a closer.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            let after_dash = i > 0 && toks[i - 1].is_punct('-');
            if !after_dash {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        } else if depth > 0 && (toks[i].is_punct(';') || toks[i].is_punct('{')) {
            // Unbalanced — bail out rather than swallowing the file.
            return i;
        }
        i += 1;
    }
    i
}

/// Parse the header of an `impl` item starting at `toks[i] == "impl"`.
/// Returns `(type_name, index_of_open_brace)` when recognizable.
fn parse_impl_header(toks: &[Token], mut i: usize) -> Option<(String, usize)> {
    i += 1; // past `impl`
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(toks, i);
    }
    // Collect path segments until `{`, `for`, or `where`; on a trait
    // impl (`impl Trait for Type`) the part after `for` names the type.
    let mut last_ident: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            return last_ident.map(|n| (n, i));
        }
        if t.is_punct('<') {
            i = skip_generics(toks, i);
            continue;
        }
        match t.ident() {
            Some("for") => {
                saw_for = true;
                last_ident = None;
            }
            Some("where") => {
                // Skip the where-clause to the opening brace.
                while i < toks.len() && !toks[i].is_punct('{') {
                    i += 1;
                }
                continue;
            }
            Some(id) => {
                let _ = saw_for;
                last_ident = Some(id.to_string());
            }
            None => {}
        }
        i += 1;
    }
    None
}

/// Parse a `fn` item starting at `toks[i] == "fn"`. Returns the def and
/// the token index to resume scanning from (just past the signature —
/// the body is scanned inline so nested items are still found).
fn parse_fn(toks: &[Token], i: usize, qual: Option<&str>) -> Option<(FnDef, usize)> {
    let name = toks.get(i + 1)?.ident()?.to_string();
    let sig_line = toks[i].line;
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_generics(toks, j);
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // Parameters: at paren depth 1, each `ident :` introduces one; the
    // type runs to the next `,` at depth 1 (or the closing paren).
    let mut params = Vec::new();
    let mut depth = 0i32;
    let open = j;
    let mut close = j;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        } else if depth == 1
            && t.ident().is_some()
            && t.ident() != Some("mut")
            && t.ident() != Some("self")
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // Type tokens: up to the `,` back at depth 1.
            let ty_start = j + 2;
            let mut k = ty_start;
            let mut d2 = depth;
            while k < toks.len() {
                let u = &toks[k];
                if u.is_punct('(') || u.is_punct('[') {
                    d2 += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    d2 -= 1;
                    if d2 == 0 {
                        break;
                    }
                } else if u.is_punct(',') && d2 == 1 {
                    break;
                }
                k += 1;
            }
            params.push(Param {
                name: t.ident().unwrap_or_default().to_string(),
                hash_typed: mentions_hash(&toks[ty_start..k.min(toks.len())]),
            });
        }
        j += 1;
    }
    let _ = open;
    // Return type: tokens between `)` and the body `{`, a `;`, or a
    // `where` clause (whose bounds are not part of the return type).
    let mut k = close + 1;
    let ret_start = k;
    let mut body = None;
    let mut end_line = toks[close.min(toks.len() - 1)].line;
    let mut ret_end = ret_start;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('{') {
            if ret_end == ret_start {
                ret_end = k;
            }
            if let Some(cb) = matching_brace(toks, k) {
                body = Some((k, cb));
                end_line = toks[cb].line;
            }
            break;
        }
        if t.is_punct(';') {
            if ret_end == ret_start {
                ret_end = k;
            }
            end_line = t.line;
            break;
        }
        if t.ident() == Some("where") && ret_end == ret_start {
            ret_end = k;
        }
        k += 1;
    }
    let returns_hash = mentions_hash(&toks[ret_start..ret_end.min(toks.len())]);
    Some((
        FnDef {
            name,
            qual: qual.map(String::from),
            sig_line,
            body,
            start_line: sig_line,
            end_line,
            params,
            returns_hash,
            in_test: false,
        },
        close + 1,
    ))
}

/// Extract hash-typed fields from the struct body `{..}` at `open`.
fn parse_struct_fields(toks: &[Token], owner: &str, open: usize, out: &mut Vec<FieldDef>) {
    let Some(close) = matching_brace(toks, open) else {
        return;
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < close {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 1
            && t.ident().is_some()
            && !matches!(t.ident(), Some("pub" | "crate" | "super" | "in"))
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // Field type runs to the `,` back at depth 1 or the close.
            let ty_start = j + 2;
            let mut k = ty_start;
            let mut d2 = depth;
            while k < close {
                let u = &toks[k];
                if u.is_punct('{') || u.is_punct('(') || u.is_punct('[') || u.is_punct('<') {
                    d2 += 1;
                } else if u.is_punct('}')
                    || u.is_punct(')')
                    || u.is_punct(']')
                    || (u.is_punct('>') && !toks[k - 1].is_punct('-'))
                {
                    d2 -= 1;
                } else if u.is_punct(',') && d2 == 1 {
                    break;
                }
                k += 1;
            }
            out.push(FieldDef {
                owner: owner.to_string(),
                name: t.ident().unwrap_or_default().to_string(),
                hash_typed: mentions_hash(&toks[ty_start..k]),
            });
            j = k;
            continue;
        }
        j += 1;
    }
}

/// Line ranges (inclusive) of `#[cfg(test)]`/`#[test]`-gated items.
fn test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let start_line = toks[i].line;
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if let Some(id) = toks[j].ident() {
                    if id == "test" {
                        has_test = true;
                    }
                    if id == "not" {
                        has_not = true;
                    }
                }
                j += 1;
            }
            // `cfg(not(test))` code is compiled in production: keep it.
            if has_test && !has_not {
                if let Some(end_line) = item_end_line(toks, j) {
                    out.push((start_line, end_line));
                    i = j;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// The last line of the item starting at token `i` (skipping any further
/// attributes): either the `;` that ends a braceless item or the
/// matching close of its first `{` block.
fn item_end_line(toks: &[Token], mut i: usize) -> Option<u32> {
    while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
        let mut depth = 0i32;
        loop {
            if i >= toks.len() {
                return None;
            }
            if toks[i].is_punct('[') {
                depth += 1;
            } else if toks[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(';') && paren == 0 && bracket == 0 {
            return Some(t.line);
        } else if t.is_punct('{') && paren == 0 && bracket == 0 {
            return matching_brace(toks, i).map(|j| toks[j].line);
        }
        i += 1;
    }
    None
}

/// Parse `src` into a [`FileModel`]. `path` must be workspace-relative.
pub fn parse_file(path: &str, src: &str) -> FileModel {
    let (toks, comments) = tokenize(src);
    let excluded = test_ranges(&toks);
    let mut model = FileModel {
        path: path.to_string(),
        fns: Vec::new(),
        fields: Vec::new(),
        test_ranges: excluded.clone(),
        toks: Vec::new(),
        comments,
    };

    // Impl contexts as a stack of (type name, brace depth at open).
    let mut impls: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            while impls.last().is_some_and(|&(_, d)| d >= depth) {
                impls.pop();
            }
        }
        match t.ident() {
            Some("impl") => {
                if let Some((name, open)) = parse_impl_header(&toks, i) {
                    // The impl body opens one level deeper than here.
                    impls.push((name, depth));
                    i = open; // continue at `{` so depth tracking sees it
                    continue;
                }
            }
            Some("struct") => {
                if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                    // Find the body brace, if it is a braced struct (skip
                    // generics and where clauses; tuple/unit structs end
                    // with `;` before any brace).
                    let mut j = i + 2;
                    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        if toks[j].is_punct('<') {
                            j = skip_generics(&toks, j);
                            continue;
                        }
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                        parse_struct_fields(&toks, name, j, &mut model.fields);
                    }
                }
            }
            Some("fn") => {
                if let Some((mut f, resume)) =
                    parse_fn(&toks, i, impls.last().map(|(n, _)| n.as_str()))
                {
                    f.in_test = excluded
                        .iter()
                        .any(|&(a, b)| f.sig_line >= a && f.sig_line <= b);
                    model.fns.push(f);
                    i = resume;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    model.toks = toks;
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_impls_are_itemized() {
        let src = r#"
            fn free(a: u32, b: &str) -> u64 { a as u64 }
            impl World {
                fn dispatch(&mut self, t: u64) { self.step(t); }
                fn step(&mut self, t: u64) {}
            }
            impl Default for World {
                fn default() -> Self { World }
            }
        "#;
        let m = parse_file("crates/core/src/world.rs", src);
        let names: Vec<_> = m
            .fns
            .iter()
            .map(|f| (f.qual.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free".to_string()),
                (Some("World".to_string()), "dispatch".to_string()),
                (Some("World".to_string()), "step".to_string()),
                (Some("World".to_string()), "default".to_string()),
            ]
        );
        assert_eq!(m.fns[0].params.len(), 2);
        assert!(m.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn hash_typed_params_returns_and_fields() {
        let src = r#"
            struct S {
                map: HashMap<u64, u32>,
                locked: RwLock<HashMap<u32, u32>>,
                plain: Vec<u32>,
            }
            fn observe(m: &HashMap<u64, u32>, n: usize) -> u32 { n as u32 }
            fn build() -> HashMap<u64, u32> { HashMap::new() }
        "#;
        let m = parse_file("crates/dsm/src/fixture.rs", src);
        let hashes: Vec<_> = m
            .fields
            .iter()
            .filter(|f| f.hash_typed)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(hashes, vec!["map", "locked"]);
        assert!(m.fns[0].params[0].hash_typed);
        assert!(!m.fns[0].params[1].hash_typed);
        assert!(m.fns[1].returns_hash);
        assert!(!m.fns[0].returns_hash);
    }

    #[test]
    fn generic_fns_and_trait_impls_parse() {
        let src = r#"
            impl<T: Clone> Classifier<T> {
                fn classify<'a>(&'a mut self, cell: &[u8]) -> Option<&'a T> { None }
            }
        "#;
        let m = parse_file("crates/pathfinder/src/classifier.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].qual.as_deref(), Some("Classifier"));
        assert_eq!(m.fns[0].params.len(), 1);
        assert_eq!(m.fns[0].params[0].name, "cell");
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let src = r#"
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        "#;
        let m = parse_file("crates/sim/src/fixture.rs", src);
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }

    #[test]
    fn fn_at_resolves_innermost() {
        let src = "fn outer() { let f = |x: u32| x + 1; inner_call(); }";
        let m = parse_file("crates/sim/src/fixture.rs", src);
        let idx = m
            .toks
            .iter()
            .position(|t| t.ident() == Some("inner_call"))
            .unwrap();
        assert_eq!(m.fn_at(idx), Some(0));
    }
}
