//! Workspace model and call graph.
//!
//! [`Workspace::build`] takes every parsed file in the repository,
//! extracts per-function facts via [`crate::taint`], and resolves call
//! sites to workspace functions under a deliberately strict policy —
//! a wrong edge in a panic-reachability analysis produces a false
//! diagnostic two files away from its cause, so unresolvable calls stay
//! unresolved:
//!
//! * `self.m(..)` resolves within the caller's `impl` type;
//! * `Type::m(..)` resolves by `(type, method)`; a lowercase path
//!   qualifier (`aal5::push(..)`) falls back to a module-file match;
//! * `recv.m(..)` on any other receiver resolves only when `m` is
//!   unique across the workspace **and** not a common std method name
//!   ([`STD_METHODS`]) — `vec.push(..)` must never resolve to a
//!   first-party `push`;
//! * bare `f(..)` resolves same-file first, then same-crate, then
//!   workspace-wide, in each ring only when unique; uppercase names
//!   (tuple-struct and enum constructors) never resolve.
//!
//! On top of the graph the module provides deterministic BFS with
//! parent links (for diagnostic call chains) and a reverse-reachability
//! fixpoint with witness edges (for "transitively reads host time"
//! style facts).

use crate::parse::FileModel;
use crate::taint::{finalize_param_observation, fn_facts, FnFacts};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Common std/alloc method names that must never resolve to a
/// first-party function through the unique-name fallback.
pub const STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "new",
    "clone",
    "iter",
    "iter_mut",
    "next",
    "send",
    "recv",
    "write",
    "read",
    "push_back",
    "pop_front",
    "contains",
    "extend",
    "clear",
    "take",
    "replace",
    "map",
    "and_then",
    "unwrap_or",
    "min",
    "max",
    "sum",
    "count",
    "collect",
    "drain",
    "entry",
    "last",
    "first",
    "sort",
    "sort_by",
    "split",
    "join",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "into",
    "from",
    "to_string",
    "to_owned",
    "as_ref",
    "as_mut",
    "abs",
    "lock",
    "borrow",
    "borrow_mut",
    "contains_key",
    "default",
    "clamp",
    "rotate",
    "swap",
    "resize",
    "fill",
    "chunks",
    "windows",
    "wrapping_add",
    "saturating_sub",
    "checked_sub",
    "min_by_key",
    "max_by_key",
];

/// One function in the workspace: indices into
/// [`Workspace::files`] and that file's `fns` list.
#[derive(Clone, Copy, Debug)]
pub struct FnNode {
    /// Index of the defining file.
    pub file: usize,
    /// Index of the [`crate::parse::FnDef`] within that file.
    pub def: usize,
}

/// Reverse-reachability result for one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reach {
    /// The fact does not hold here, directly or transitively.
    No,
    /// The function exhibits the fact directly.
    Direct,
    /// The fact is reached through a call to the contained node.
    Via(usize),
}

impl Reach {
    /// Does the fact hold at all?
    pub fn holds(&self) -> bool {
        !matches!(self, Reach::No)
    }
}

/// The analyzed workspace: parsed files, per-function facts, and the
/// resolved call graph.
pub struct Workspace {
    /// Every parsed file, in deterministic (path-sorted) order.
    pub files: Vec<FileModel>,
    /// Every function, file-major in source order.
    pub nodes: Vec<FnNode>,
    /// Facts for each node (same indexing as `nodes`).
    pub facts: Vec<FnFacts>,
    /// Resolved call edges per node (sorted, deduplicated). The edge
    /// `caller → callee` exists once per pair regardless of call count.
    pub edges: Vec<Vec<usize>>,
    /// For each node, `(call_site_index, callee_node)` for every call
    /// in its facts that resolved.
    pub resolved_calls: Vec<Vec<(usize, usize)>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual_name: BTreeMap<(String, String), Vec<usize>>,
}

/// The crate-name component of a workspace-relative path:
/// `crates/core/src/world.rs` ⇒ `core`; the root `src/` tree ⇒ `cni`.
pub fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else if path.starts_with("src/") {
        "cni"
    } else {
        ""
    }
}

/// The file stem (`crates/atm/src/aal5.rs` ⇒ `aal5`), used to resolve
/// lowercase path qualifiers as module names.
fn stem_of(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

impl Workspace {
    /// Build the workspace model from parsed files: facts, name tables,
    /// and the resolved call graph.
    pub fn build(files: Vec<FileModel>) -> Workspace {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for di in 0..f.fns.len() {
                nodes.push(FnNode { file: fi, def: di });
            }
        }

        // Hash-typed field names grouped by owning struct: a function's
        // `self.field` accesses are tainted only by its own impl type's
        // fields (same-named structs across crates still merge —
        // conservative, and vanishingly rare here).
        let mut fields_by_owner: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for fd in files
            .iter()
            .flat_map(|f| f.fields.iter())
            .filter(|fd| fd.hash_typed)
        {
            fields_by_owner
                .entry(fd.owner.clone())
                .or_default()
                .insert(fd.name.clone());
        }
        let returns_hash_fns: BTreeSet<String> = files
            .iter()
            .flat_map(|f| f.fns.iter())
            .filter(|f| f.returns_hash && !f.in_test)
            .map(|f| f.name.clone())
            .collect();

        let empty = BTreeSet::new();
        let mut facts = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let file = &files[n.file];
            let def = &file.fns[n.def];
            let hash_fields = def
                .qual
                .as_deref()
                .and_then(|q| fields_by_owner.get(q))
                .unwrap_or(&empty);
            let mut fx = fn_facts(file, def, hash_fields, &returns_hash_fns);
            finalize_param_observation(&mut fx, def);
            facts.push(fx);
        }

        // Name tables over non-test functions.
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let def = &files[n.file].fns[n.def];
            if def.in_test {
                continue;
            }
            by_name.entry(def.name.clone()).or_default().push(i);
            if let Some(q) = &def.qual {
                by_qual_name
                    .entry((q.clone(), def.name.clone()))
                    .or_default()
                    .push(i);
            }
        }

        let mut ws = Workspace {
            files,
            nodes,
            facts,
            edges: Vec::new(),
            resolved_calls: Vec::new(),
            by_name,
            by_qual_name,
        };
        ws.resolve_all();
        ws
    }

    fn resolve_all(&mut self) {
        let mut edges = vec![Vec::new(); self.nodes.len()];
        let mut resolved = vec![Vec::new(); self.nodes.len()];
        for i in 0..self.nodes.len() {
            for (ci, call) in self.facts[i].calls.iter().enumerate() {
                if let Some(callee) =
                    self.resolve(i, call.qual.as_deref(), &call.callee, call.is_method)
                {
                    edges[i].push(callee);
                    resolved[i].push((ci, callee));
                }
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }
        self.edges = edges;
        self.resolved_calls = resolved;
    }

    /// Resolve one call from node `caller` under the strict policy.
    pub fn resolve(
        &self,
        caller: usize,
        qual: Option<&str>,
        callee: &str,
        is_method: bool,
    ) -> Option<usize> {
        let caller_node = self.nodes[caller];
        let caller_def = &self.files[caller_node.file].fns[caller_node.def];
        match qual {
            Some("self") => {
                let q = caller_def.qual.as_deref()?;
                let hits = self
                    .by_qual_name
                    .get(&(q.to_string(), callee.to_string()))?;
                (hits.len() == 1).then(|| hits[0])
            }
            Some(q) => {
                if let Some(hits) = self.by_qual_name.get(&(q.to_string(), callee.to_string())) {
                    if hits.len() == 1 {
                        return Some(hits[0]);
                    }
                }
                // Lowercase qualifier: module path like `aal5::push`.
                if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                    let hits: Vec<usize> = self
                        .by_name
                        .get(callee)?
                        .iter()
                        .copied()
                        .filter(|&n| stem_of(&self.files[self.nodes[n].file].path) == q)
                        .collect();
                    return (hits.len() == 1).then(|| hits[0]);
                }
                None
            }
            None if is_method => {
                // Field/local receiver: unique name, never a std method.
                if STD_METHODS.contains(&callee) {
                    return None;
                }
                let hits = self.by_name.get(callee)?;
                (hits.len() == 1).then(|| hits[0])
            }
            None => {
                // Bare call: constructors never resolve.
                if callee.chars().next().is_some_and(|c| c.is_uppercase()) {
                    return None;
                }
                let hits = self.by_name.get(callee)?;
                let same_file: Vec<usize> = hits
                    .iter()
                    .copied()
                    .filter(|&n| {
                        self.nodes[n].file == caller_node.file
                            && self.files[self.nodes[n].file].fns[self.nodes[n].def]
                                .qual
                                .is_none()
                    })
                    .collect();
                if same_file.len() == 1 {
                    return Some(same_file[0]);
                }
                let caller_crate = crate_of(&self.files[caller_node.file].path).to_string();
                let same_crate: Vec<usize> = hits
                    .iter()
                    .copied()
                    .filter(|&n| {
                        crate_of(&self.files[self.nodes[n].file].path) == caller_crate
                            && self.files[self.nodes[n].file].fns[self.nodes[n].def]
                                .qual
                                .is_none()
                    })
                    .collect();
                if same_crate.len() == 1 {
                    return Some(same_crate[0]);
                }
                (hits.len() == 1).then(|| hits[0])
            }
        }
    }

    /// All non-test nodes named `name` on impl type `qual` in `file`
    /// (path suffix match). Used to seed root sets from a registry.
    pub fn find(&self, path_suffix: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let f = &self.files[n.file];
                let d = &f.fns[n.def];
                d.name == name && !d.in_test && f.path.ends_with(path_suffix)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The defining file path of node `i`.
    pub fn path(&self, i: usize) -> &str {
        &self.files[self.nodes[i].file].path
    }

    /// The [`crate::parse::FnDef`] of node `i`.
    pub fn def(&self, i: usize) -> &crate::parse::FnDef {
        let n = self.nodes[i];
        &self.files[n.file].fns[n.def]
    }

    /// Display name for diagnostics: `World::dispatch` or `route`.
    pub fn name(&self, i: usize) -> String {
        let d = self.def(i);
        match &d.qual {
            Some(q) => format!("{}::{}", q, d.name),
            None => d.name.clone(),
        }
    }

    /// Deterministic BFS from `roots` following edges, descending only
    /// into nodes accepted by `descend`. Returns parent links
    /// (`parent[n] = Some(caller)` on the shortest discovery path,
    /// roots map to `None`) for every visited node.
    pub fn bfs(
        &self,
        roots: &[usize],
        mut descend: impl FnMut(usize) -> bool,
    ) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            parent.insert(r, None);
            queue.push_back(r);
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if parent.contains_key(&m) || !descend(m) {
                    continue;
                }
                parent.insert(m, Some(n));
                queue.push_back(m);
            }
        }
        parent
    }

    /// The call chain `root → .. → n` as display names, following the
    /// BFS parent links.
    pub fn chain(&self, parents: &BTreeMap<usize, Option<usize>>, n: usize) -> Vec<String> {
        let mut rev = vec![n];
        let mut cur = n;
        while let Some(Some(p)) = parents.get(&cur) {
            rev.push(*p);
            cur = *p;
        }
        rev.reverse();
        rev.into_iter().map(|i| self.name(i)).collect()
    }

    /// Reverse-reachability fixpoint: for each node, whether `direct`
    /// holds there or in any transitive callee, with a witness edge for
    /// chain reconstruction. Deterministic: the smallest-index witness
    /// wins.
    pub fn reaches(&self, direct: impl Fn(usize) -> bool) -> Vec<Reach> {
        let mut state: Vec<Reach> = (0..self.nodes.len())
            .map(|i| if direct(i) { Reach::Direct } else { Reach::No })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.nodes.len() {
                if state[i].holds() {
                    continue;
                }
                if let Some(&m) = self.edges[i].iter().find(|&&m| state[m].holds()) {
                    state[i] = Reach::Via(m);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        state
    }

    /// The witness chain from `n` down to a `Direct` node, inclusive,
    /// as display names. Empty when the fact does not hold at `n`.
    pub fn reach_chain(&self, state: &[Reach], n: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = n;
        loop {
            match state[cur] {
                Reach::No => return Vec::new(),
                Reach::Direct => {
                    out.push(self.name(cur));
                    return out;
                }
                Reach::Via(m) => {
                    out.push(self.name(cur));
                    cur = m;
                    if out.len() > 64 {
                        return out; // cycle guard; chains this long are bogus anyway
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(files.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    fn node(ws: &Workspace, name: &str) -> usize {
        (0..ws.nodes.len())
            .find(|&i| ws.def(i).name == name)
            .unwrap()
    }

    #[test]
    fn self_calls_resolve_within_impl() {
        let w = ws(&[(
            "crates/core/src/world.rs",
            "impl World {\n\
             fn dispatch(&mut self) { self.step(); }\n\
             fn step(&mut self) {}\n\
             }",
        )]);
        let d = node(&w, "dispatch");
        let s = node(&w, "step");
        assert_eq!(w.edges[d], vec![s]);
    }

    #[test]
    fn std_method_names_never_resolve() {
        let w = ws(&[(
            "crates/atm/src/aal5.rs",
            "impl Aal5 { fn push(&mut self, b: u8) {} }\n\
             fn caller(v: &mut Vec<u8>) { v.push(1); }",
        )]);
        let c = node(&w, "caller");
        assert!(w.edges[c].is_empty());
    }

    #[test]
    fn unique_method_names_resolve_across_files() {
        let w = ws(&[
            (
                "crates/nic/src/device.rs",
                "impl Nic { fn ingest_frame(&mut self, f: u32) {} }",
            ),
            (
                "crates/core/src/world.rs",
                "impl World { fn on_frame_rx(&mut self, f: u32) { self.nic.ingest_frame(f); } }",
            ),
        ]);
        let c = node(&w, "on_frame_rx");
        let t = node(&w, "ingest_frame");
        assert_eq!(w.edges[c], vec![t]);
    }

    #[test]
    fn bare_calls_prefer_same_file() {
        let w = ws(&[
            (
                "crates/atm/src/topology.rs",
                "fn helper() {}\nfn route() { helper(); }",
            ),
            ("crates/dsm/src/msgcache.rs", "fn helper() {}"),
        ]);
        let r = node(&w, "route");
        let same_file = w
            .find("crates/atm/src/topology.rs", "helper")
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(w.edges[r], vec![same_file]);
    }

    #[test]
    fn module_path_calls_resolve_by_file_stem() {
        let w = ws(&[
            (
                "crates/atm/src/aal5.rs",
                "pub fn finish(x: u32) -> u32 { x }",
            ),
            (
                "crates/core/src/world.rs",
                "fn caller() { let _ = aal5::finish(1); }",
            ),
        ]);
        let c = node(&w, "caller");
        let f = node(&w, "finish");
        assert_eq!(w.edges[c], vec![f]);
    }

    #[test]
    fn bfs_reconstructs_chains() {
        let w = ws(&[(
            "crates/core/src/world.rs",
            "impl World {\n\
             fn on_frame_rx(&mut self) { self.a(); }\n\
             fn a(&mut self) { self.b(); }\n\
             fn b(&mut self) { let x: Option<u32> = None; let _ = x.unwrap(); }\n\
             }",
        )]);
        let root = node(&w, "on_frame_rx");
        let b = node(&w, "b");
        let parents = w.bfs(&[root], |_| true);
        assert_eq!(
            w.chain(&parents, b),
            vec!["World::on_frame_rx", "World::a", "World::b"]
        );
    }

    #[test]
    fn reaches_fixpoint_finds_transitive_facts() {
        let w = ws(&[
            (
                "crates/batch/src/lib.rs",
                "pub fn wall_clock() -> u64 { let t = Instant::now(); 0 }",
            ),
            (
                "crates/core/src/world.rs",
                "fn sim_step() { let _ = wall_clock(); }\nfn innocent() {}",
            ),
        ]);
        let state = w.reaches(|i| !w.facts[i].time_now.is_empty());
        let step = node(&w, "sim_step");
        let innocent = node(&w, "innocent");
        assert!(state[step].holds());
        assert!(!state[innocent].holds());
        assert_eq!(w.reach_chain(&state, step), vec!["sim_step", "wall_clock"]);
    }
}
