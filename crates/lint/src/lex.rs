//! A lightweight Rust tokenizer.
//!
//! The analyzer needs *just enough* lexical structure to reason about
//! source files without a full parser: identifiers and punctuation with
//! line/column positions, with string/char literals and comments
//! correctly skipped so that `HashMap` inside a doc comment or a format
//! string never produces a finding. Comments are preserved separately
//! because suppressions (`// cni-lint: allow(..) -- ..`) and `// SAFETY:`
//! annotations live in them.
//!
//! The lexer is intentionally forgiving: on input it does not understand
//! it advances one byte and keeps going. A lint must never panic on the
//! code it audits.

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column of the token's first byte.
    pub col: u32,
}

/// Token kinds the analyzer distinguishes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `fn`, ...).
    Ident(String),
    /// A single punctuation byte (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// A string, byte-string, raw-string or char literal (contents dropped).
    Literal,
    /// A numeric literal (contents dropped).
    Number,
    /// A lifetime (`'a`); kept distinct from char literals.
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its position; `text` excludes the delimiters.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// Comment body without `//`, `/*`, `*/`.
    pub text: String,
}

/// Tokenize `src` into (tokens, comments).
pub fn tokenize(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    bump!();
                }
                comments.push(Comment {
                    line: tline,
                    end_line: tline,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i + 2;
                bump!();
                bump!();
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
                let end = i.saturating_sub(2).max(start);
                comments.push(Comment {
                    line: tline,
                    end_line: line,
                    text: src[start..end].to_string(),
                });
            }
            b'"' => {
                bump!();
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        bump!();
                        bump!();
                    } else if b[i] == b'"' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
                toks.push(Token {
                    kind: TokKind::Literal,
                    line: tline,
                    col: tcol,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                // r"..", r#".."#, b"..", br#".."#, rb".." and friends.
                let mut j = i;
                while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
                    j += 1;
                }
                let raw = b[i..j].contains(&b'r');
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // Advance past the prefix (j points at the opening quote).
                while i < j {
                    bump!();
                }
                bump!(); // opening quote
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if !raw && b[i] == b'\\' && i + 1 < b.len() {
                        bump!();
                        bump!();
                        continue;
                    }
                    if b[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while seen < hashes && k < b.len() && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            while i < k {
                                bump!();
                            }
                            break;
                        }
                    }
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Literal,
                    line: tline,
                    col: tcol,
                });
            }
            b'\'' => {
                // Lifetime or char literal.
                if is_lifetime(b, i) {
                    bump!();
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        bump!();
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    bump!();
                    while i < b.len() {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            bump!();
                            bump!();
                        } else if b[i] == b'\'' {
                            bump!();
                            break;
                        } else {
                            bump!();
                        }
                    }
                    toks.push(Token {
                        kind: TokKind::Literal,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `0..10` must not swallow the range dots.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Number,
                    line: tline,
                    col: tcol,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                bump!();
                toks.push(Token {
                    kind: TokKind::Punct(c as char),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    (toks, comments)
}

/// Is the `r`/`b` run at `i` the prefix of a raw or byte string literal?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    let mut prefix = [false; 2]; // saw r, saw b
    while j < b.len() {
        match b[j] {
            b'r' if !prefix[0] => prefix[0] = true,
            b'b' if !prefix[1] => prefix[1] = true,
            _ => break,
        }
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        if !prefix[0] {
            return false; // b#... is not a literal prefix
        }
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Does the `'` at `i` start a lifetime rather than a char literal?
fn is_lifetime(b: &[u8], i: usize) -> bool {
    // 'x' or '\n' are chars; 'a (no closing quote after one ident char
    // run) is a lifetime. 'static, 'a>, 'a, are all lifetimes.
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if first == b'\\' {
        return false;
    }
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    // A closing quote right after the ident run makes it a char literal
    // (single-char case like 'a').
    !(j == i + 2 && j < b.len() && b[j] == b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .0
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let (_, comments) = tokenize("let x = 1; // trailing\n// own line\n");
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
        assert!(comments[0].text.contains("trailing"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let (toks, _) = tokenize(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn static_lifetime_then_code_still_lexes() {
        let ids = idents("let x: &'static str = y; let m = HashSet::new();");
        assert!(ids.iter().any(|s| s == "HashSet"));
    }

    #[test]
    fn numeric_range_does_not_swallow_dots() {
        let (toks, _) = tokenize("for i in 0..10 {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn positions_are_one_based() {
        let (toks, _) = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
