//! `cni-lint`: the workspace static-analysis engine that enforces the
//! determinism contract (DESIGN.md §4.7, LINT.md).
//!
//! The whole evaluation methodology — execution-driven simulation with
//! byte-identical `RunReport`s for a given seed, at any worker count —
//! is only as strong as the absence of hidden nondeterminism sources.
//! v2 of the engine analyzes every first-party source file in three
//! layers (still no network, no syn: consistent with the vendored
//! `third_party/` policy):
//!
//! 1. [`lex`]/[`parse`] — a lightweight tokenizer and item-level parser
//!    producing per-file function, field, and comment models;
//! 2. [`taint`] — per-function fact sets: panic sites, host-time and
//!    randomness sources, flow-tracked hash-collection uses, call
//!    sites, and per-node index expressions;
//! 3. [`callgraph`] — a workspace call graph over which the rules run
//!    interprocedurally, with full call chains in the diagnostics.
//!
//! | ID | slug               | rule |
//! |----|--------------------|------|
//! | D1 | `nondet-map`       | no *observed* hash iteration order in determinism-sensitive crates, directly or through helpers |
//! | D2 | `host-time`        | no `Instant::now`/`SystemTime::now` outside host-timing modules, including transitively |
//! | D3 | `ambient-rng`      | no `thread_rng`/`from_entropy`/`RandomState` in sim crates, including transitively |
//! | D4 | `snap-nondet`      | no hashed iteration or host timestamps on snapshot encode/decode paths |
//! | P1 | `panic-path`       | no panicking operators reachable from protocol receive roots (BFS over the call graph) |
//! | C1 | `shard-isolation`  | per-node state is reached through exactly one owning node index; cross-shard work rides the event queue or a designated mediator |
//! | U1 | `unsafe-no-safety` | every `unsafe` carries a `// SAFETY:` comment |
//! | S1 | `bad-suppression`  | malformed waiver comments |
//! | S2 | `unused-suppression` | stale waiver comments |
//!
//! A finding is waived with a suppression comment on the same line or
//! the line directly above:
//!
//! ```text
//! // cni-lint: allow(panic-path) -- engine invariant, not wire data
//! ```
//!
//! The justification is mandatory; suppressions without one, and
//! suppressions that no longer match a finding, are themselves findings
//! (`bad-suppression`, `unused-suppression`) so waivers cannot rot
//! silently — flow-sensitivity in v2 retired every standing `nondet-map`
//! waiver this way. Test code (`#[cfg(test)]` modules, `tests/`,
//! `benches/`, `examples/`) is exempt: determinism of the simulation,
//! not of test scaffolding, is the contract.
//!
//! The binary adds CI plumbing: `--json` (schema-versioned envelope),
//! `--sarif` (SARIF 2.1.0), `--baseline`/`--write-baseline` (committed
//! findings baseline; CI fails only on *new* findings), and
//! `--explain <rule>`.

#![deny(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod lex;
pub mod parse;
pub mod report;
pub mod rules;
pub mod taint;
pub mod walk;

pub use report::{render_explain, render_json, render_sarif, render_text};
pub use rules::{
    analyze_source, analyze_sources, FileAnalysis, Finding, Rule, Suppression, WorkspaceAnalysis,
};
pub use walk::{analyze_workspace, WorkspaceReport};
