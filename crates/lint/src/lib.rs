//! `cni-lint`: the workspace static-analysis pass that enforces the
//! determinism contract (DESIGN.md §4.7).
//!
//! The whole evaluation methodology — execution-driven simulation with
//! byte-identical `RunReport`s for a given seed, at any worker count —
//! is only as strong as the absence of hidden nondeterminism sources.
//! This crate walks every first-party source file with a lightweight
//! Rust tokenizer (no network, no syn: consistent with the vendored
//! `third_party/` policy) and enforces five rules:
//!
//! | ID | slug             | rule |
//! |----|------------------|------|
//! | D1 | `nondet-map`     | no `HashMap`/`HashSet` in determinism-sensitive crates |
//! | D2 | `host-time`      | no `Instant::now`/`SystemTime::now` outside host-timing modules |
//! | D3 | `ambient-rng`    | no `thread_rng`/`from_entropy`/`RandomState` in sim crates |
//! | P1 | `panic-path`     | no `unwrap`/`expect`/panic macros/range-slicing on protocol receive paths |
//! | U1 | `unsafe-no-safety` | every `unsafe` carries a `// SAFETY:` comment |
//!
//! A finding is waived with a suppression comment on the same line or
//! the line directly above:
//!
//! ```text
//! // cni-lint: allow(nondet-map) -- keyed lookups only; never iterated
//! ```
//!
//! The justification is mandatory; suppressions without one, and
//! suppressions that no longer match a finding, are themselves findings
//! (`bad-suppression`, `unused-suppression`) so waivers cannot rot
//! silently. Test code (`#[cfg(test)]` modules, `tests/`, `benches/`,
//! `examples/`) is exempt: determinism of the simulation, not of test
//! scaffolding, is the contract.

#![deny(missing_docs)]

pub mod lex;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{render_json, render_text};
pub use rules::{analyze_source, FileAnalysis, Finding, Rule, Suppression};
pub use walk::{analyze_workspace, WorkspaceReport};
