//! Rule definitions and the per-file analysis pass.
//!
//! Rules operate on the token stream from [`crate::lex`], with three
//! layers of context derived first:
//!
//! 1. **Crate classification** from the file's workspace-relative path:
//!    which rules apply at all (D1/D3 only bite in the
//!    determinism-sensitive simulation crates; D2 exempts the designated
//!    host-timing modules).
//! 2. **Test-region exclusion**: `#[cfg(test)]`/`#[test]`-gated items
//!    and test-only file trees are skipped — the contract covers the
//!    simulation, not its test scaffolding.
//! 3. **P1 regions**: the protocol receive/reassembly functions (AAL5
//!    reassembly, go-back-N frame/ack receive, PATHFINDER dispatch)
//!    where corrupt input is expected and panicking operators are
//!    banned.

use crate::lex::{tokenize, Token};

/// The crates whose iteration order, randomness, and clocks can reach
/// `RunReport`, trace output, or protocol decisions.
pub const SIM_CRATES: &[&str] = &[
    "sim",
    "core",
    "nic",
    "atm",
    "pathfinder",
    "dsm",
    "faults",
    "trace",
    "obs",
];

/// Files allowed to read host clocks: the designated host-timing
/// modules (`cni-batch`'s `JobTiming`, which is explicitly kept out of
/// `RunReport`, and the wall-clock measurement harness in `cni-bench`).
const HOST_TIME_EXEMPT: &[&str] = &["crates/batch/src/lib.rs", "crates/bench/"];

/// Snapshot encode/decode paths (D4): a checkpoint written twice from
/// the same state must be byte-identical, so these files must not
/// iterate hashed collections or embed host timestamps in any form.
const SNAPSHOT_PATHS: &[&str] = &["crates/snap/", "crates/core/src/snapshot.rs"];

/// Protocol receive/reassembly regions: (file suffix, function names).
/// Corrupt input is expected on these paths post-PR2, so panicking
/// operators are banned inside them.
const PANIC_PATH_REGIONS: &[(&str, &[&str])] = &[
    ("crates/atm/src/aal5.rs", &["push", "finish"]),
    // PduBuf view/split methods: every received cell's payload flows
    // through these, so a panicking index here is reachable from the wire.
    (
        "crates/atm/src/buf.rs",
        &["as_slice", "view", "chunks", "xor_bit"],
    ),
    // Topology routing decides the path of every cell; it runs under the
    // fabric's per-cell forwarding, so a panicking index would be
    // reachable from any send.
    (
        "crates/atm/src/topology.rs",
        &["route", "leaf_of", "hosts", "validate"],
    ),
    // Multi-switch forwarding walks the routed path per cell head.
    ("crates/atm/src/fabric.rs", &["forward_head"]),
    // Span-recording helpers run inside the frame/ack receive paths, so
    // they inherit the same corrupt-input exposure; arrive_proto hosts
    // the NIC-collective dispatch on the message receive path.
    (
        "crates/core/src/world.rs",
        &[
            "on_frame_rx",
            "on_ack_rx",
            "record_rx_span",
            "close_span",
            "arrive_proto",
        ],
    ),
    (
        "crates/pathfinder/src/classifier.rs",
        &[
            "classify",
            "classify_traced",
            "walk",
            "bind_flow",
            "lookup_flow",
            "unbind_flow",
        ],
    ),
    ("crates/nic/src/device.rs", &["ingest_frame"]),
];

/// A lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: unordered hash collections in determinism-sensitive crates.
    NondetMap,
    /// D2: host clock reads outside designated host-timing modules.
    HostTime,
    /// D3: ambient (non-`Config`-seeded) randomness in sim crates.
    AmbientRng,
    /// D4: hashed-order iteration or host timestamps on snapshot
    /// encode/decode paths.
    SnapNondet,
    /// P1: panicking operators on protocol receive/reassembly paths.
    PanicPath,
    /// U1: `unsafe` without a `// SAFETY:` comment.
    UnsafeNoSafety,
    /// A malformed suppression comment (unknown rule, missing `--`
    /// justification).
    BadSuppression,
    /// A suppression that waives nothing (stale waiver).
    UnusedSuppression,
}

impl Rule {
    /// Short diagnostic id (`D1`...).
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetMap => "D1",
            Rule::HostTime => "D2",
            Rule::AmbientRng => "D3",
            Rule::SnapNondet => "D4",
            Rule::PanicPath => "P1",
            Rule::UnsafeNoSafety => "U1",
            Rule::BadSuppression => "S1",
            Rule::UnusedSuppression => "S2",
        }
    }

    /// Suppression-comment slug (`nondet-map`...).
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NondetMap => "nondet-map",
            Rule::HostTime => "host-time",
            Rule::AmbientRng => "ambient-rng",
            Rule::SnapNondet => "snap-nondet",
            Rule::PanicPath => "panic-path",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::BadSuppression => "bad-suppression",
            Rule::UnusedSuppression => "unused-suppression",
        }
    }

    /// The slugs a suppression comment may name (meta rules S1/S2 are
    /// not suppressible — waivers of the waiver system would defeat it).
    pub fn suppressible_from_slug(slug: &str) -> Option<Rule> {
        match slug {
            "nondet-map" => Some(Rule::NondetMap),
            "host-time" => Some(Rule::HostTime),
            "ambient-rng" => Some(Rule::AmbientRng),
            "snap-nondet" => Some(Rule::SnapNondet),
            "panic-path" => Some(Rule::PanicPath),
            "unsafe-no-safety" => Some(Rule::UnsafeNoSafety),
            _ => None,
        }
    }

    /// One-line `help:` text shown under a diagnostic.
    pub fn help(self) -> &'static str {
        match self {
            Rule::NondetMap => {
                "use BTreeMap/BTreeSet (or a seeded hasher), or add \
                 `// cni-lint: allow(nondet-map) -- <why iteration order cannot leak>`"
            }
            Rule::HostTime => {
                "derive time from SimTime; host clocks live only in batch::JobTiming and cni-bench"
            }
            Rule::AmbientRng => "derive all randomness from Config seeds (SimRng/Pcg32)",
            Rule::SnapNondet => {
                "snapshot bytes must be reproducible: iterate BTree/sorted orders, never hashed \
                 ones, and never embed Instant/SystemTime values in a checkpoint"
            }
            Rule::PanicPath => {
                "corrupt input is expected here: return an error or count-and-drop instead of \
                 panicking"
            }
            Rule::UnsafeNoSafety => "add a `// SAFETY:` comment on or directly above the block",
            Rule::BadSuppression => {
                "grammar: `// cni-lint: allow(<rule-slug>) -- <non-empty justification>`"
            }
            Rule::UnusedSuppression => "the waiver matches no finding; delete it",
        }
    }
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
}

/// A parsed, well-formed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The waived rule.
    pub rule: Rule,
    /// The mandatory justification text.
    pub justification: String,
    /// Whether the suppression waived at least one finding.
    pub used: bool,
}

/// Result of analyzing one file.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// All well-formed suppressions (used or not).
    pub suppressions: Vec<Suppression>,
}

/// Which crate (by directory name under `crates/`) a path belongs to.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.split("crates/").nth(1)?;
    rest.split('/').next()
}

fn is_sim_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| SIM_CRATES.contains(&c))
}

fn is_host_time_exempt(path: &str) -> bool {
    HOST_TIME_EXEMPT
        .iter()
        .any(|e| path.contains(e) || path.ends_with(e.trim_end_matches('/')))
}

fn is_snapshot_path(path: &str) -> bool {
    SNAPSHOT_PATHS
        .iter()
        .any(|e| path.contains(e) || path.ends_with(e.trim_end_matches('/')))
}

/// Test-only file trees (integration tests, benches, examples) are out
/// of scope for every rule.
fn is_test_path(path: &str) -> bool {
    let markers = ["/tests/", "/benches/", "/examples/"];
    markers.iter().any(|m| path.contains(m))
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
}

/// Line ranges (inclusive) of `#[cfg(test)]`/`#[test]`-gated items.
fn test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let start_line = toks[i].line;
            // Scan the attribute to its closing bracket.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if let Some(id) = toks[j].ident() {
                    if id == "test" {
                        has_test = true;
                    }
                    if id == "not" {
                        has_not = true;
                    }
                }
                j += 1;
            }
            // `cfg(not(test))` code is compiled in production: keep it.
            if has_test && !has_not {
                if let Some(end_line) = item_end_line(toks, j) {
                    out.push((start_line, end_line));
                    i = j;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// The last line of the item starting at token `i` (skipping any further
/// attributes): either the `;` that ends a braceless item or the
/// matching close of its first `{` block.
fn item_end_line(toks: &[Token], mut i: usize) -> Option<u32> {
    // Skip stacked attributes.
    while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
        let mut depth = 0i32;
        loop {
            if i >= toks.len() {
                return None;
            }
            if toks[i].is_punct('[') {
                depth += 1;
            } else if toks[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(';') && paren == 0 && bracket == 0 {
            return Some(t.line);
        } else if t.is_punct('{') && paren == 0 && bracket == 0 {
            return brace_close_line(toks, i);
        }
        i += 1;
    }
    None
}

/// Line of the `}` matching the `{` at token index `open`.
fn brace_close_line(toks: &[Token], open: usize) -> Option<u32> {
    let mut depth = 0i32;
    for t in &toks[open..] {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(t.line);
            }
        }
    }
    None
}

/// Line ranges of the P1 (protocol receive path) functions in `path`.
fn panic_path_ranges(path: &str, toks: &[Token]) -> Vec<(u32, u32)> {
    let Some((_, fns)) = PANIC_PATH_REGIONS
        .iter()
        .find(|(suffix, _)| path.ends_with(suffix))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                if fns.contains(&name) {
                    // Find the body's opening brace; a `;` first means a
                    // bodiless declaration.
                    let mut j = i + 2;
                    let mut paren = 0i32;
                    while j < toks.len() {
                        let t = &toks[j];
                        if t.is_punct('(') {
                            paren += 1;
                        } else if t.is_punct(')') {
                            paren -= 1;
                        } else if t.is_punct(';') && paren == 0 {
                            break;
                        } else if t.is_punct('{') && paren == 0 {
                            if let Some(end) = brace_close_line(toks, j) {
                                out.push((toks[i].line, end));
                            }
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parse one comment as a suppression. `None`: not a suppression
/// comment at all. `Some(Err(msg))`: malformed.
fn parse_suppression(text: &str) -> Option<Result<(Rule, String), String>> {
    let idx = text.find("cni-lint:")?;
    let rest = text[idx + "cni-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err(
            "expected `allow(<rule-slug>)` after `cni-lint:`".to_string()
        ));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed `allow(` in suppression".to_string()));
    };
    let slug = rest[..close].trim();
    let Some(rule) = Rule::suppressible_from_slug(slug) else {
        return Some(Err(format!("unknown or unsuppressible rule `{slug}`")));
    };
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return Some(Err(
            "missing ` -- <justification>` after `allow(..)`".to_string()
        ));
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Some(Err("empty justification".to_string()));
    }
    Some(Ok((rule, justification.to_string())))
}

/// Identifiers that, called as macros (`name!`), abort on the spot.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Analyze one source file. `path` must be workspace-relative with `/`
/// separators — it selects which rules apply.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    if is_test_path(path) {
        return out;
    }
    let (toks, comments) = tokenize(src);
    let excluded = test_ranges(&toks);
    let p1_ranges = panic_path_ranges(path, &toks);
    let sim = is_sim_crate(path);
    let time_exempt = is_host_time_exempt(path);
    let snap = is_snapshot_path(path);

    let mut candidates: Vec<Finding> = Vec::new();
    let push = |candidates: &mut Vec<Finding>, rule: Rule, line: u32, col: u32, msg: String| {
        // One finding per (rule, line): a `use` naming HashMap twice is
        // one decision for the author and one suppression.
        if candidates.iter().any(|f| f.rule == rule && f.line == line) {
            return;
        }
        candidates.push(Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            message: msg,
        });
    };

    for (i, t) in toks.iter().enumerate() {
        if in_ranges(&excluded, t.line) {
            continue;
        }
        let Some(id) = t.ident() else {
            // P1: range-slice indexing `buf[a..b]` — the only indexing
            // form the tokenizer can attribute reliably.
            if t.is_punct('[')
                && in_ranges(&p1_ranges, t.line)
                && i > 0
                && (toks[i - 1].ident().is_some()
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'))
                && index_has_range(&toks, i)
            {
                push(
                    &mut candidates,
                    Rule::PanicPath,
                    t.line,
                    t.col,
                    "range-slice indexing on a protocol receive path (panics on short input)"
                        .to_string(),
                );
            }
            continue;
        };
        match id {
            // D4 outranks D1 on snapshot paths: same hazard, stricter
            // contract (the encode bytes themselves must be stable).
            "HashMap" | "HashSet" if snap => {
                push(
                    &mut candidates,
                    Rule::SnapNondet,
                    t.line,
                    t.col,
                    format!("`{id}` on a snapshot encode/decode path (hashed iteration order)"),
                );
            }
            "HashMap" | "HashSet" if sim => {
                push(
                    &mut candidates,
                    Rule::NondetMap,
                    t.line,
                    t.col,
                    format!(
                        "`{id}` in determinism-sensitive crate `{}`",
                        crate_name(path)
                    ),
                );
            }
            // On snapshot paths any host-time type is banned outright —
            // even stored or formatted, not just `::now()` reads.
            "Instant" | "SystemTime" | "UNIX_EPOCH" if snap => {
                push(
                    &mut candidates,
                    Rule::SnapNondet,
                    t.line,
                    t.col,
                    format!("host timestamp `{id}` on a snapshot encode/decode path"),
                );
            }
            "Instant" | "SystemTime" if !time_exempt && follows_path_call(&toks, i, "now") => {
                push(
                    &mut candidates,
                    Rule::HostTime,
                    t.line,
                    t.col,
                    format!("`{id}::now()` outside the designated host-timing modules"),
                );
            }
            "thread_rng" | "from_entropy" | "RandomState" | "OsRng" if sim => {
                push(
                    &mut candidates,
                    Rule::AmbientRng,
                    t.line,
                    t.col,
                    format!("ambient randomness source `{id}` in a sim crate"),
                );
            }
            "unwrap" | "expect"
                if in_ranges(&p1_ranges, t.line)
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                push(
                    &mut candidates,
                    Rule::PanicPath,
                    t.line,
                    t.col,
                    format!("`.{id}()` on a protocol receive path"),
                );
            }
            m if PANIC_MACROS.contains(&m)
                && in_ranges(&p1_ranges, t.line)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                push(
                    &mut candidates,
                    Rule::PanicPath,
                    t.line,
                    t.col,
                    format!("`{m}!` on a protocol receive path"),
                );
            }
            "unsafe" => {
                let covered = comments.iter().any(|c| {
                    c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
                });
                if !covered {
                    push(
                        &mut candidates,
                        Rule::UnsafeNoSafety,
                        t.line,
                        t.col,
                        "`unsafe` without a `// SAFETY:` comment".to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    // Suppressions: same line as the finding, or the line directly above.
    let mut suppressions: Vec<Suppression> = Vec::new();
    for c in &comments {
        if in_ranges(&excluded, c.line) {
            continue;
        }
        // Doc comments (`///`, `//!`, `/** */`) never carry live
        // suppressions — they may quote the grammar as documentation.
        if matches!(c.text.as_bytes().first(), Some(b'/' | b'!' | b'*')) {
            continue;
        }
        match parse_suppression(&c.text) {
            None => {}
            Some(Err(msg)) => {
                out.findings.push(Finding {
                    rule: Rule::BadSuppression,
                    path: path.to_string(),
                    line: c.line,
                    col: 1,
                    message: msg,
                });
            }
            Some(Ok((rule, justification))) => {
                suppressions.push(Suppression {
                    path: path.to_string(),
                    line: c.line,
                    rule,
                    justification,
                    used: false,
                });
                // Remember the last line the comment spans for matching.
                if c.end_line != c.line {
                    if let Some(s) = suppressions.last_mut() {
                        s.line = c.end_line;
                    }
                }
            }
        }
    }

    for f in candidates {
        let waived = suppressions
            .iter_mut()
            .find(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line));
        match waived {
            Some(s) => s.used = true,
            None => out.findings.push(f),
        }
    }
    for s in &suppressions {
        if !s.used {
            out.findings.push(Finding {
                rule: Rule::UnusedSuppression,
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!("suppression for `{}` waives nothing", s.rule.slug()),
            });
        }
    }
    out.suppressions = suppressions;
    out.findings.sort_by_key(|a| (a.line, a.col, a.rule));
    out
}

fn crate_name(path: &str) -> String {
    crate_of(path)
        .map(|c| format!("cni-{c}"))
        .unwrap_or_else(|| "cni-suite".to_string())
}

/// Does `toks[i]` (an ident) begin `Ident::method(`?
fn follows_path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).and_then(|t| t.ident()) == Some(method)
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Does the index expression opening at `toks[open] == '['` contain a
/// `..` at bracket depth 1 (i.e. is it a range slice)?
fn index_has_range(toks: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if depth == 1 && t.is_punct('.') && toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
        {
            return true;
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_grammar() {
        assert!(parse_suppression("ordinary comment").is_none());
        let ok = parse_suppression("cni-lint: allow(nondet-map) -- keyed lookups only");
        assert!(matches!(ok, Some(Ok((Rule::NondetMap, _)))));
        assert!(matches!(
            parse_suppression("cni-lint: allow(nondet-map)"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(nondet-map) -- "),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(made-up-rule) -- why"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(unused-suppression) -- meta"),
            Some(Err(_))
        ));
    }

    #[test]
    fn crate_classification() {
        assert!(is_sim_crate("crates/dsm/src/node.rs"));
        assert!(is_sim_crate("crates/trace/src/lib.rs"));
        assert!(!is_sim_crate("crates/apps/src/lib.rs"));
        assert!(!is_sim_crate("crates/batch/src/lib.rs"));
        assert!(is_host_time_exempt("crates/batch/src/lib.rs"));
        assert!(is_host_time_exempt("crates/bench/src/lib.rs"));
        assert!(!is_host_time_exempt("crates/sim/src/time.rs"));
        assert!(is_snapshot_path("crates/snap/src/lib.rs"));
        assert!(is_snapshot_path("crates/core/src/snapshot.rs"));
        assert!(!is_snapshot_path("crates/core/src/world.rs"));
        assert!(is_test_path("crates/nic/tests/msgcache_model.rs"));
        assert!(is_test_path("tests/byte_identity.rs"));
        assert!(!is_test_path("crates/nic/src/msgcache.rs"));
    }
}
