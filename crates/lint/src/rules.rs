//! Rule definitions and the workspace analysis pass.
//!
//! v2 of the engine evaluates rules over three layers of context
//! instead of raw tokens:
//!
//! 1. **Crate classification** from each file's workspace-relative
//!    path: which rules apply at all (D1/D3 only bite in the
//!    determinism-sensitive simulation crates; D2 exempts the
//!    designated host-timing modules; D4 covers snapshot paths; C1
//!    covers the shardable per-node crates).
//! 2. **Per-function fact sets** from [`crate::taint`]: panic sites,
//!    host-time and randomness sources, hash-ordered collection uses
//!    tracked through locals/fields/params, call sites, and per-node
//!    index expressions.
//! 3. **The workspace call graph** from [`crate::callgraph`]: P1
//!    panic-reachability is a BFS from the protocol receive roots; the
//!    D-family rules propagate source facts along call edges so a
//!    helper cannot launder a clock read or a hash iteration; C1 walks
//!    everything reachable from the event dispatcher.
//!
//! Findings carry the full call chain in their message when the
//! violation is interprocedural, so the diagnostic explains *why* the
//! flagged line is on a hot path two files away from the root.

use crate::callgraph::{Reach, Workspace, STD_METHODS};
use crate::parse::{parse_file, FileModel};
use crate::taint::{KEYED_SAFE, ORDER_OBSERVING, PASSTHROUGH};
use std::collections::BTreeSet;

/// The crates whose iteration order, randomness, and clocks can reach
/// `RunReport`, trace output, or protocol decisions.
pub const SIM_CRATES: &[&str] = &[
    "sim",
    "core",
    "nic",
    "atm",
    "pathfinder",
    "dsm",
    "faults",
    "trace",
    "obs",
];

/// Files allowed to read host clocks: the designated host-timing
/// modules (`cni-batch`'s `JobTiming`, which is explicitly kept out of
/// `RunReport`, and the wall-clock measurement harness in `cni-bench`).
const HOST_TIME_EXEMPT: &[&str] = &["crates/batch/src/lib.rs", "crates/bench/"];

/// Snapshot encode/decode paths (D4): a checkpoint written twice from
/// the same state must be byte-identical, so these files must not
/// iterate hashed collections or embed host timestamps in any form.
const SNAPSHOT_PATHS: &[&str] = &["crates/snap/", "crates/core/src/snapshot.rs"];

/// Files allowed to use host threading primitives (T1): the parallel
/// executor itself, its `World` driver, and the co-thread runtime —
/// the three places where the engine deliberately meets the host's
/// scheduler. Everywhere else in the sim crates, a mutex or channel is
/// either dead weight on the serial path or an invitation to leak host
/// scheduling order into results.
const THREAD_EXEMPT: &[&str] = &[
    "crates/sim/src/pdes.rs",
    "crates/sim/src/cothread.rs",
    "crates/core/src/pdes.rs",
];

/// Protocol receive/reassembly roots: (file suffix, function names).
/// Corrupt input is expected on these paths post-PR2; P1 bans
/// panicking operators in them **and in everything they transitively
/// call** inside the sim crates.
pub const PANIC_PATH_REGIONS: &[(&str, &[&str])] = &[
    ("crates/atm/src/aal5.rs", &["push", "finish"]),
    // PduBuf view/split methods: every received cell's payload flows
    // through these, so a panicking index here is reachable from the wire.
    (
        "crates/atm/src/buf.rs",
        &["as_slice", "view", "chunks", "xor_bit"],
    ),
    // Topology routing decides the path of every cell; it runs under the
    // fabric's per-cell forwarding, so a panicking index would be
    // reachable from any send.
    (
        "crates/atm/src/topology.rs",
        &["route", "leaf_of", "hosts", "validate"],
    ),
    // Multi-switch forwarding walks the routed path per cell head.
    ("crates/atm/src/fabric.rs", &["forward_head"]),
    // Span-recording helpers run inside the frame/ack receive paths, so
    // they inherit the same corrupt-input exposure; arrive_proto hosts
    // the NIC-collective dispatch on the message receive path.
    (
        "crates/core/src/world.rs",
        &[
            "on_frame_rx",
            "on_ack_rx",
            "record_rx_span",
            "close_span",
            "arrive_proto",
        ],
    ),
    (
        "crates/pathfinder/src/classifier.rs",
        &[
            "classify",
            "classify_traced",
            "walk",
            "bind_flow",
            "lookup_flow",
            "unbind_flow",
        ],
    ),
    ("crates/nic/src/device.rs", &["ingest_frame"]),
];

/// Functions the P1 reachability walk does not descend through:
/// co-thread resumption is a scheduling boundary — a panic inside
/// resumed application code is an application bug, not a protocol
/// receive-path hazard. Documented in LINT.md.
const P1_BOUNDARY_FNS: &[&str] = &["resume", "wake"];

/// The crates C1 guards: everything that lives inside a shard now that
/// the event queue is partitioned per node (the cni-pdes engine).
pub const C1_CRATES: &[&str] = &["core", "nic", "dsm"];

/// C1 walk roots: (file suffix, function name). The serial event loop's
/// dispatcher and the parallel executor's per-shard dispatch entry — the
/// latter is the root that matters under `--engine-workers N`, where a
/// cross-shard access is no longer merely nondeterministic but a data
/// race.
pub const C1_ROOTS: &[(&str, &str)] = &[
    ("crates/core/src/world.rs", "dispatch"),
    ("crates/core/src/pdes.rs", "dispatch"),
];

/// Per-node state containers on `World` (and mirrors reached through
/// free functions taking the world): C1 verifies each function
/// reachable from `dispatch` indexes these through exactly one node
/// root, with no literals and no index arithmetic.
pub const PER_NODE_FIELDS: &[&str] = &[
    "nics",
    "dsm",
    "spaces",
    "cpus",
    "metrics_prev",
    "util_prev",
    "ring_hw",
    "ring_used",
    // Parallel-engine additions: the per-node jitter streams, the
    // per-sender/per-receiver reliability channel maps, and the
    // per-shard outbox lanes (`pdes.out`) a dispatch appends to.
    "jitter",
    "rel_tx",
    "rel_rx",
    "out",
];

/// Designated mediators: (file suffix, function name) pairs allowed to
/// touch more than one node's state. Every entry must carry a
/// justification in LINT.md §C1 — the allowlist *is* the sharding
/// design's list of cross-shard synchronization points.
///
/// Currently empty: every function reachable from `World::dispatch`
/// resolves the owning node's index exactly once (`dst`, `src`, or the
/// resumed proc `p`) and never reaches across. Cross-node effects all
/// ride the event queue. Keep it that way; add entries here only
/// together with a LINT.md justification.
pub const C1_MEDIATORS: &[(&str, &str)] = &[];

/// A lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: observed iteration order of unordered hash collections in
    /// determinism-sensitive crates (flow-sensitive).
    NondetMap,
    /// D2: host clock reads outside designated host-timing modules,
    /// directly or through calls out of the sim crates.
    HostTime,
    /// D3: ambient (non-`Config`-seeded) randomness in sim crates,
    /// directly or through calls out of the sim crates.
    AmbientRng,
    /// D4: hashed-order iteration or host timestamps on snapshot
    /// encode/decode paths.
    SnapNondet,
    /// P1: panicking operators reachable from protocol receive roots.
    PanicPath,
    /// C1: per-node state reached outside the owning node's index.
    ShardIsolation,
    /// T1: host threading primitives outside the designated executor
    /// modules.
    HostThread,
    /// U1: `unsafe` without a `// SAFETY:` comment.
    UnsafeNoSafety,
    /// A malformed suppression comment (unknown rule, missing `--`
    /// justification).
    BadSuppression,
    /// A suppression that waives nothing (stale waiver).
    UnusedSuppression,
}

impl Rule {
    /// Short diagnostic id (`D1`...).
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetMap => "D1",
            Rule::HostTime => "D2",
            Rule::AmbientRng => "D3",
            Rule::SnapNondet => "D4",
            Rule::PanicPath => "P1",
            Rule::ShardIsolation => "C1",
            Rule::HostThread => "T1",
            Rule::UnsafeNoSafety => "U1",
            Rule::BadSuppression => "S1",
            Rule::UnusedSuppression => "S2",
        }
    }

    /// Suppression-comment slug (`nondet-map`...).
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NondetMap => "nondet-map",
            Rule::HostTime => "host-time",
            Rule::AmbientRng => "ambient-rng",
            Rule::SnapNondet => "snap-nondet",
            Rule::PanicPath => "panic-path",
            Rule::ShardIsolation => "shard-isolation",
            Rule::HostThread => "host-thread",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::BadSuppression => "bad-suppression",
            Rule::UnusedSuppression => "unused-suppression",
        }
    }

    /// Every rule, in diagnostic-id order (for `--explain` listings).
    pub fn all() -> &'static [Rule] {
        &[
            Rule::NondetMap,
            Rule::HostTime,
            Rule::AmbientRng,
            Rule::SnapNondet,
            Rule::PanicPath,
            Rule::ShardIsolation,
            Rule::HostThread,
            Rule::UnsafeNoSafety,
            Rule::BadSuppression,
            Rule::UnusedSuppression,
        ]
    }

    /// The slugs a suppression comment may name (meta rules S1/S2 are
    /// not suppressible — waivers of the waiver system would defeat it).
    pub fn suppressible_from_slug(slug: &str) -> Option<Rule> {
        match slug {
            "nondet-map" => Some(Rule::NondetMap),
            "host-time" => Some(Rule::HostTime),
            "ambient-rng" => Some(Rule::AmbientRng),
            "snap-nondet" => Some(Rule::SnapNondet),
            "panic-path" => Some(Rule::PanicPath),
            "shard-isolation" => Some(Rule::ShardIsolation),
            "host-thread" => Some(Rule::HostThread),
            "unsafe-no-safety" => Some(Rule::UnsafeNoSafety),
            _ => None,
        }
    }

    /// One-line `help:` text shown under a diagnostic.
    pub fn help(self) -> &'static str {
        match self {
            Rule::NondetMap => {
                "use BTreeMap/BTreeSet (or keyed-only access), or add \
                 `// cni-lint: allow(nondet-map) -- <why iteration order cannot leak>`"
            }
            Rule::HostTime => {
                "derive time from SimTime; host clocks live only in batch::JobTiming and cni-bench"
            }
            Rule::AmbientRng => "derive all randomness from Config seeds (SimRng/Pcg32)",
            Rule::SnapNondet => {
                "snapshot bytes must be reproducible: iterate BTree/sorted orders, never hashed \
                 ones, and never embed Instant/SystemTime values in a checkpoint"
            }
            Rule::PanicPath => {
                "corrupt input is expected here: return an error or count-and-drop instead of \
                 panicking"
            }
            Rule::ShardIsolation => {
                "reach per-node state only through the owning node's index or EventQueue \
                 scheduling; designated mediators are listed in LINT.md"
            }
            Rule::HostThread => {
                "host threading primitives live only in the designated executor modules \
                 (sim::pdes, sim::cothread, core::pdes); route cross-shard effects through \
                 the event queue"
            }
            Rule::UnsafeNoSafety => "add a `// SAFETY:` comment on or directly above the block",
            Rule::BadSuppression => {
                "grammar: `// cni-lint: allow(<rule-slug>) -- <non-empty justification>`"
            }
            Rule::UnusedSuppression => "the waiver matches no finding; delete it",
        }
    }

    /// Long-form explanation for `cni-lint --explain <rule>`, mirroring
    /// the DESIGN.md §4.7 invariant table and LINT.md rule catalog.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NondetMap => {
                "D1 nondet-map — hash-order observation in sim crates.\n\
                 \n\
                 `HashMap`/`HashSet` iteration order depends on the hasher and on\n\
                 insertion/capacity history, so any observed iteration order is a\n\
                 nondeterminism source that can leak into RunReport, traces, or\n\
                 protocol decisions. The v2 rule is flow-sensitive: declaring or\n\
                 storing a hash collection is fine; the finding fires where its\n\
                 order is *observed*. Tracked through locals (`let w = self.pages\n\
                 .write()`), struct fields, parameters, and returns. Flagged\n\
                 operations: `iter`, `keys`, `values`, `into_iter`, `drain`,\n\
                 `retain`, `for .. in`, plus any operation not on the keyed-safe\n\
                 list (conservative), plus passing the collection to a function\n\
                 that transitively observes its parameter's order. Keyed-only\n\
                 access (`get`/`insert`/`remove`/`contains_key`/`len`/..) never\n\
                 fires. Fix: iterate a BTree collection or a sorted key vector,\n\
                 or keep access keyed."
            }
            Rule::HostTime => {
                "D2 host-time — wall-clock reads outside the designated modules.\n\
                 \n\
                 Simulation time is SimTime, advanced by the event queue. A host\n\
                 clock read (`Instant::now`, `SystemTime::now`) anywhere else can\n\
                 leak scheduling jitter into results. Direct reads are flagged in\n\
                 every first-party file except the designated host-timing modules\n\
                 (batch::JobTiming, cni-bench). The v2 rule is also\n\
                 interprocedural: a sim-crate function that calls out of the sim\n\
                 crates into something that transitively reads the host clock is\n\
                 flagged at the call site, with the laundering chain in the\n\
                 message."
            }
            Rule::AmbientRng => {
                "D3 ambient-rng — randomness not derived from Config seeds.\n\
                 \n\
                 All randomness must flow from the run's seeds (SimRng/Pcg32) so\n\
                 a seed fully determines the run. Ambient sources (`thread_rng`,\n\
                 `from_entropy`, `RandomState`, `OsRng`) are flagged directly in\n\
                 sim crates, and interprocedurally when a sim-crate function\n\
                 calls out to a function that transitively draws ambient\n\
                 randomness."
            }
            Rule::SnapNondet => {
                "D4 snap-nondet — nondeterministic bytes on snapshot paths.\n\
                 \n\
                 A checkpoint written twice from the same state must be\n\
                 byte-identical (deterministic restore, CI torn-write checks).\n\
                 On snapshot encode/decode paths the rule therefore bans\n\
                 *presence* of host-time types (`Instant`, `SystemTime`,\n\
                 `UNIX_EPOCH` — even stored or formatted), flags hash-order\n\
                 observation with the same flow-sensitive engine as D1, and\n\
                 flags calls into functions that transitively reach host time."
            }
            Rule::PanicPath => {
                "P1 panic-path — panics reachable from protocol receive roots.\n\
                 \n\
                 Corrupt or truncated input is *expected* on receive paths\n\
                 (AAL5 reassembly, go-back-N frame/ack receive, PATHFINDER\n\
                 classification, topology routing, NIC ingest, collective\n\
                 dispatch). The v2 rule computes panic-reachability as a BFS\n\
                 over the workspace call graph from the receive roots: `.unwrap()`,\n\
                 `.expect()`, and panic-family macros are flagged in every\n\
                 sim-crate function reachable from a root, with the full call\n\
                 chain in the diagnostic. Range-slice indexing (`buf[a..b]`) is\n\
                 flagged in the roots themselves. The walk does not descend\n\
                 through co-thread resumption (`resume`, `wake`): panics in\n\
                 resumed application code are application bugs, not\n\
                 receive-path hazards. Fix: validate lengths, return\n\
                 Result/Option, count-and-drop."
            }
            Rule::ShardIsolation => {
                "C1 shard-isolation — the static precondition for the parallel DES.\n\
                 \n\
                 ROADMAP item 2 shards the event queue per node/switch; after\n\
                 that, any access to another node's state outside the event\n\
                 queue is a cross-shard data race that silently breaks\n\
                 bit-identity. C1 walks every function reachable from\n\
                 `World::dispatch` inside cni-core/cni-nic/cni-dsm and verifies\n\
                 each per-node container (`nics`, `dsm`, `spaces`, `cpus`,\n\
                 `metrics_prev`, `util_prev`, `ring_hw`, `ring_used`) is indexed\n\
                 through exactly one node root per function — no literal\n\
                 indices, no index arithmetic (`p + 1` reaches a neighbour), no\n\
                 mixing two roots (`src` and `dst` in one function). Functions\n\
                 that legitimately span nodes are designated mediators,\n\
                 allowlisted in the rule with a justification in LINT.md §C1;\n\
                 everything else must route cross-node effects through\n\
                 EventQueue scheduling."
            }
            Rule::HostThread => {
                "T1 host-thread — host threading primitives outside the executor.\n\
                 \n\
                 The parallel engine's determinism rests on exactly one piece of\n\
                 host concurrency: the conservative-lookahead executor and its\n\
                 replay barrier (sim::pdes, driven through core::pdes), plus the\n\
                 co-thread runtime that implements execution-driven processors\n\
                 (sim::cothread). A `Mutex`, `RwLock`, `Condvar`, `mpsc` channel\n\
                 or `thread::spawn` anywhere else in the sim crates either does\n\
                 nothing on the serial path or — worse — invites ad-hoc\n\
                 cross-shard communication whose ordering depends on the host\n\
                 scheduler, silently breaking byte-identity at worker counts\n\
                 above one. Route cross-shard effects through the event queue\n\
                 and `SendIntent` commits; shared read-only state may be waived\n\
                 with a justification."
            }
            Rule::UnsafeNoSafety => {
                "U1 unsafe-no-safety — undocumented unsafe.\n\
                 \n\
                 Every `unsafe` block or function must carry a `// SAFETY:`\n\
                 comment on the same line or within the three lines above,\n\
                 stating the invariant that makes it sound."
            }
            Rule::BadSuppression => {
                "S1 bad-suppression — malformed waiver comment.\n\
                 \n\
                 The waiver grammar is `// cni-lint: allow(<rule-slug>) -- \n\
                 <non-empty justification>`. Unknown slugs, missing `--`, and\n\
                 empty justifications are findings. S1/S2 themselves are not\n\
                 suppressible."
            }
            Rule::UnusedSuppression => {
                "S2 unused-suppression — stale waiver.\n\
                 \n\
                 A suppression that no longer matches any finding is itself a\n\
                 finding, reported at the waiver comment's own line, so waivers\n\
                 cannot rot silently after the code they excused is fixed."
            }
        }
    }
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
}

/// A parsed, well-formed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line the comment *starts* on — where diagnostics about
    /// the suppression itself (S2) point.
    pub line: u32,
    /// 1-based line the comment ends on — findings on this line or the
    /// next are waived (differs from `line` for block comments).
    pub match_line: u32,
    /// The waived rule.
    pub rule: Rule,
    /// The mandatory justification text.
    pub justification: String,
    /// Whether the suppression waived at least one finding.
    pub used: bool,
}

/// Result of analyzing one file (compatibility shape for single-file
/// callers; the engine itself is workspace-scoped).
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// All well-formed suppressions (used or not).
    pub suppressions: Vec<Suppression>,
}

/// Result of analyzing a set of files as one workspace.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceAnalysis {
    /// Unsuppressed findings, sorted by (path, line, col).
    pub findings: Vec<Finding>,
    /// All well-formed suppressions (used or not), in file order.
    pub suppressions: Vec<Suppression>,
}

/// Which crate (by directory name under `crates/`) a path belongs to.
fn crate_dir(path: &str) -> Option<&str> {
    let rest = path.split("crates/").nth(1)?;
    rest.split('/').next()
}

fn is_sim_crate(path: &str) -> bool {
    crate_dir(path).is_some_and(|c| SIM_CRATES.contains(&c))
}

fn is_c1_crate(path: &str) -> bool {
    crate_dir(path).is_some_and(|c| C1_CRATES.contains(&c))
}

fn is_host_time_exempt(path: &str) -> bool {
    HOST_TIME_EXEMPT
        .iter()
        .any(|e| path.contains(e) || path.ends_with(e.trim_end_matches('/')))
}

fn is_snapshot_path(path: &str) -> bool {
    SNAPSHOT_PATHS
        .iter()
        .any(|e| path.contains(e) || path.ends_with(e.trim_end_matches('/')))
}

/// Test-only file trees (integration tests, benches, examples) are out
/// of scope for every rule.
fn is_test_path(path: &str) -> bool {
    let markers = ["/tests/", "/benches/", "/examples/"];
    markers.iter().any(|m| path.contains(m))
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parse one comment as a suppression. `None`: not a suppression
/// comment at all. `Some(Err(msg))`: malformed.
fn parse_suppression(text: &str) -> Option<Result<(Rule, String), String>> {
    let idx = text.find("cni-lint:")?;
    let rest = text[idx + "cni-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err(
            "expected `allow(<rule-slug>)` after `cni-lint:`".to_string()
        ));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed `allow(` in suppression".to_string()));
    };
    let slug = rest[..close].trim();
    let Some(rule) = Rule::suppressible_from_slug(slug) else {
        return Some(Err(format!("unknown or unsuppressible rule `{slug}`")));
    };
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return Some(Err(
            "missing ` -- <justification>` after `allow(..)`".to_string()
        ));
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Some(Err("empty justification".to_string()));
    }
    Some(Ok((rule, justification.to_string())))
}

/// The candidate accumulator: dedup one finding per (rule, path, line).
struct Candidates {
    findings: Vec<Finding>,
}

impl Candidates {
    fn push(&mut self, rule: Rule, path: &str, line: u32, col: u32, message: String) {
        if self
            .findings
            .iter()
            .any(|f| f.rule == rule && f.path == path && f.line == line)
        {
            return;
        }
        self.findings.push(Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            message,
        });
    }
}

/// Analyze a set of `(workspace-relative path, source)` pairs as one
/// workspace: parse, build the call graph, evaluate every rule, then
/// match suppressions per file.
pub fn analyze_sources(inputs: &[(String, String)]) -> WorkspaceAnalysis {
    let models: Vec<FileModel> = inputs
        .iter()
        .filter(|(p, _)| !is_test_path(p))
        .map(|(p, s)| parse_file(p, s))
        .collect();
    let ws = Workspace::build(models);

    let mut cand = Candidates {
        findings: Vec::new(),
    };
    direct_token_rules(&ws, &mut cand);
    rule_p1(&ws, &mut cand);
    rule_c1(&ws, &mut cand);
    rule_hash_flow(&ws, &mut cand);
    rule_cross_crate_sources(&ws, &mut cand);

    // Drop candidates that land inside test-gated ranges (facts are
    // computed per fn and already skip `in_test` fns; the token pass
    // filters by line — this is the common net for both).
    let mut out = WorkspaceAnalysis::default();
    let mut findings = Vec::new();

    for file in &ws.files {
        // Suppressions for this file.
        let mut sups: Vec<Suppression> = Vec::new();
        for c in &file.comments {
            if in_ranges(&file.test_ranges, c.line) {
                continue;
            }
            // Doc comments (`///`, `//!`, `/** */`) never carry live
            // suppressions — they may quote the grammar as documentation.
            if matches!(c.text.as_bytes().first(), Some(b'/' | b'!' | b'*')) {
                continue;
            }
            match parse_suppression(&c.text) {
                None => {}
                Some(Err(msg)) => {
                    findings.push(Finding {
                        rule: Rule::BadSuppression,
                        path: file.path.clone(),
                        line: c.line,
                        col: 1,
                        message: msg,
                    });
                }
                Some(Ok((rule, justification))) => {
                    sups.push(Suppression {
                        path: file.path.clone(),
                        line: c.line,
                        match_line: c.end_line,
                        rule,
                        justification,
                        used: false,
                    });
                }
            }
        }
        for f in cand
            .findings
            .iter()
            .filter(|f| f.path == file.path && !in_ranges(&file.test_ranges, f.line))
        {
            let waived = sups.iter_mut().find(|s| {
                s.rule == f.rule && (s.match_line == f.line || s.match_line + 1 == f.line)
            });
            match waived {
                Some(s) => s.used = true,
                None => findings.push(f.clone()),
            }
        }
        for s in &sups {
            if !s.used {
                findings.push(Finding {
                    rule: Rule::UnusedSuppression,
                    path: file.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("suppression for `{}` waives nothing", s.rule.slug()),
                });
            }
        }
        out.suppressions.extend(sups);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out.findings = findings;
    out
}

/// Single-file compatibility wrapper over [`analyze_sources`].
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let r = analyze_sources(&[(path.to_string(), src.to_string())]);
    FileAnalysis {
        findings: r.findings,
        suppressions: r.suppressions,
    }
}

/// The token-level direct rules that need no dataflow: D2 direct clock
/// reads, D3 direct randomness, D4 host-time presence on snapshot
/// paths, U1 undocumented unsafe.
fn direct_token_rules(ws: &Workspace, cand: &mut Candidates) {
    for file in &ws.files {
        let path = file.path.as_str();
        let sim = is_sim_crate(path);
        let time_exempt = is_host_time_exempt(path);
        let snap = is_snapshot_path(path);
        let thread_exempt = THREAD_EXEMPT.iter().any(|e| path.ends_with(e));
        for (i, t) in file.toks.iter().enumerate() {
            if in_ranges(&file.test_ranges, t.line) {
                continue;
            }
            let Some(id) = t.ident() else { continue };
            match id {
                // On snapshot paths any host-time type is banned outright —
                // even stored or formatted, not just `::now()` reads.
                "Instant" | "SystemTime" | "UNIX_EPOCH" if snap => {
                    cand.push(
                        Rule::SnapNondet,
                        path,
                        t.line,
                        t.col,
                        format!("host timestamp `{id}` on a snapshot encode/decode path"),
                    );
                }
                "Instant" | "SystemTime"
                    if !time_exempt && crate::taint::follows_path_call(&file.toks, i, "now") =>
                {
                    cand.push(
                        Rule::HostTime,
                        path,
                        t.line,
                        t.col,
                        format!("`{id}::now()` outside the designated host-timing modules"),
                    );
                }
                "Mutex" | "RwLock" | "Condvar" | "mpsc" if sim && !thread_exempt => {
                    cand.push(
                        Rule::HostThread,
                        path,
                        t.line,
                        t.col,
                        format!("host threading primitive `{id}` outside the executor modules"),
                    );
                }
                "thread"
                    if sim
                        && !thread_exempt
                        && crate::taint::follows_path_call(&file.toks, i, "spawn") =>
                {
                    cand.push(
                        Rule::HostThread,
                        path,
                        t.line,
                        t.col,
                        "`thread::spawn` outside the executor modules".to_string(),
                    );
                }
                "thread_rng" | "from_entropy" | "RandomState" | "OsRng" if sim => {
                    cand.push(
                        Rule::AmbientRng,
                        path,
                        t.line,
                        t.col,
                        format!("ambient randomness source `{id}` in a sim crate"),
                    );
                }
                "unsafe" => {
                    let covered = file.comments.iter().any(|c| {
                        c.text.contains("SAFETY:")
                            && c.end_line <= t.line
                            && c.end_line + 3 >= t.line
                    });
                    if !covered {
                        cand.push(
                            Rule::UnsafeNoSafety,
                            path,
                            t.line,
                            t.col,
                            "`unsafe` without a `// SAFETY:` comment".to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// P1: interprocedural panic-reachability from the receive roots.
fn rule_p1(ws: &Workspace, cand: &mut Candidates) {
    let mut roots = Vec::new();
    for (suffix, names) in PANIC_PATH_REGIONS {
        for name in *names {
            roots.extend(ws.find(suffix, name));
        }
    }
    let parents = ws.bfs(&roots, |m| {
        is_sim_crate(ws.path(m))
            && !ws.def(m).in_test
            && !P1_BOUNDARY_FNS.contains(&ws.def(m).name.as_str())
    });
    let root_set: BTreeSet<usize> = roots.iter().copied().collect();
    // Visit in deterministic node order.
    for (&n, _) in parents.iter() {
        let path = ws.path(n).to_string();
        let facts = &ws.facts[n];
        let is_root = root_set.contains(&n);
        let chain = ws.chain(&parents, n);
        let root_name = chain.first().cloned().unwrap_or_default();
        let via = chain.join(" → ");
        for site in facts.panic_unwraps.iter().chain(&facts.panic_macros) {
            let message = if is_root {
                format!("{} on a protocol receive path", site.what)
            } else {
                format!(
                    "{} reachable from receive root `{root_name}` (via {via})",
                    site.what
                )
            };
            cand.push(Rule::PanicPath, &path, site.line, site.col, message);
        }
        if is_root {
            for site in &facts.range_slices {
                cand.push(
                    Rule::PanicPath,
                    &path,
                    site.line,
                    site.col,
                    "range-slice indexing on a protocol receive path (panics on short input)"
                        .to_string(),
                );
            }
        }
    }
}

/// C1: shard isolation over everything reachable from the dispatch
/// roots (the serial loop's dispatcher and the parallel driver's entry).
fn rule_c1(ws: &Workspace, cand: &mut Candidates) {
    let mut roots = Vec::new();
    for (suffix, name) in C1_ROOTS {
        roots.extend(ws.find(suffix, name));
    }
    let parents = ws.bfs(&roots, |m| is_c1_crate(ws.path(m)) && !ws.def(m).in_test);
    for (&n, _) in parents.iter() {
        let path = ws.path(n).to_string();
        let def = ws.def(n);
        if C1_MEDIATORS
            .iter()
            .any(|(suffix, name)| path.ends_with(suffix) && def.name == *name)
        {
            continue;
        }
        let chain = ws.chain(&parents, n).join(" → ");
        let fn_name = ws.name(n);
        let sites: Vec<_> = ws.facts[n]
            .indexes
            .iter()
            .filter(|s| PER_NODE_FIELDS.contains(&s.field.as_str()))
            .collect();
        let mut seen_roots: Vec<String> = Vec::new();
        for s in &sites {
            if s.literal {
                cand.push(
                    Rule::ShardIsolation,
                    &path,
                    s.line,
                    s.col,
                    format!(
                        "per-node state `{}` indexed by a literal in `{fn_name}` (reachable via {chain})",
                        s.field
                    ),
                );
            }
            if s.arith {
                cand.push(
                    Rule::ShardIsolation,
                    &path,
                    s.line,
                    s.col,
                    format!(
                        "per-node state `{}` indexed by an arithmetic expression in `{fn_name}` \
                         (reachable via {chain}); derive the owning node's index, don't compute \
                         a neighbour's",
                        s.field
                    ),
                );
            }
            for r in &s.roots {
                if !seen_roots.contains(r) {
                    if !seen_roots.is_empty() {
                        cand.push(
                            Rule::ShardIsolation,
                            &path,
                            s.line,
                            s.col,
                            format!(
                                "per-node state reached through multiple index roots (`{}`, `{r}`) \
                                 in `{fn_name}` (reachable via {chain}); cross-shard access must \
                                 go through EventQueue scheduling or a designated mediator",
                                seen_roots.join("`, `")
                            ),
                        );
                    }
                    seen_roots.push(r.clone());
                }
            }
        }
    }
}

/// D1/D4 hash part: flow-sensitive order-observation findings plus
/// interprocedural escapes into order-observing callees.
fn rule_hash_flow(ws: &Workspace, cand: &mut Candidates) {
    // Transitive "observes the order of its hash-typed params" with
    // witness edges for chain reconstruction.
    let mut obs: Vec<Reach> = (0..ws.nodes.len())
        .map(|i| {
            if ws.facts[i].observes_hash_param {
                Reach::Direct
            } else {
                Reach::No
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..ws.nodes.len() {
            if obs[i].holds() {
                continue;
            }
            for &(ci, c) in &ws.resolved_calls[i] {
                if obs[c].holds() && !ws.facts[i].calls[ci].hash_param_args.is_empty() {
                    obs[i] = Reach::Via(c);
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for n in 0..ws.nodes.len() {
        let path = ws.path(n).to_string();
        if ws.def(n).in_test {
            continue;
        }
        let sim = is_sim_crate(&path);
        let snap = is_snapshot_path(&path);
        if !sim && !snap {
            continue;
        }
        // D4 outranks D1 on snapshot paths: same hazard, stricter contract.
        let rule = if snap {
            Rule::SnapNondet
        } else {
            Rule::NondetMap
        };
        for u in &ws.facts[n].hash_uses {
            cand.push(
                rule,
                &path,
                u.site.line,
                u.site.col,
                format!("hash-ordered `{}`: {}", u.name, u.site.what),
            );
        }
        // Escapes through calls.
        let resolved: BTreeSet<usize> = ws.resolved_calls[n].iter().map(|&(ci, _)| ci).collect();
        for &(ci, c) in &ws.resolved_calls[n] {
            let call = &ws.facts[n].calls[ci];
            if call.hash_args.is_empty() {
                continue;
            }
            let cpath = ws.path(c);
            // A callee in a guarded crate gets flagged at its own
            // observation site; flagging the caller too is noise.
            if obs[c].holds() && !is_sim_crate(cpath) && !is_snapshot_path(cpath) {
                let chain = ws.reach_chain(&obs, c).join(" → ");
                cand.push(
                    rule,
                    &path,
                    call.line,
                    call.col,
                    format!(
                        "hash-ordered `{}` passed to `{}`, which observes its iteration order \
                         (via {chain})",
                        call.hash_args.join("`, `"),
                        ws.name(c)
                    ),
                );
            }
        }
        for (ci, call) in ws.facts[n].calls.iter().enumerate() {
            if resolved.contains(&ci) || call.hash_args.is_empty() {
                continue;
            }
            // Constructors and vetted std operations are order-free or
            // covered by the chain classifier; anything else unresolved
            // is conservatively flagged.
            if call.callee.chars().next().is_some_and(|c| c.is_uppercase())
                || STD_METHODS.contains(&call.callee.as_str())
                || KEYED_SAFE.contains(&call.callee.as_str())
                || PASSTHROUGH.contains(&call.callee.as_str())
                || ORDER_OBSERVING.contains(&call.callee.as_str())
            {
                continue;
            }
            cand.push(
                rule,
                &path,
                call.line,
                call.col,
                format!(
                    "hash-ordered `{}` passed to unresolved call `{}`; order-freedom cannot \
                     be proven",
                    call.hash_args.join("`, `"),
                    call.callee
                ),
            );
        }
    }
}

/// D2/D3/D4 interprocedural: calls from guarded functions out of the
/// guarded crates into functions that transitively reach a host clock
/// or ambient randomness.
fn rule_cross_crate_sources(ws: &Workspace, cand: &mut Candidates) {
    let time_reach = ws.reaches(|i| !ws.facts[i].time_now.is_empty());
    let rng_reach = ws.reaches(|i| !ws.facts[i].rng.is_empty());
    for n in 0..ws.nodes.len() {
        let path = ws.path(n).to_string();
        if ws.def(n).in_test {
            continue;
        }
        let sim = is_sim_crate(&path);
        let snap = is_snapshot_path(&path);
        if !sim && !snap {
            continue;
        }
        let caller_name = ws.name(n);
        for &(ci, c) in &ws.resolved_calls[n] {
            let cpath = ws.path(c);
            // Inside the guarded crates the callee is flagged at its own
            // site (directly or by this same rule one level down).
            if is_sim_crate(cpath) || is_snapshot_path(cpath) {
                continue;
            }
            let call = &ws.facts[n].calls[ci];
            if time_reach[c].holds() {
                let chain = ws.reach_chain(&time_reach, c).join(" → ");
                let rule = if snap {
                    Rule::SnapNondet
                } else {
                    Rule::HostTime
                };
                cand.push(
                    rule,
                    &path,
                    call.line,
                    call.col,
                    format!(
                        "call into `{}` transitively reads the host clock \
                         (via {caller_name} → {chain})",
                        ws.name(c)
                    ),
                );
            }
            if sim && rng_reach[c].holds() {
                let chain = ws.reach_chain(&rng_reach, c).join(" → ");
                cand.push(
                    Rule::AmbientRng,
                    &path,
                    call.line,
                    call.col,
                    format!(
                        "call into `{}` transitively draws ambient randomness \
                         (via {caller_name} → {chain})",
                        ws.name(c)
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_grammar() {
        assert!(parse_suppression("ordinary comment").is_none());
        let ok = parse_suppression("cni-lint: allow(nondet-map) -- keyed lookups only");
        assert!(matches!(ok, Some(Ok((Rule::NondetMap, _)))));
        assert!(matches!(
            parse_suppression("cni-lint: allow(shard-isolation) -- mediator"),
            Some(Ok((Rule::ShardIsolation, _)))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(nondet-map)"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(nondet-map) -- "),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(made-up-rule) -- why"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_suppression("cni-lint: allow(unused-suppression) -- meta"),
            Some(Err(_))
        ));
    }

    #[test]
    fn crate_classification() {
        assert!(is_sim_crate("crates/dsm/src/node.rs"));
        assert!(is_sim_crate("crates/trace/src/lib.rs"));
        assert!(!is_sim_crate("crates/apps/src/lib.rs"));
        assert!(!is_sim_crate("crates/batch/src/lib.rs"));
        assert!(is_host_time_exempt("crates/batch/src/lib.rs"));
        assert!(is_host_time_exempt("crates/bench/src/lib.rs"));
        assert!(!is_host_time_exempt("crates/sim/src/time.rs"));
        assert!(is_snapshot_path("crates/snap/src/lib.rs"));
        assert!(is_snapshot_path("crates/core/src/snapshot.rs"));
        assert!(!is_snapshot_path("crates/core/src/world.rs"));
        assert!(is_test_path("crates/nic/tests/msgcache_model.rs"));
        assert!(is_test_path("tests/byte_identity.rs"));
        assert!(!is_test_path("crates/nic/src/msgcache.rs"));
        assert!(is_c1_crate("crates/nic/src/device.rs"));
        assert!(!is_c1_crate("crates/atm/src/fabric.rs"));
    }

    #[test]
    fn every_rule_has_explain_text() {
        for r in Rule::all() {
            assert!(!r.explain().is_empty());
            assert!(r.explain().contains(r.slug()), "{}", r.slug());
        }
    }
}
