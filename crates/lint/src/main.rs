//! The `cni-lint` binary: walk the workspace, enforce the determinism
//! contract, print diagnostics.
//!
//! ```text
//! cni-lint [--root <dir>] [--json | --sarif] [--check]
//!          [--baseline <file>] [--write-baseline <file>]
//!          [--explain <rule>]
//! ```
//!
//! * `--root <dir>` — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` section).
//! * `--json` — machine-readable schema-versioned report on stdout.
//! * `--sarif` — SARIF 2.1.0 report on stdout (for code-scanning UIs).
//! * `--check` — exit non-zero when any unsuppressed finding exists
//!   (the CI gate mode). With `--baseline`, only *new* findings fail.
//! * `--baseline <file>` — committed findings baseline; accepted
//!   findings are filtered from the report and from `--check`.
//! * `--write-baseline <file>` — snapshot current findings as the new
//!   baseline and exit.
//! * `--explain <rule>` — print the long-form rationale for a rule (by
//!   id `P1` or slug `panic-path`) and exit.

use cni_lint::walk::find_workspace_root;
use cni_lint::{analyze_workspace, render_json, render_text};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut sarif = false;
    let mut check = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--check" => check = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--write-baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                let Some(name) = args.next() else {
                    eprintln!("--explain needs a rule id or slug (try `--explain P1`)");
                    return ExitCode::from(2);
                };
                match cni_lint::report::render_explain(&name) {
                    Some(text) => {
                        print!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown rule `{name}`; known: {}",
                            cni_lint::Rule::all()
                                .iter()
                                .map(|r| format!("{} ({})", r.id(), r.slug()))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: cni-lint [--root <dir>] [--json | --sarif] [--check] \
                     [--baseline <file>] [--write-baseline <file>] [--explain <rule>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a workspace root; pass --root <dir>");
            return ExitCode::from(2);
        }
    };
    let mut report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cni-lint: I/O error while scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = write_baseline {
        let text = cni_lint::baseline::render(&report.findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("cni-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "baseline written: {} entr{} -> {}",
            report.findings.len(),
            if report.findings.len() == 1 {
                "y"
            } else {
                "ies"
            },
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cni-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match cni_lint::baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cni-lint: bad baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let before = report.findings.len();
        report.findings.retain(|f| !baseline.accepts(f));
        let accepted = before - report.findings.len();
        if accepted > 0 && !json && !sarif {
            eprintln!(
                "{accepted} finding(s) accepted by baseline {}",
                path.display()
            );
        }
    }
    if json {
        print!("{}", render_json(&report));
    } else if sarif {
        print!("{}", cni_lint::report::render_sarif(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if check && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
