//! The `cni-lint` binary: walk the workspace, enforce the determinism
//! contract, print diagnostics.
//!
//! ```text
//! cni-lint [--root <dir>] [--json] [--check]
//! ```
//!
//! * `--root <dir>` — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` section).
//! * `--json` — machine-readable report on stdout instead of text.
//! * `--check` — exit non-zero when any unsuppressed finding exists
//!   (the CI gate mode).

use cni_lint::walk::find_workspace_root;
use cni_lint::{analyze_workspace, render_json, render_text};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: cni-lint [--root <dir>] [--json] [--check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a workspace root; pass --root <dir>");
            return ExitCode::from(2);
        }
    };
    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cni-lint: I/O error while scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if check && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
