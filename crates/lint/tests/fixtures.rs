//! Fixture-based self-tests: every rule must fire on a seeded-bad
//! snippet at the expected lines, and stay quiet on its clean
//! counterpart. Fixtures live in `tests/fixtures/` and are analyzed
//! under *virtual* workspace-relative paths, because crate
//! classification (sim vs host-timing vs test code) is derived from the
//! path, not the file's real location.

use cni_lint::rules::{analyze_source, analyze_sources, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// `(rule, line)` pairs of an analysis, in report order.
fn hits(path: &str, src: &str) -> Vec<(Rule, u32)> {
    analyze_source(path, src)
        .findings
        .iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn d1_fires_on_observed_hash_order_in_sim_crates() {
    let src = fixture("d1_bad.rs");
    assert_eq!(
        hits("crates/dsm/src/fixture.rs", &src),
        vec![
            (Rule::NondetMap, 9),  // self.flows.iter() feeding collect
            (Rule::NondetMap, 14), // for .. in self.flows.values()
        ]
    );
}

#[test]
fn d1_quiet_on_keyed_hash_access() {
    // Flow sensitivity: *declaring* a HashMap is fine; only observing
    // its iteration order is a finding. Keyed get/insert/len stay quiet
    // — this is what let the standing per-field waivers be deleted.
    let src = fixture("d1_clean.rs");
    assert!(hits("crates/dsm/src/fixture.rs", &src).is_empty());
}

#[test]
fn d1_quiet_outside_sim_crates() {
    // Same bad source, but under a non-determinism-sensitive crate:
    // cni-batch may key host-side bookkeeping however it likes.
    let src = fixture("d1_bad.rs");
    assert!(hits("crates/batch/src/fixture.rs", &src).is_empty());
}

#[test]
fn d1_quiet_in_cfg_test_code() {
    let src = fixture("d1_test_code.rs");
    assert!(hits("crates/dsm/src/fixture.rs", &src).is_empty());
}

#[test]
fn d1_suppression_waives_and_is_reported_used() {
    let src = fixture("d1_suppressed.rs");
    let analysis = analyze_source("crates/nic/src/fixture.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    for s in &analysis.suppressions {
        assert!(s.used, "suppression at line {} unused", s.line);
        assert!(!s.justification.is_empty());
    }
}

#[test]
fn d2_fires_on_host_clocks_anywhere_outside_exempt_modules() {
    let src = fixture("d2_bad.rs");
    // cni-apps is not even a sim crate — D2 applies workspace-wide.
    assert_eq!(
        hits("crates/apps/src/fixture.rs", &src),
        vec![(Rule::HostTime, 4), (Rule::HostTime, 8)]
    );
}

#[test]
fn d2_quiet_in_designated_host_timing_modules() {
    let src = fixture("d2_bad.rs");
    assert!(hits("crates/batch/src/lib.rs", &src).is_empty());
    assert!(hits("crates/bench/src/fixture.rs", &src).is_empty());
}

#[test]
fn d3_fires_on_ambient_randomness_in_sim_crates() {
    let src = fixture("d3_bad.rs");
    assert_eq!(
        hits("crates/sim/src/fixture.rs", &src),
        vec![(Rule::AmbientRng, 2)]
    );
}

#[test]
fn d3_quiet_on_config_seeded_rng() {
    let src = fixture("d3_clean.rs");
    assert!(hits("crates/sim/src/fixture.rs", &src).is_empty());
}

#[test]
fn d4_fires_on_snapshot_encode_paths() {
    let src = fixture("d4_bad.rs");
    let expected = vec![
        (Rule::SnapNondet, 2), // use ... SystemTime (type ban stays presence-based)
        (Rule::SnapNondet, 5), // stored SystemTime (even without ::now())
        (Rule::SnapNondet, 7), // map.iter() observes hashed order during encode
    ];
    assert_eq!(hits("crates/snap/src/fixture.rs", &src), expected);
    assert_eq!(hits("crates/core/src/snapshot.rs", &src), expected);
}

#[test]
fn d4_quiet_on_sorted_collections() {
    let src = fixture("d4_clean.rs");
    assert!(hits("crates/snap/src/fixture.rs", &src).is_empty());
}

#[test]
fn d4_quiet_off_snapshot_paths() {
    // The same source outside the snapshot paths: cni-batch is neither a
    // sim crate (no D1) nor reading a clock (no D2), so nothing fires.
    let src = fixture("d4_bad.rs");
    assert!(hits("crates/batch/src/fixture.rs", &src).is_empty());
}

#[test]
fn d4_outranks_d1_on_snapshot_paths() {
    // `crates/core` is a sim crate, but inside its snapshot module the
    // hashed-collection finding must carry the stricter D4 rule, not D1.
    let src = fixture("d1_bad.rs");
    let found = analyze_source("crates/core/src/snapshot.rs", &src);
    assert!(!found.findings.is_empty());
    assert!(found.findings.iter().all(|f| f.rule == Rule::SnapNondet));
}

#[test]
fn d4_suppression_waives_and_is_reported_used() {
    let src = fixture("d4_suppressed.rs");
    let analysis = analyze_source("crates/snap/src/fixture.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    for s in &analysis.suppressions {
        assert!(s.used, "suppression at line {} unused", s.line);
    }
}

#[test]
fn p1_fires_inside_protocol_receive_fns_only() {
    let src = fixture("p1_bad.rs");
    // `push` is an AAL5 receive-path function; the helper below it is
    // not, so its `.expect()` must NOT be flagged.
    assert_eq!(
        hits("crates/atm/src/aal5.rs", &src),
        vec![
            (Rule::PanicPath, 2), // &buf[0..4]
            (Rule::PanicPath, 3), // .unwrap()
            (Rule::PanicPath, 5), // panic!
        ]
    );
}

#[test]
fn p1_quiet_on_get_based_parsing() {
    let src = fixture("p1_clean.rs");
    assert!(hits("crates/atm/src/aal5.rs", &src).is_empty());
}

#[test]
fn p1_covers_pdubuf_view_methods() {
    // The zero-copy PduBuf view/split methods are on the receive path:
    // panicking slice indexing inside them is a P1 finding, while other
    // methods of the same file stay out of scope.
    let src = fixture("p1_bufview_bad.rs");
    assert_eq!(
        hits("crates/atm/src/buf.rs", &src),
        vec![
            (Rule::PanicPath, 3), // &self.data[offset..offset + len]
            (Rule::PanicPath, 8), // .unwrap()
        ]
    );
}

#[test]
fn p1_covers_span_recording_helpers_in_world() {
    // The span-recording helpers (`record_rx_span`, `close_span`) run
    // inside the frame/ack receive paths; panicking operators inside
    // them are P1 findings, while neighbouring setup helpers stay out
    // of scope.
    let src = fixture("p1_span_bad.rs");
    assert_eq!(
        hits("crates/core/src/world.rs", &src),
        vec![
            (Rule::PanicPath, 2), // spans[idx]
            (Rule::PanicPath, 7), // .unwrap()
        ]
    );
}

#[test]
fn p1_quiet_on_panic_free_span_helpers() {
    let src = fixture("p1_span_clean.rs");
    assert!(hits("crates/core/src/world.rs", &src).is_empty());
}

#[test]
fn p1_covers_topology_routing() {
    // Topology routing runs under the fabric's per-cell forwarding:
    // panicking operators inside `route`/`leaf_of` are P1 findings,
    // while shape arithmetic helpers in the same file stay out of scope.
    let src = fixture("p1_routing_bad.rs");
    assert_eq!(
        hits("crates/atm/src/topology.rs", &src),
        vec![
            (Rule::PanicPath, 2), // &spines[src..dst]
            (Rule::PanicPath, 3), // .unwrap()
            (Rule::PanicPath, 7), // .expect(...)
        ]
    );
}

#[test]
fn p1_quiet_on_panic_free_routing() {
    let src = fixture("p1_routing_clean.rs");
    assert!(hits("crates/atm/src/topology.rs", &src).is_empty());
}

#[test]
fn p1_routing_suppression_waives() {
    let src = fixture("p1_routing_suppressed.rs");
    let analysis = analyze_source("crates/atm/src/topology.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    assert!(analysis.suppressions[0].used);
}

#[test]
fn p1_covers_the_collective_dispatch_path() {
    // `arrive_proto` hosts the NIC-collective dispatch on the message
    // receive path; panics there are P1 findings.
    let src = fixture("p1_collective_bad.rs");
    assert_eq!(
        hits("crates/core/src/world.rs", &src),
        vec![
            (Rule::PanicPath, 3), // .unwrap()
            (Rule::PanicPath, 4), // notices[0..1]
        ]
    );
}

#[test]
fn d1_covers_the_obs_crate() {
    // cni-obs folds traces into user-visible reports: its iteration
    // order is part of the determinism contract like any sim crate.
    let src = fixture("d1_bad.rs");
    assert!(!hits("crates/obs/src/fixture.rs", &src).is_empty());
}

#[test]
fn p1_quiet_when_file_is_not_a_receive_path() {
    // The same panicking code outside the registered receive-path files
    // is not P1's business.
    let src = fixture("p1_bad.rs");
    assert!(hits("crates/apps/src/fixture.rs", &src).is_empty());
}

#[test]
fn p1_suppression_on_line_above_waives() {
    let src = fixture("p1_suppressed.rs");
    let analysis = analyze_source("crates/atm/src/aal5.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    assert!(analysis.suppressions[0].used);
}

#[test]
fn t1_fires_on_host_threading_in_sim_crates() {
    let src = fixture("t1_bad.rs");
    assert_eq!(
        hits("crates/dsm/src/fixture.rs", &src),
        vec![
            (Rule::HostThread, 1), // use std::sync::{mpsc, Mutex}
            (Rule::HostThread, 4), // Mutex field
            (Rule::HostThread, 8), // mpsc::channel()
            (Rule::HostThread, 9), // std::thread::spawn
        ]
    );
}

#[test]
fn t1_quiet_on_event_queue_style_code() {
    let src = fixture("t1_clean.rs");
    assert!(hits("crates/dsm/src/fixture.rs", &src).is_empty());
}

#[test]
fn t1_quiet_in_the_designated_executor_modules() {
    // The executor, its World driver, and the co-thread runtime are the
    // three sanctioned host-concurrency sites.
    let src = fixture("t1_bad.rs");
    assert!(hits("crates/sim/src/pdes.rs", &src).is_empty());
    assert!(hits("crates/sim/src/cothread.rs", &src).is_empty());
    assert!(hits("crates/core/src/pdes.rs", &src).is_empty());
}

#[test]
fn t1_quiet_outside_sim_crates() {
    // cni-batch is a host-side work-stealing pool: threads are its job.
    let src = fixture("t1_bad.rs");
    assert!(hits("crates/batch/src/fixture.rs", &src).is_empty());
}

#[test]
fn t1_suppression_waives_and_is_reported_used() {
    let src = fixture("t1_suppressed.rs");
    let analysis = analyze_source("crates/trace/src/fixture.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 2);
    for s in &analysis.suppressions {
        assert_eq!(s.rule, Rule::HostThread);
        assert!(s.used, "suppression at line {} unused", s.line);
    }
}

#[test]
fn u1_fires_on_unsafe_without_safety_comment() {
    let src = fixture("u1_bad.rs");
    assert_eq!(
        hits("crates/nic/src/fixture.rs", &src),
        vec![(Rule::UnsafeNoSafety, 2)]
    );
}

#[test]
fn u1_quiet_with_safety_comment() {
    let src = fixture("u1_clean.rs");
    assert!(hits("crates/nic/src/fixture.rs", &src).is_empty());
}

#[test]
fn s1_fires_on_malformed_suppressions() {
    let src = fixture("s1_bad.rs");
    assert_eq!(
        hits("crates/dsm/src/fixture.rs", &src),
        vec![
            (Rule::BadSuppression, 1), // unknown rule slug
            (Rule::BadSuppression, 4), // missing `-- <justification>`
        ]
    );
}

// ---------------------------------------------------------------------------
// Interprocedural trios: bad / clean / suppressed for the v2 call-graph
// rules. Each bad fixture hides the hazard behind at least one call so a
// token scanner could never find it.
// ---------------------------------------------------------------------------

#[test]
fn p1_interproc_finds_panic_two_calls_below_a_receive_root() {
    let src = fixture("p1_interproc_bad.rs");
    let analysis = analyze_source("crates/core/src/world.rs", &src);
    let f: Vec<_> = analysis.findings.iter().collect();
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].rule, f[0].line), (Rule::PanicPath, 15));
    // The diagnostic must carry the full call chain from the root.
    assert!(
        f[0].message.contains("receive root `World::on_frame_rx`"),
        "{}",
        f[0].message
    );
    assert!(
        f[0].message
            .contains("World::on_frame_rx → World::validate_seq → World::window_slot"),
        "{}",
        f[0].message
    );
}

#[test]
fn p1_interproc_quiet_when_the_leaf_returns_option() {
    let src = fixture("p1_interproc_clean.rs");
    assert!(hits("crates/core/src/world.rs", &src).is_empty());
}

#[test]
fn p1_interproc_suppression_at_the_leaf_waives() {
    let src = fixture("p1_interproc_suppressed.rs");
    let analysis = analyze_source("crates/core/src/world.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    assert!(analysis.suppressions[0].used);
}

/// Run a caller fixture together with the shared `d1_helper.rs` (a
/// non-sim utility crate) so the hash-escape rule sees both sides.
fn with_helper(caller_name: &str) -> cni_lint::rules::WorkspaceAnalysis {
    let inputs = vec![
        (
            "crates/core/src/report.rs".to_string(),
            fixture(caller_name),
        ),
        (
            "crates/apps/src/rows.rs".to_string(),
            fixture("d1_helper.rs"),
        ),
    ];
    analyze_sources(&inputs)
}

#[test]
fn d1_interproc_finds_iteration_laundered_through_a_helper_crate() {
    // The sim-crate caller never iterates; it hands its HashMap to a
    // helper in a non-guarded crate that does. The finding lands on the
    // caller's call site, naming the observing callee.
    let analysis = with_helper("d1_interproc_bad.rs");
    let f: Vec<_> = analysis.findings.iter().collect();
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].path, "crates/core/src/report.rs");
    assert_eq!((f[0].rule, f[0].line), (Rule::NondetMap, 8));
    assert!(
        f[0].message.contains("passed to `rows_of`"),
        "{}",
        f[0].message
    );
}

#[test]
fn d1_interproc_quiet_when_the_helper_is_keyed() {
    let analysis = with_helper("d1_interproc_clean.rs");
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
}

#[test]
fn d1_interproc_suppression_at_the_call_site_waives() {
    let analysis = with_helper("d1_interproc_suppressed.rs");
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    assert!(analysis.suppressions[0].used);
}

#[test]
fn c1_interproc_finds_cross_node_access_via_a_free_function() {
    let src = fixture("c1_interproc_bad.rs");
    let analysis = analyze_source("crates/core/src/world.rs", &src);
    let f: Vec<_> = analysis.findings.iter().collect();
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].rule, f[0].line), (Rule::ShardIsolation, 13));
    assert!(
        f[0].message.contains("multiple index roots (`src`, `dst`)"),
        "{}",
        f[0].message
    );
    assert!(
        f[0].message.contains("World::dispatch → forward"),
        "{}",
        f[0].message
    );
}

#[test]
fn c1_interproc_quiet_on_single_root_access() {
    let src = fixture("c1_interproc_clean.rs");
    assert!(hits("crates/core/src/world.rs", &src).is_empty());
}

#[test]
fn c1_interproc_suppression_marks_a_mediator() {
    let src = fixture("c1_interproc_suppressed.rs");
    let analysis = analyze_source("crates/core/src/world.rs", &src);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressions.len(), 1);
    assert_eq!(analysis.suppressions[0].rule, Rule::ShardIsolation);
    assert!(analysis.suppressions[0].used);
}

#[test]
fn s2_fires_on_stale_suppressions() {
    let src = fixture("s2_unused.rs");
    let analysis = analyze_source("crates/dsm/src/fixture.rs", &src);
    assert_eq!(
        analysis
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect::<Vec<_>>(),
        vec![(Rule::UnusedSuppression, 1)]
    );
    assert_eq!(analysis.suppressions.len(), 1);
    assert!(!analysis.suppressions[0].used);
}
