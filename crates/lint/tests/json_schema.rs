//! The `--json` and `--sarif` envelopes are written by hand (the lint
//! is zero-dependency), so nothing at build time proves they are valid
//! JSON. These tests round-trip both through the vendored `serde_json`
//! and pin the schema-versioned envelope shape CI tooling keys on.

use cni_lint::rules::analyze_sources;
use cni_lint::walk::WorkspaceReport;
use cni_lint::{render_json, Rule};
use serde_json::Value;

/// A small workspace with one finding of each interesting shape: a D1
/// iteration, a P1 chain, and a used suppression.
fn sample_report() -> WorkspaceReport {
    let caller = r#"
use std::collections::HashMap;

pub struct T {
    m: HashMap<u32, u64>,
}

impl T {
    pub fn on_frame_rx(&self) -> Vec<u64> {
        self.helper()
    }

    fn helper(&self) -> Vec<u64> {
        let v: Vec<u64> = self.m.values().copied().collect();
        // cni-lint: allow(panic-path) -- fixture: "quoted" justification with back\slash
        v.first().copied().unwrap();
        v
    }
}
"#;
    let analysis = analyze_sources(&[("crates/core/src/world.rs".to_string(), caller.to_string())]);
    WorkspaceReport {
        findings: analysis.findings,
        suppressions: analysis.suppressions,
        files_scanned: 1,
    }
}

#[test]
fn json_envelope_parses_and_is_schema_versioned() {
    let report = sample_report();
    assert!(!report.findings.is_empty(), "sample must have findings");
    assert!(
        !report.suppressions.is_empty(),
        "sample must use its waiver"
    );
    let text = render_json(&report);
    let v: Value = serde_json::from_str(&text).expect("hand-rolled JSON must parse");
    assert_eq!(v.get("schema").and_then(Value::as_u64), Some(2));
    let tool = v.get("tool").expect("tool object");
    assert_eq!(
        tool.get("name").and_then(Value::as_str),
        Some("cni-lint"),
        "{text}"
    );
    assert!(tool.get("version").and_then(Value::as_str).is_some());
    assert_eq!(v.get("files_scanned").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("clean").and_then(Value::as_bool), Some(false));
    let findings = v
        .get("findings")
        .and_then(Value::as_array)
        .expect("findings");
    assert_eq!(findings.len(), report.findings.len());
    for (fv, f) in findings.iter().zip(&report.findings) {
        assert_eq!(fv.get("rule").and_then(Value::as_str), Some(f.rule.id()));
        assert_eq!(fv.get("slug").and_then(Value::as_str), Some(f.rule.slug()));
        assert_eq!(
            fv.get("path").and_then(Value::as_str),
            Some(f.path.as_str())
        );
        assert_eq!(
            fv.get("line").and_then(Value::as_u64),
            Some(u64::from(f.line))
        );
        assert_eq!(
            fv.get("message").and_then(Value::as_str),
            Some(f.message.as_str())
        );
    }
    let supps = v
        .get("suppressions")
        .and_then(Value::as_array)
        .expect("suppressions");
    assert_eq!(supps.len(), report.suppressions.len());
    // The justification deliberately contains a quote and a backslash:
    // escaping must survive the round trip byte-for-byte.
    assert_eq!(
        supps[0].get("justification").and_then(Value::as_str),
        Some(report.suppressions[0].justification.as_str())
    );
    assert_eq!(supps[0].get("used").and_then(Value::as_bool), Some(true));
}

#[test]
fn sarif_envelope_parses_with_locations() {
    let report = sample_report();
    let text = cni_lint::report::render_sarif(&report);
    let v: Value = serde_json::from_str(&text).expect("hand-rolled SARIF must parse");
    assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
    let runs = v.get("runs").and_then(Value::as_array).expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("driver");
    assert_eq!(driver.get("name").and_then(Value::as_str), Some("cni-lint"));
    let rules = driver
        .get("rules")
        .and_then(Value::as_array)
        .expect("rules");
    assert_eq!(rules.len(), Rule::all().len());
    let results = runs[0]
        .get("results")
        .and_then(Value::as_array)
        .expect("results");
    assert_eq!(results.len(), report.findings.len());
    for (rv, f) in results.iter().zip(&report.findings) {
        assert_eq!(rv.get("ruleId").and_then(Value::as_str), Some(f.rule.id()));
        let region = rv
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .expect("region");
        assert_eq!(
            region.get("startLine").and_then(Value::as_u64),
            Some(u64::from(f.line))
        );
    }
}
