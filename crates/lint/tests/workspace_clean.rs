//! The lint's own acceptance gate, as a test: the real workspace must
//! be clean, with every suppression both used and justified. This is
//! what CI's `cargo run -p cni-lint -- --check` enforces; keeping it in
//! `cargo test` too means a violation fails the ordinary test run even
//! where the CI step is skipped.

use std::path::Path;

#[test]
fn the_workspace_honors_the_determinism_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let report = cni_lint::walk::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 40,
        "scanned only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "determinism contract violated:\n{}",
        cni_lint::report::render_text(&report)
    );
    for s in &report.suppressions {
        assert!(s.used, "stale suppression {}:{}", s.path, s.line);
        assert!(
            !s.justification.is_empty(),
            "unjustified suppression {}:{}",
            s.path,
            s.line
        );
    }
}
