//! The lint's own acceptance gate, as a test: the real workspace must
//! be clean, with every suppression both used and justified. This is
//! what CI's `cargo run -p cni-lint -- --check` enforces; keeping it in
//! `cargo test` too means a violation fails the ordinary test run even
//! where the CI step is skipped.

use std::path::Path;

/// Collect every first-party source file under `crates/*/src`, the way
/// the walker does, as `(workspace-relative path, source)` pairs.
fn workspace_inputs(root: &Path) -> Vec<(String, String)> {
    fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            if p.is_dir() {
                collect(&p, root, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let rel = p
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, std::fs::read_to_string(&p).expect("read source")));
            }
        }
    }
    let mut inputs = Vec::new();
    for e in std::fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .flatten()
    {
        let src = e.path().join("src");
        if src.is_dir() {
            collect(&src, root, &mut inputs);
        }
    }
    inputs.sort();
    inputs
}

/// The C1 gate must be a *verified* true negative: if `World::dispatch`
/// stopped resolving or the per-node fields were renamed, C1 would fall
/// silent and its "clean" verdict would be vacuous. This test pins the
/// traversal itself: the BFS reaches a healthy slice of the core/nic/dsm
/// crates, a known set of handlers actually touches per-node state, and
/// every one of those handlers uses exactly one index root.
#[test]
fn c1_reachability_is_a_true_negative() {
    use cni_lint::callgraph::{crate_of, Workspace};
    use cni_lint::parse::parse_file;
    use cni_lint::rules::{C1_CRATES, PER_NODE_FIELDS};

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let files: Vec<_> = workspace_inputs(&root)
        .iter()
        .map(|(p, s)| parse_file(p, s))
        .collect();
    let ws = Workspace::build(files);
    let roots = ws.find("crates/core/src/world.rs", "dispatch");
    assert_eq!(roots.len(), 1, "World::dispatch must resolve uniquely");
    let parents = ws.bfs(&roots, |m| {
        C1_CRATES.contains(&crate_of(ws.path(m))) && !ws.def(m).in_test
    });
    assert!(
        parents.len() >= 50,
        "C1 BFS reached only {} fns from dispatch — the walk has gone silent",
        parents.len()
    );
    let mut touching = Vec::new();
    for (&n, _) in parents.iter() {
        let roots_seen: std::collections::BTreeSet<&str> = ws.facts[n]
            .indexes
            .iter()
            .filter(|s| PER_NODE_FIELDS.contains(&s.field.as_str()))
            .flat_map(|s| s.roots.iter().map(String::as_str))
            .collect();
        if !roots_seen.is_empty() {
            assert_eq!(
                roots_seen.len(),
                1,
                "{} indexes per-node state through {roots_seen:?}",
                ws.name(n)
            );
            touching.push(ws.name(n));
        }
    }
    // The known per-node handlers must be inside the walk; if dispatch's
    // fan-out is ever refactored, update this list consciously.
    for expected in [
        "World::on_frame_rx",
        "World::arrive_proto",
        "World::handle_op",
    ] {
        assert!(
            touching.iter().any(|n| n == expected),
            "{expected} no longer touches per-node state inside the C1 walk \
             (saw: {touching:?})"
        );
    }
}

#[test]
fn the_workspace_honors_the_determinism_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let report = cni_lint::walk::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 40,
        "scanned only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "determinism contract violated:\n{}",
        cni_lint::report::render_text(&report)
    );
    for s in &report.suppressions {
        assert!(s.used, "stale suppression {}:{}", s.path, s.line);
        assert!(
            !s.justification.is_empty(),
            "unjustified suppression {}:{}",
            s.path,
            s.line
        );
    }
}
