fn route(spines: &[u32], dst: usize) -> u32 {
    // cni-lint: allow(panic-path) -- dst was range-checked against hosts() at the fabric boundary
    spines[dst % spines.len().max(1)..].first().copied().unwrap_or(0)
}
