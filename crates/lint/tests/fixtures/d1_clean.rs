use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub struct FlowTable {
    flows: BTreeMap<u32, u64>,
    seen: BTreeSet<u32>,
}
