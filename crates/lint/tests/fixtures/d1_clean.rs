use std::collections::HashMap;

pub struct FlowTable {
    flows: HashMap<u32, u64>,
}

impl FlowTable {
    pub fn lookup(&self, k: u32) -> Option<u64> {
        self.flows.get(&k).copied()
    }

    pub fn bind(&mut self, k: u32, v: u64) {
        self.flows.insert(k, v);
    }

    pub fn occupancy(&self) -> usize {
        self.flows.len()
    }
}
