use std::collections::HashMap;

pub struct RunReport {
    pub rows: Vec<(u32, u64)>,
}

pub fn fill_report(flows: &HashMap<u32, u64>, keys: &[u32], out: &mut RunReport) {
    for &k in keys {
        if let Some(row) = row_of(flows, k) {
            out.rows.push(row);
        }
    }
}
