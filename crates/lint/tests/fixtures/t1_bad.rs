use std::sync::{mpsc, Mutex};

pub struct NodeState {
    inbox: Mutex<Vec<u64>>,
}

pub fn fan_out(states: &[NodeState]) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(1u64);
    });
    for v in rx.iter() {
        states[0].inbox.lock().unwrap().push(v);
    }
}
