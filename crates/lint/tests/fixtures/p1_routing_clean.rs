fn route(spines: &[u32], src: usize, dst: usize) -> u32 {
    spines
        .get(src..dst)
        .and_then(|pair| pair.first())
        .copied()
        .unwrap_or(0)
}

fn leaf_of(leaves: &[u32], host: usize) -> u32 {
    leaves.get(host).copied().unwrap_or(0)
}
