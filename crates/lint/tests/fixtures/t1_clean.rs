pub struct NodeState {
    inbox: Vec<u64>,
}

/// Cross-node effects ride the event queue: the handler records an
/// intent and the engine applies it at the destination's own dispatch.
pub fn fan_out(state: &mut NodeState, v: u64) {
    state.inbox.push(v);
}
