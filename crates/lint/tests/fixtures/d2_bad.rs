use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
