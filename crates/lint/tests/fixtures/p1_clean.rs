pub fn push(buf: &[u8]) -> Option<u32> {
    let head = buf.get(0..4)?;
    let mut field = [0u8; 4];
    field.copy_from_slice(head);
    Some(u32::from_be_bytes(field))
}
