pub struct World {
    pub nics: Vec<u32>,
}

impl World {
    pub fn dispatch(&mut self, dst: usize) {
        forward(self, dst);
    }
}

fn forward(w: &mut World, dst: usize) {
    let v = w.nics[dst];
    w.nics[dst] = v + 1;
}
