impl PduBuf {
    pub fn view(&self, offset: usize, len: usize) -> PduBuf {
        let bytes = &self.data[offset..offset + len];
        PduBuf::copy_from_slice(bytes)
    }

    pub fn xor_bit(&mut self, byte: usize, bit: u8) {
        let b = self.storage.get_mut(byte).unwrap();
        *b ^= 1 << (bit & 7);
    }

    // Not a registered view/split method: out of P1 scope.
    pub fn debug_dump(&self) -> String {
        format!("{:?}", &self.data[..self.end])
    }
}
