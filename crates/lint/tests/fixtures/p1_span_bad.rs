fn record_rx_span(spans: &[u64], idx: usize) -> u64 {
    let pair = &spans[idx..idx + 2];
    pair[0]
}

fn close_span(stack: &mut Vec<u64>) -> u64 {
    stack.pop().unwrap()
}

fn unrelated_setup_helper(spans: &[u64]) -> u64 {
    spans.iter().copied().max().expect("caller seeds one span")
}
