pub fn production_path(x: u32) -> u32 {
    x.wrapping_mul(3)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_maps_are_fine_in_test_code() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
