use std::collections::HashMap;

pub struct RunReport {
    pub rows: Vec<(u32, u64)>,
}

pub fn fill_report(flows: &HashMap<u32, u64>, out: &mut RunReport) {
    // cni-lint: allow(nondet-map) -- the rows are sorted by the caller before they reach serialization
    out.rows = rows_of(flows);
}
