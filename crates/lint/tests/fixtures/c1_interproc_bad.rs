pub struct World {
    pub nics: Vec<u32>,
}

impl World {
    pub fn dispatch(&mut self, src: usize, dst: usize) {
        forward(self, src, dst);
    }
}

fn forward(w: &mut World, src: usize, dst: usize) {
    let v = w.nics[src];
    w.nics[dst] = v;
}
