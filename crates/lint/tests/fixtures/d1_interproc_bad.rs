use std::collections::HashMap;

pub struct RunReport {
    pub rows: Vec<(u32, u64)>,
}

pub fn fill_report(flows: &HashMap<u32, u64>, out: &mut RunReport) {
    out.rows = rows_of(flows);
}
