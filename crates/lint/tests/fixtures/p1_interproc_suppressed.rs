pub struct World {
    slots: Vec<u64>,
}

impl World {
    pub fn on_frame_rx(&mut self, seq: u64) {
        self.validate_seq(seq);
    }

    fn validate_seq(&mut self, seq: u64) {
        self.window_slot(seq);
    }

    fn window_slot(&mut self, seq: u64) -> u64 {
        // cni-lint: allow(panic-path) -- seq is masked to the window size by the caller; the slot always exists
        *self.slots.get(seq as usize).unwrap()
    }
}
