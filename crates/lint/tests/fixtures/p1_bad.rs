pub fn push(buf: &[u8]) -> u32 {
    let head = &buf[0..4];
    let len = u32::from_be_bytes(head.try_into().unwrap());
    if len == 0 {
        panic!("zero-length PDU");
    }
    len
}

pub fn helper_outside_receive_path(buf: &[u8]) -> u8 {
    buf.first().copied().expect("caller checked non-empty")
}
