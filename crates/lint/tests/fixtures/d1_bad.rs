use std::collections::HashMap;

pub struct FlowTable {
    flows: HashMap<u32, u64>,
}

impl FlowTable {
    pub fn dump(&self) -> Vec<(u32, u64)> {
        self.flows.iter().map(|(k, v)| (*k, *v)).collect()
    }

    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for v in self.flows.values() {
            sum += v;
        }
        sum
    }
}
