use std::collections::HashMap;
use std::collections::HashSet;

pub struct FlowTable {
    flows: HashMap<u32, u64>,
    seen: HashSet<u32>,
}
