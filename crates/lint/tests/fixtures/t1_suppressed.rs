// cni-lint: allow(host-thread) -- read-only table shared with co-threads; never contended and never ordered
use std::sync::Mutex;

pub struct Shared {
    // cni-lint: allow(host-thread) -- same waived table as above
    table: Mutex<Vec<u64>>,
}

pub fn read(s: &Shared, i: usize) -> Option<u64> {
    s.table.lock().unwrap().get(i).copied()
}
