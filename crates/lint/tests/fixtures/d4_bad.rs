use std::collections::HashMap;
use std::time::SystemTime;

pub fn encode(map: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let written_at: Option<SystemTime> = None;
    let _ = written_at;
    map.iter().map(|(k, v)| (*k, *v)).collect()
}
