fn record_rx_span(spans: &[u64], idx: usize) -> u64 {
    spans.get(idx).copied().unwrap_or(0)
}

fn close_span(stack: &mut Vec<u64>) -> u64 {
    stack.pop().unwrap_or(0)
}
