pub fn rows_of(flows: &std::collections::HashMap<u32, u64>) -> Vec<(u32, u64)> {
    flows.iter().map(|(k, v)| (*k, *v)).collect()
}

pub fn row_of(flows: &std::collections::HashMap<u32, u64>, k: u32) -> Option<(u32, u64)> {
    flows.get(&k).map(|v| (k, *v))
}
