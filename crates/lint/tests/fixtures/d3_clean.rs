use rand::{Pcg32, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = Pcg32::seed_from_u64(seed);
    rng.next_u64()
}
