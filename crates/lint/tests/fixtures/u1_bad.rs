pub fn read_reg(p: *const u32) -> u32 {
    unsafe { p.read_volatile() }
}
