use std::collections::BTreeMap;

pub fn encode(map: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    map.iter().map(|(k, v)| (*k, *v)).collect()
}
