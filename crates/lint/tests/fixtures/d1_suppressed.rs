// cni-lint: allow(nondet-map) -- keyed lookups only; the map is never iterated
use std::collections::HashMap;

pub struct Cache {
    map: HashMap<u64, u32>, // cni-lint: allow(nondet-map) -- keyed lookups only; never iterated
}
