use std::collections::HashMap;

pub struct Cache {
    map: HashMap<u64, u32>,
}

impl Cache {
    pub fn purge(&mut self) {
        // cni-lint: allow(nondet-map) -- retain's visit order is unobservable: the predicate is pure and survivors stay keyed
        self.map.retain(|_, v| *v != 0);
    }
}
