// cni-lint: allow(made-up-rule) -- this slug does not exist
use std::collections::BTreeMap;

// cni-lint: allow(nondet-map)
pub type Map = BTreeMap<u32, u32>;
