// cni-lint: allow(snap-nondet) -- keyed lookups only; encode walks the sorted key list
use std::collections::HashMap;

pub struct Index {
    // cni-lint: allow(snap-nondet) -- never iterated during encode
    pub slots: HashMap<u64, u64>,
}
