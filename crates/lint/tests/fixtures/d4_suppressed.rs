use std::collections::HashMap;

pub fn encode(map: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> =
        // cni-lint: allow(snap-nondet) -- collected then sorted: the hashed visit order cannot reach the snapshot bytes
        map.iter().map(|(k, v)| (*k, *v)).collect();
    out.sort_unstable();
    out
}
