pub fn finish(buf: &[u8]) -> u32 {
    // cni-lint: allow(panic-path) -- the caller validated the length one frame earlier
    let head = &buf[0..4];
    let mut field = [0u8; 4];
    field.copy_from_slice(head);
    u32::from_be_bytes(field)
}
