fn route(spines: &[u32], src: usize, dst: usize) -> u32 {
    let pair = &spines[src..dst];
    pair.first().copied().unwrap()
}

fn leaf_of(leaves: &[u32], host: usize) -> u32 {
    leaves.get(host).copied().expect("host is attached to a leaf")
}

fn shape_helper(leaves: usize, down: usize) -> usize {
    leaves * down
}
