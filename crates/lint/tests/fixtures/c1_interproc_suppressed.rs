pub struct World {
    pub nics: Vec<u32>,
}

impl World {
    pub fn dispatch(&mut self, src: usize, dst: usize) {
        forward(self, src, dst);
    }
}

fn forward(w: &mut World, src: usize, dst: usize) {
    let v = w.nics[src];
    // cni-lint: allow(shard-isolation) -- fixture mediator: models a designated cross-shard handoff point
    w.nics[dst] = v;
}
