fn arrive_proto(notices: &[u64], kind: u8) -> u64 {
    let work = match kind {
        0xD3 => notices.iter().copied().max().unwrap(),
        _ => notices[0..1].iter().sum(),
    };
    work
}

fn setup_helper(notices: &[u64]) -> usize {
    notices.len()
}
