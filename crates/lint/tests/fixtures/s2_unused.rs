// cni-lint: allow(nondet-map) -- stale waiver left behind after a refactor
use std::collections::BTreeMap;

pub type Map = BTreeMap<u32, u32>;
