pub fn read_reg(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid, aligned, and live for
    // the duration of the call.
    unsafe { p.read_volatile() }
}
